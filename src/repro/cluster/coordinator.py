"""The cluster coordinator: schedule units, merge results, own the store.

:func:`verify_passes_distributed` is the cluster analogue of
:func:`repro.engine.verify_passes` — same arguments, same
:class:`~repro.engine.driver.EngineReport` out, identical verdicts — with
the pending work fanned out over worker processes (``workers=N`` spawns
them locally over a unix socket) or worker hosts (``hostfile=...`` listens
on token-authenticated TCP for ``repro work --connect`` peers).

The run is structured exactly like the in-process driver:

1. :func:`~repro.engine.driver.resolve_pending` serves everything the
   shared store can (so a warm cluster run never spawns a worker at all);
2. :func:`~repro.cluster.plan.plan_units` decomposes the misses into
   whole-pass units and, for recorded-slow passes, subgoal shards;
3. a :class:`UnitScheduler` leases units to whichever worker asks,
   re-queues units whose connection died, and *steals* long-outstanding
   leases onto idle workers (first result wins — unit ids are
   deterministic, so duplicated work is merely wasted, never wrong);
4. results stream back and are written through the coordinator's cache —
   the one warm tier every worker also reads via the networked store —
   and shard payloads are merged with
   :func:`~repro.engine.driver.merge_shard_payloads`;
5. anything the cluster could not finish (no workers came, a unit failed
   repeatedly, kwargs the wire cannot express) is verified in-process.
   The cluster is a fast path, never a dependency: with no reachable
   worker the run completes locally with identical verdicts.
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import shutil
import socket
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.cluster.plan import (
    DEFAULT_SHARD_COUNT,
    Plan,
    WorkUnit,
    load_timings,
    plan_units,
    record_timings,
)
from repro.cluster.status import RunStatusBoard
from repro.cluster.store import is_store_op, serve_store_op
from repro.cluster.transport import (
    ClusterEndpoint,
    Connection,
    Listener,
    TransportError,
    remove_cluster_state,
    server_handshake,
    write_cluster_state,
)
from repro.cluster.worker import execute_unit, worker_process_entry
from repro.engine.cache import default_cache_dir, open_proof_cache
from repro.engine.driver import (
    EngineReport,
    EngineStats,
    _verify_one,
    default_pass_kwargs,
    finalize_stats,
    merge_shard_payloads,
    payload_to_result,
    record_deferred_deps,
    resolve_pending,
    result_to_payload,
    store_certificates,
)
from repro.engine.scheduler import default_jobs
from repro.incremental.deps import identity_key
from repro.service.protocol import pass_registry
from repro.telemetry import stats as store_stats
from repro.telemetry import trace as _trace
from repro.verify.discharge import Discharger


# --------------------------------------------------------------------------- #
# Hostfile
# --------------------------------------------------------------------------- #
@dataclass
class HostfileConfig:
    """Parsed ``--cluster`` hostfile (see docs/operations.md)."""

    listen: str
    advertise: Optional[str] = None
    workers: Optional[int] = None


def parse_hostfile(path: os.PathLike) -> HostfileConfig:
    """Parse a hostfile: ``listen``/``advertise``/``workers`` directives.

    >>> import tempfile, os
    >>> lines = ["# repro cluster hostfile", "listen 0.0.0.0:7200",
    ...          "advertise 10.0.0.5:7200", "workers 4"]
    >>> fd, name = tempfile.mkstemp()
    >>> _ = os.write(fd, "\\n".join(lines).encode()); os.close(fd)
    >>> config = parse_hostfile(name)
    >>> (config.listen, config.advertise, config.workers)
    ('0.0.0.0:7200', '10.0.0.5:7200', 4)
    >>> os.unlink(name)
    """
    listen = advertise = None
    workers = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_number}: expected 'key value'")
            key, value = parts[0].lower(), parts[1].strip()
            if key == "listen":
                listen = value
            elif key == "advertise":
                advertise = value
            elif key == "workers":
                workers = int(value)
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown directive {key!r} "
                    f"(expected listen/advertise/workers)")
    if listen is None:
        raise ValueError(f"{path}: missing required 'listen HOST:PORT' line")
    return HostfileConfig(listen=listen, advertise=advertise, workers=workers)


# --------------------------------------------------------------------------- #
# Scheduling
# --------------------------------------------------------------------------- #
class UnitScheduler:
    """Thread-safe lease/steal/retry bookkeeping over a fixed unit set."""

    def __init__(self, units: Sequence[WorkUnit], *,
                 steal_after: float = 5.0, max_attempts: int = 3,
                 tracer=None) -> None:
        self._by_id: Dict[str, WorkUnit] = {u.unit_id: u for u in units}
        self._pending = deque(units)
        #: unit_id -> {"since": float, "owners": set}
        self._leases: Dict[str, Dict] = {}
        self.results: Dict[str, Dict] = {}
        self.failures: Dict[str, str] = {}
        self._attempts: Dict[str, int] = {}
        # Queue-time attribution: every unit is stamped at enqueue and its
        # wait is fixed at *first* lease (a steal re-leases an already
        # measured unit and must not recompute).  Requeue restarts the
        # clock — the retry's wait is the one the merged trace reports.
        now = time.monotonic()
        self._enqueued: Dict[str, float] = {u.unit_id: now for u in units}
        self._queue_wait: Dict[str, float] = {}
        self._cond = threading.Condition()
        self.steal_after = steal_after
        self.max_attempts = max_attempts
        self.stolen = 0
        self.retried = 0
        # Passed explicitly (not looked up per call): the coordinator's
        # self-leased units temporarily swap the process-global tracer for
        # an in-memory collector, and a handler thread emitting through
        # ``current()`` mid-swap would leak its events into that unit's
        # batch instead of the run trace.
        self._tracer = tracer

    def _trace_event(self, name: str, **attrs) -> None:
        if self._tracer is not None:
            self._tracer.event(name, kind="cluster", **attrs)

    # ------------------------------------------------------------------ #
    def lease(self, owner: str) -> Tuple[str, Optional[WorkUnit]]:
        """Hand ``owner`` a unit: ``("unit", u)``, ``("wait", None)``, or
        ``("done", None)``."""
        now = time.monotonic()
        with self._cond:
            while self._pending:
                unit = self._pending.popleft()
                if unit.unit_id in self.results or unit.unit_id in self.failures:
                    continue  # resolved while queued (steal raced a retry)
                lease = self._leases.setdefault(
                    unit.unit_id, {"since": now, "owners": set()})
                lease["owners"].add(owner)
                self._queue_wait.setdefault(
                    unit.unit_id,
                    max(0.0, now - self._enqueued.get(unit.unit_id, now)))
                self._trace_event("cluster.lease", unit=unit.unit_id,
                                  worker=owner)
                return ("unit", unit)
            # Work stealing: re-lease the longest-outstanding unit to an
            # idle worker.  First result wins; the duplicate is discarded.
            candidates = [
                (lease["since"], unit_id)
                for unit_id, lease in self._leases.items()
                if unit_id not in self.results
                and unit_id not in self.failures
                and owner not in lease["owners"]
                and now - lease["since"] >= self.steal_after
            ]
            if candidates:
                _, unit_id = min(candidates)
                self._leases[unit_id]["owners"].add(owner)
                self.stolen += 1
                self._trace_event("cluster.steal", unit=unit_id, worker=owner)
                return ("unit", self._by_id[unit_id])
            if self._done_locked():
                return ("done", None)
            return ("wait", None)

    def complete(self, unit_id: str, message: Dict) -> bool:
        """Record one worker's result; returns True if it was accepted."""
        with self._cond:
            unit = self._by_id.get(unit_id)
            if unit is None or unit_id in self.results:
                if unit is not None:
                    self._trace_event("cluster.duplicate", unit=unit_id)
                return False
            if message.get("ok"):
                self.results[unit_id] = message
                self._leases.pop(unit_id, None)
                self._cond.notify_all()
                return True
            self._leases.pop(unit_id, None)
            attempts = self._attempts.get(unit_id, 0) + 1
            self._attempts[unit_id] = attempts
            if attempts < self.max_attempts:
                self.retried += 1
                self._pending.append(unit)
                self._enqueued[unit_id] = time.monotonic()
                self._queue_wait.pop(unit_id, None)
                self._trace_event("cluster.requeue", unit=unit_id,
                                  reason="unit-failed", attempts=attempts)
            else:
                self.failures[unit_id] = str(message.get("error", "unit failed"))
                self._trace_event("cluster.failed", unit=unit_id,
                                  attempts=attempts)
            self._cond.notify_all()
            return False

    def release(self, owner: str) -> None:
        """A connection died: re-queue the units only it was working on."""
        with self._cond:
            for unit_id, lease in list(self._leases.items()):
                lease["owners"].discard(owner)
                if not lease["owners"] and unit_id not in self.results:
                    del self._leases[unit_id]
                    self.retried += 1
                    self._pending.append(self._by_id[unit_id])
                    self._enqueued[unit_id] = time.monotonic()
                    self._queue_wait.pop(unit_id, None)
                    self._trace_event("cluster.requeue", unit=unit_id,
                                      reason="connection-lost", worker=owner)
            self._cond.notify_all()

    def queue_wait(self, unit_id: str) -> float:
        """Seconds ``unit_id`` sat queued before its (latest) lease.

        Units the cluster never served (proved by the local fallback)
        lazily fix their wait at first query — they waited the whole
        cluster phase, and the merged unit span built at merge time is
        that first query.
        """
        with self._cond:
            wait = self._queue_wait.get(unit_id)
            if wait is not None:
                return wait
            enqueued = self._enqueued.get(unit_id)
            if enqueued is None:
                return 0.0
            wait = max(0.0, time.monotonic() - enqueued)
            self._queue_wait[unit_id] = wait
            return wait

    # ------------------------------------------------------------------ #
    def _done_locked(self) -> bool:
        return all(unit_id in self.results or unit_id in self.failures
                   for unit_id in self._by_id)

    @property
    def done(self) -> bool:
        with self._cond:
            return self._done_locked()

    def unresolved_units(self) -> List[WorkUnit]:
        with self._cond:
            return [unit for unit_id, unit in self._by_id.items()
                    if unit_id not in self.results]

    def wait(self, timeout: float) -> bool:
        """Block until every unit is resolved or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self._done_locked():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.2))
            return True


# --------------------------------------------------------------------------- #
# The coordinator
# --------------------------------------------------------------------------- #
class ClusterCoordinator:
    """Serve one run's units to authenticated workers; absorb their results.

    The coordinator is also a *worker of last resort*: while waiting on the
    fleet it leases units to itself (:meth:`run_one_locally`) instead of
    idling, so a run with slow — or absent — workers still makes progress
    through the same unit pipeline (same payloads, same store writes, same
    verdicts; only the ``coordinator_units`` counter tells them apart).
    """

    def __init__(self, cache, scheduler: UnitScheduler, token: str, *,
                 counterexample_search: bool = True,
                 solver: str = "builtin",
                 registry: Optional[Dict[str, type]] = None,
                 board=None, recorder=None) -> None:
        from repro.engine.fingerprint import toolchain_fingerprint

        self.cache = cache
        self.scheduler = scheduler
        self.token = token
        #: Optional :class:`repro.cluster.status.RunStatusBoard` — the live
        #: health table behind ``repro top``.
        self.board = board
        #: Optional :class:`repro.telemetry.stats.StatsRecorder` — absorbs
        #: the per-unit remote-store io deltas workers ship back.
        self.recorder = recorder
        # Captured once: self-leased units swap the global tracer for a
        # collector mid-run, and handler threads absorbing results during
        # that window must still write to the run's sink.
        self.tracer = _trace.current()
        self.counterexample_search = counterexample_search
        self.solver = solver
        self.registry = registry
        self.toolchain = toolchain_fingerprint()
        #: Coordinator-side view of the shared subgoal tier, plus an
        #: append-ordered log so each connection gets exactly the entries
        #: it has not seen (piggybacked on lease responses).
        self._subgoal_lock = threading.Lock()
        self._shared_subgoals: Dict[str, dict] = (
            cache.subgoal_snapshot() if cache is not None else {})
        self._subgoal_log: List[Tuple[str, dict]] = []
        self._store_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.workers_connected = 0
        self.workers_seen = 0
        self.remote_units = 0
        self.coordinator_units = 0
        self.remote_subgoal_hits = 0
        self.worker_seconds = 0.0
        self.worker_subgoal_hits = 0
        self.worker_subgoal_misses = 0
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------ #
    # Result absorption
    # ------------------------------------------------------------------ #
    def _absorb_result(self, message: Dict, local: bool = False,
                       owner: Optional[str] = None,
                       transport: float = 0.0) -> None:
        """Write an accepted result's subgoals through to the shared tier.

        When tracing, this is also where the merged cluster trace grows: a
        synthetic ``unit`` span records the worker attribution and the
        prove/transport split, and the worker's piggybacked span batch is
        re-absorbed underneath it.  Only *accepted* results reach here, so
        every planned unit contributes exactly one merged unit span even
        under steal/requeue duplication.
        """
        with self._subgoal_lock:
            fresh = {
                key: value
                for key, value in (message.get("new_subgoals") or {}).items()
                if key not in self._shared_subgoals
            }
            for key, value in fresh.items():
                self._shared_subgoals[key] = value
                self._subgoal_log.append((key, value))
        if self.cache is not None:
            with self._store_lock:
                for key, value in fresh.items():
                    if not self.cache.has_subgoal(key):
                        self.cache.put_subgoal(key, value)
                store_certificates(self.cache,
                                   message.get("new_certificates") or {})
                self.cache.touch_subgoals(message.get("subgoal_hit_keys") or [])
        with self._counter_lock:
            if local:
                self.coordinator_units += 1
            else:
                self.remote_units += 1
                self.worker_seconds += float(message.get("wall_seconds", 0.0))
            self.remote_subgoal_hits += int(message.get("subgoal_remote_hits", 0))
            self.worker_subgoal_hits += int(message.get("subgoal_hits", 0))
            self.worker_subgoal_misses += int(message.get("subgoal_misses", 0))
        if self.recorder is not None:
            # Remote-store io is timing-dependent by nature, so it merges
            # into the *local* half of the stats payload under a prefixed
            # tier name; the canonical half is fed at merge time from the
            # accepted results only.
            for tier, counters in (message.get("store_io") or {}).items():
                self.recorder.merge_io(f"remote-{tier}", counters)
        if self.board is not None:
            attribution = owner or ("coordinator" if local else "worker")
            self.board.note_result(
                attribution,
                prove_seconds=float(message.get("wall_seconds", 0.0)),
                transport_seconds=max(0.0, transport))
            self.board.set_progress(
                units_done=len(self.scheduler.results),
                failures=len(self.scheduler.failures),
                stolen=self.scheduler.stolen,
                retried=self.scheduler.retried)
        if self.tracer is not None:
            attribution = owner or ("coordinator" if local else "worker")
            with self.tracer.span(
                    "unit", kind="unit", unit=message.get("unit_id"),
                    worker=attribution,
                    prove_seconds=round(float(message.get("wall_seconds", 0.0)), 6),
                    transport_seconds=round(max(0.0, transport), 6),
                    queue_wait=round(self.scheduler.queue_wait(
                        str(message.get("unit_id"))), 6)) as handle:
                pass
            spans = message.pop("spans", None)
            if spans:
                self.tracer.absorb(spans, worker=attribution, parent=handle.id)

    # ------------------------------------------------------------------ #
    # Self-leasing (the coordinator as a worker of last resort)
    # ------------------------------------------------------------------ #
    def run_one_locally(self) -> bool:
        """Lease one unit to the coordinator itself and prove it inline.

        Returns ``True`` when a unit was executed (successfully or not —
        failures follow the same retry bookkeeping as a worker's).  The
        unit runs against a *copy* of the shared subgoal table: handler
        threads snapshot the live dict for connecting workers, and an
        in-place mutation from this thread could surface as a
        dictionary-changed-size error mid-copy.
        """
        if self.registry is None:
            return False
        kind, unit = self.scheduler.lease("coordinator")
        if kind != "unit":
            return False
        with self._subgoal_lock:
            table = dict(self._shared_subgoals)
        wire = unit.to_wire(self.counterexample_search, self.solver)
        if self.tracer is not None:
            wire["trace"] = True
        reply = execute_unit(wire, self.registry, table)
        accepted = self.scheduler.complete(unit.unit_id, reply)
        if accepted:
            self._absorb_result(reply, local=True, owner="coordinator")
        return True

    def _snapshot_for(self, marker_box: Dict) -> Dict[str, dict]:
        """Serve one connection's bulk snapshot; advance its update marker."""
        with self._subgoal_lock:
            marker_box["marker"] = len(self._subgoal_log)
            return dict(self._shared_subgoals)

    def _updates_for(self, marker_box: Dict) -> Dict[str, dict]:
        with self._subgoal_lock:
            marker = marker_box.get("marker", 0)
            entries = self._subgoal_log[marker:]
            marker_box["marker"] = len(self._subgoal_log)
            return dict(entries)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _handle_connection(self, connection: Connection, owner: str) -> None:
        hello = server_handshake(connection, self.token,
                                 welcome_extra={"toolchain": self.toolchain})
        if hello is None:
            return
        marker_box: Dict = {}
        #: unit_id -> perf_counter at lease send; the gap between a unit's
        #: round trip and its worker-measured wall is the transport share.
        sent_at: Dict[str, float] = {}
        with self._counter_lock:
            self.workers_connected += 1
            self.workers_seen += 1
        try:
            while not self._stop.is_set():
                message = connection.recv()
                if message is None:
                    break
                op = message.get("op")
                if op == "store.subgoal_snapshot":
                    connection.send({"op": "store.reply",
                                     "value": self._snapshot_for(marker_box)})
                elif is_store_op(message):
                    with self._store_lock:
                        reply = serve_store_op(self.cache, message,
                                               allow_writes=False)
                    connection.send(reply)
                elif op == "lease":
                    if self.board is not None:
                        # Health gauges piggyback on every lease; peers
                        # that predate them simply send no "heartbeat"
                        # key, which still refreshes last_seen.
                        self.board.heartbeat(owner, message.get("heartbeat"))
                    kind, unit = self.scheduler.lease(owner)
                    if kind == "unit":
                        wire = unit.to_wire(self.counterexample_search,
                                            self.solver)
                        if self.tracer is not None:
                            wire["trace"] = True
                            sent_at[unit.unit_id] = time.perf_counter()
                        connection.send({
                            "op": "unit",
                            "unit": wire,
                            "subgoal_updates": self._updates_for(marker_box),
                        })
                    elif kind == "wait":
                        connection.send({"op": "wait", "seconds": 0.05})
                    else:
                        connection.send({"op": "done"})
                        break
                elif op == "result":
                    unit_id = str(message.get("unit_id"))
                    round_trip = time.perf_counter() - sent_at.pop(
                        unit_id, time.perf_counter())
                    accepted = self.scheduler.complete(unit_id, message)
                    if accepted:
                        self._absorb_result(
                            message, owner=owner,
                            transport=round_trip
                            - float(message.get("wall_seconds", 0.0)))
                # Unknown ops are ignored: forward compatibility within a
                # protocol version is additive.
        except TransportError:
            pass
        finally:
            self.scheduler.release(owner)
            connection.close()
            with self._counter_lock:
                self.workers_connected -= 1

    def serve(self, listener: Listener) -> None:
        """Accept connections until :meth:`stop`; one thread per worker."""
        def accept_loop():
            counter = 0
            while not self._stop.is_set():
                try:
                    connection = listener.accept(timeout=0.2)
                except TransportError:
                    continue
                counter += 1
                owner = f"worker-{counter}-{connection.peer}"
                thread = threading.Thread(
                    target=self._handle_connection, args=(connection, owner),
                    name=f"repro-cluster-{owner}", daemon=True)
                thread.start()
                self._threads.append(thread)

        acceptor = threading.Thread(target=accept_loop,
                                    name="repro-cluster-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)

    def stop(self) -> None:
        self._stop.set()


# --------------------------------------------------------------------------- #
# Local worker processes
# --------------------------------------------------------------------------- #
def _spawn_local_workers(address: str, token: str, count: int) -> List:
    """Start ``count`` worker processes against ``address``.

    Prefers ``fork`` (the children inherit the warmed prover, so spawning
    costs milliseconds, not an interpreter+import each); degrades to the
    platform default, and to an empty list when process creation is not
    available at all (the caller then verifies in-process).
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    processes = []
    for _ in range(count):
        try:
            process = context.Process(
                target=worker_process_entry, args=(address, token), daemon=True)
            process.start()
        except (OSError, ValueError, ImportError):
            break
        processes.append(process)
    return processes


# --------------------------------------------------------------------------- #
# The distributed batch API
# --------------------------------------------------------------------------- #
def verify_passes_distributed(
    pass_classes: Sequence[Type],
    *,
    workers: int = 0,
    hostfile: Optional[os.PathLike] = None,
    cache=None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    backend: str = "jsonl",
    pass_kwargs_fn=None,
    counterexample_search: bool = True,
    changed_paths=None,
    record_deps: bool = True,
    shard_threshold: Optional[float] = None,
    shard_count: Optional[int] = None,
    worker_wait: float = 30.0,
    run_timeout: float = 600.0,
    steal_after: float = 5.0,
    solver: str = "auto",
    self_lease: bool = True,
) -> EngineReport:
    """Verify a batch across a worker cluster; in-process for what remains.

    ``workers=N`` (``0`` = one per CPU, capped like ``--jobs 0``) spawns N
    local worker processes over a private unix socket; ``hostfile=PATH``
    instead listens on the file's ``listen`` address and serves whichever
    authenticated ``repro work`` peers connect (``workers`` and
    ``hostfile`` are mutually exclusive).  All other parameters match
    :func:`repro.engine.verify_passes`, including ``changed_paths`` for
    dependency-scoped incremental cluster runs and ``solver`` for the
    prover backend (shipped inside every unit; workers refuse units whose
    key they cannot re-derive, which covers solver skew).  Verdicts are
    identical to the single-process engine at any worker count —
    distribution, like ``jobs``, only changes wall time.

    ``self_lease`` (default on) lets the coordinator lease and prove units
    itself while waiting on workers; ``shard_count=None`` auto-tunes each
    split pass's shard count from its recorded wall time (see
    :func:`repro.cluster.plan.derive_shard_count`).
    """
    started = time.perf_counter()
    from repro.engine.driver import _check_changed_paths
    from repro.prover.backend import resolve_solver

    _check_changed_paths(changed_paths)
    solver_name = resolve_solver(solver).name
    kwargs_fn = pass_kwargs_fn or default_pass_kwargs
    if hostfile is not None and workers:
        raise ValueError("workers=N and hostfile=... are mutually exclusive")
    local_mode = hostfile is None
    worker_count = default_jobs() if int(workers) <= 0 else int(workers)
    stats = EngineStats(jobs=worker_count if local_mode else 1,
                        passes_total=len(pass_classes), solver=solver_name)

    own_cache = False
    if cache is None and use_cache:
        cache = open_proof_cache(cache_dir or default_cache_dir(), backend)
        own_cache = True
    base_invalidated = 0 if own_cache or cache is None else cache.stats.invalidated
    try:
        return _distributed_with_cache(
            pass_classes, stats, cache, kwargs_fn, started, base_invalidated,
            counterexample_search=counterexample_search,
            changed_paths=changed_paths, record_deps=record_deps,
            local_mode=local_mode, worker_count=worker_count,
            hostfile=hostfile, shard_threshold=shard_threshold,
            shard_count=shard_count, worker_wait=worker_wait,
            run_timeout=run_timeout, steal_after=steal_after,
            solver=solver_name, self_lease=self_lease,
        )
    finally:
        if own_cache:
            cache.close()


def _distributed_with_cache(
    pass_classes, stats, cache, kwargs_fn, started, base_invalidated, *,
    counterexample_search, changed_paths, record_deps, local_mode,
    worker_count, hostfile, shard_threshold, shard_count, worker_wait,
    run_timeout, steal_after, solver, self_lease,
) -> EngineReport:
    base_hits = cache.stats.pass_hits if cache is not None else 0
    base_misses = cache.stats.pass_misses if cache is not None else 0

    # Store analytics: one recorder per run, attached to the cache for the
    # io hooks and fed canonical facts by the driver/merge paths.  Always
    # best-effort — accounting must never fail a verification run.
    recorder = None
    if cache is not None and store_stats.enabled():
        try:
            recorder = store_stats.StatsRecorder(
                cache.directory, backend=getattr(cache, "backend", None),
                workers=worker_count if local_mode else None)
            cache.recorder = recorder
        except Exception:
            recorder = None

    # Dependency recording (import-graph walks) is deferred off the
    # critical path: the coordinator records it while the workers prove.
    deferred_deps: List[Tuple] = [] if record_deps else None
    results, pending = resolve_pending(
        pass_classes, stats, cache, kwargs_fn,
        changed_paths=changed_paths, record_deps=record_deps,
        deferred_deps=deferred_deps, solver=solver, recorder=recorder,
    )

    cluster_info: Dict[str, object] = {
        "workers": 0, "units_total": 0, "split_passes": 0,
        "remote_units": 0, "coordinator_units": 0, "local_units": 0,
        "remote_subgoal_hits": 0, "stolen": 0, "retried": 0,
    }
    stats.cluster = cluster_info
    if not pending:
        if deferred_deps:
            record_deferred_deps(cache, deferred_deps)
        if recorder is not None:
            try:
                recorder.finalize_and_save()
            except Exception:
                pass
            cache.recorder = None
        finalize_stats(stats, cache, base_hits, base_misses, base_invalidated,
                       0, started)
        return EngineReport(results=list(results), stats=stats)

    registry = pass_registry()
    timings_dir = None
    if cache is not None and cache.directory is not None:
        timings_dir = cache.directory
    plan = plan_units(
        pending, registry,
        timings=load_timings(timings_dir),
        shard_threshold=shard_threshold, shard_count=shard_count,
    )
    cluster_info["units_total"] = len(plan.units)
    cluster_info["split_passes"] = plan.split_passes

    tracer = _trace.current()
    if tracer is not None:
        # The planned unit-id list is the coverage contract: the merged
        # trace must hold exactly one unit span per id (repro trace
        # summary --check-coverage verifies it).
        tracer.event("cluster.plan", kind="cluster",
                     units=[unit.unit_id for unit in plan.units],
                     split_passes=plan.split_passes)
    scheduler = UnitScheduler(plan.units, steal_after=steal_after,
                              tracer=tracer)
    # The live health board persists beside the proof store so `repro top`
    # on the same host can render the run; cacheless runs keep it in
    # memory only (there is no shared directory to meet the reader in).
    board_dir = cache.directory if cache is not None and \
        cache.directory is not None else None
    board = RunStatusBoard(board_dir, len(plan.units),
                           node=f"{socket.gethostname()}-{os.getpid()}")
    coordinator = ClusterCoordinator(
        cache, scheduler, secrets.token_hex(16),
        counterexample_search=counterexample_search,
        solver=solver, registry=registry if self_lease else None,
        board=board, recorder=recorder)

    listener = None
    processes: List = []
    scratch_dir = None
    state_dir = None
    try:
        if plan.units:
            try:
                if local_mode:
                    scratch_dir = tempfile.mkdtemp(prefix="repro-cluster-")
                    listener = Listener(f"unix:{scratch_dir}/coordinator.sock")
                else:
                    config = parse_hostfile(hostfile)
                    listener = Listener(config.listen)
                    advertise = config.advertise or listener.address
                    state_dir = (cache.directory if cache is not None and
                                 cache.directory is not None else default_cache_dir())
                    write_cluster_state(state_dir, ClusterEndpoint(
                        address=advertise, token=coordinator.token,
                        pid=os.getpid()))
            except (TransportError, OSError, ValueError) as exc:
                if not local_mode:
                    raise  # an unusable hostfile is an error, not a fallback
                listener = None  # no sockets on this host: verify locally

        if listener is not None:
            # Fork the local workers before any coordinator thread starts:
            # forking a process with live threads risks inheriting a held
            # lock mid-operation.  The listener is already bound, so early
            # connections simply queue in the backlog.
            if local_mode:
                processes = _spawn_local_workers(
                    listener.address, coordinator.token, worker_count)
            coordinator.serve(listener)
            if deferred_deps:
                record_deferred_deps(cache, deferred_deps,
                                     lock=coordinator._store_lock)
                deferred_deps = []
            _await_completion(scheduler, coordinator, processes,
                              local_mode=local_mode, worker_wait=worker_wait,
                              run_timeout=run_timeout)
    finally:
        # Stop before closing the listener: the accept loop polls the stop
        # event, and closing its socket first would leave it spinning on
        # accept errors until the event is set.
        coordinator.stop()
        if listener is not None:
            listener.close()
        for process in processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        if state_dir is not None:
            remove_cluster_state(state_dir, coordinator.token)
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
        # The board file deliberately outlives the run (marked done):
        # `repro top --once` racing the end of a short run still has a
        # completed table to report; the next run overwrites it.
        board.set_progress(units_done=len(scheduler.results),
                           failures=len(scheduler.failures),
                           stolen=scheduler.stolen, retried=scheduler.retried)
        board.finish()

    if deferred_deps:  # the cluster never served (no sockets on this host)
        record_deferred_deps(cache, deferred_deps)

    _merge_run(results, pending, plan, scheduler, coordinator, cache, stats,
               counterexample_search, timings_dir, kwargs_fn,
               shard_threshold=shard_threshold)

    if recorder is not None:
        try:
            recorder.finalize_and_save()
        except Exception:
            pass
        cache.recorder = None

    cluster_info["workers"] = coordinator.workers_seen
    cluster_info["remote_units"] = coordinator.remote_units
    cluster_info["coordinator_units"] = coordinator.coordinator_units
    cluster_info["remote_subgoal_hits"] = coordinator.remote_subgoal_hits
    cluster_info["stolen"] = scheduler.stolen
    cluster_info["retried"] = scheduler.retried
    cluster_info["worker_seconds"] = round(coordinator.worker_seconds, 6)
    stats.used_processes = coordinator.remote_units > 0
    stats.subgoal_hits += coordinator.worker_subgoal_hits
    stats.subgoal_misses += coordinator.worker_subgoal_misses
    finalize_stats(stats, cache, base_hits, base_misses, base_invalidated,
                   len(pending), started)
    return EngineReport(results=list(results), stats=stats)


def _await_completion(scheduler, coordinator, processes, *, local_mode,
                      worker_wait, run_timeout) -> None:
    """Drive the units to completion — proving some on the coordinator.

    Instead of idling between polls, the coordinator leases units to
    itself (:meth:`ClusterCoordinator.run_one_locally`, when self-leasing
    is enabled): with a healthy fleet it merely adds one more prover, and
    with a dead or absent fleet it drains the whole plan through the same
    unit pipeline.  It still bails out early (leaving the remainder to the
    in-process fallback) when nothing is progressing: every local worker
    process dead, no worker at all within ``worker_wait``, or every
    previously connected worker gone for ``worker_wait`` without a
    replacement — a crashed fleet must not stall the run until
    ``run_timeout``.
    """
    deadline = time.monotonic() + run_timeout
    first_worker_deadline = time.monotonic() + worker_wait
    # Until a worker shows up, give the fleet a short head start before
    # the coordinator starts competing for units: a fast suite drained
    # entirely by self-leasing would make every run look worker-less.
    self_lease_after = time.monotonic() + min(1.0, worker_wait / 4)
    idle_since = None
    while not scheduler.done:
        now = time.monotonic()
        if now >= deadline:
            return
        if (coordinator.workers_seen > 0 or now >= self_lease_after) \
                and coordinator.run_one_locally():
            continue  # progressed; re-check done before any bail-out
        if coordinator.workers_connected == 0:
            if local_mode and processes and \
                    not any(process.is_alive() for process in processes):
                return
            if coordinator.workers_seen == 0 and now >= first_worker_deadline:
                return
            if coordinator.workers_seen > 0:
                idle_since = idle_since or now
                if now - idle_since >= worker_wait:
                    return
        else:
            idle_since = None
        scheduler.wait(0.2)


def _merge_run(results, pending, plan: Plan, scheduler: UnitScheduler,
               coordinator: ClusterCoordinator, cache, stats,
               counterexample_search, timings_dir, kwargs_fn,
               shard_threshold=None) -> None:
    """Fold unit results into ordered pass results; prove leftovers locally."""
    from contextlib import nullcontext

    from repro.cluster.plan import DEFAULT_SHARD_THRESHOLD

    tracer = coordinator.tracer
    merge_scope = nullcontext() if tracer is None else \
        tracer.span("cluster.merge", kind="merge", units=len(plan.units))
    with merge_scope:
        _merge_run_traced(results, pending, plan, scheduler, coordinator,
                          cache, stats, counterexample_search, timings_dir,
                          kwargs_fn, shard_threshold, tracer)


def _merge_run_traced(results, pending, plan, scheduler, coordinator, cache,
                      stats, counterexample_search, timings_dir, kwargs_fn,
                      shard_threshold, tracer) -> None:
    from repro.cluster.plan import DEFAULT_SHARD_THRESHOLD

    threshold = DEFAULT_SHARD_THRESHOLD if shard_threshold is None \
        else float(shard_threshold)
    units_by_index: Dict[int, List[WorkUnit]] = {}
    for unit in plan.units:
        units_by_index.setdefault(unit.index, []).append(unit)

    # Canonical store accounting is fed here — not at absorb time — so the
    # facts that reach the recorder are exactly the facts that reach the
    # report: one accounting source per pass, chosen the same way the
    # result is.  Complete unit sets feed from their messages (shards
    # partition a pass's subgoal work, so the sum matches a whole-pass
    # run); passes the cluster never finished feed from the local re-prove
    # instead.  ``fed_indices`` keeps the two sources exclusive when a
    # failing split pass is re-proved locally just for its counterexample.
    recorder = coordinator.recorder
    fed_indices: set = set()

    def feed_unit_messages(index, messages) -> None:
        if recorder is None:
            return
        try:
            for message in messages:
                recorder.note_unit(
                    message.get("subgoal_hit_keys") or [],
                    (message.get("new_subgoals") or {}).keys())
                recorder.note_certificates(
                    (message.get("new_certificates") or {}).keys())
            fed_indices.add(index)
        except Exception:
            pass

    timing_updates: Dict[str, float] = {}
    local_entries = list(plan.local)
    for entry in pending:
        index, pass_class, pass_kwargs, key = entry
        units = units_by_index.get(index)
        if not units:
            continue  # already routed to plan.local
        payloads = [scheduler.results.get(unit.unit_id) for unit in units]
        if any(payload is None for payload in payloads):
            local_entries.append(entry)
            continue
        try:
            if units[0].kind == "shard":
                merged = merge_shard_payloads(
                    [message["payload"] for message in payloads])
            else:
                merged = payloads[0]["payload"]
        except (ValueError, KeyError):
            local_entries.append(entry)
            continue
        # A failing split pass has no counterexample (shards never search);
        # re-prove it whole so the report matches single-process output.
        if units[0].kind == "shard" and not merged["verified"] \
                and counterexample_search:
            # The shards are a complete accounting of the pass's subgoal
            # work; the local re-prove only recovers the counterexample
            # (its table is warm with the shard-proved subgoals, so its
            # own accounting would read all-hits — a cluster artifact).
            feed_unit_messages(index, payloads)
            local_entries.append(entry)
            continue
        feed_unit_messages(index, payloads)
        results[index] = payload_to_result(merged)
        if cache is not None:
            with coordinator._store_lock:
                cache.put_pass(key, merged)
        if units[0].kind == "shard":
            # The merged payload's time is the *sum* of shard times, and
            # every shard re-ran the full symbolic execution; recording
            # that sum would feed the auto-tuner a figure that grows with
            # the shard count it chose (ratcheting every split pass toward
            # the maximum).  Estimate the unsplit wall instead: the
            # cheapest shard is an upper bound on the symbolic-execution
            # share, so discount it from all but one shard.  The estimate
            # errs low (the cheapest shard still carries discharge work),
            # which on its own would flip the next run back to unsplit —
            # so a split pass's record is floored at the threshold:
            # hysteresis beats oscillating between split and whole.
            shard_times = [message["payload"]["time_seconds"]
                           for message in payloads]
            recorded = sum(shard_times) - \
                (len(shard_times) - 1) * min(shard_times)
            if threshold > 0:
                recorded = max(recorded, threshold)
        else:
            recorded = merged["time_seconds"]
        timing_updates[identity_key(pass_class, pass_kwargs)] = recorded

    local_count = 0
    discharger = Discharger(stats.solver)
    # Snapshot the shared table under its lock (one copy, reused across
    # the whole fallback loop): a handler thread draining a late worker
    # frame may still be copying the live dict, and an unguarded insert
    # from this loop would blow up that copy mid-iteration.
    with coordinator._subgoal_lock:
        local_table = dict(coordinator._shared_subgoals)
    for index, pass_class, pass_kwargs, key in local_entries:
        result, acct = _verify_one(
            pass_class, pass_kwargs, counterexample_search,
            local_table, discharger=discharger,
        )
        local_count += 1
        if tracer is not None:
            # Planned units the cluster never resolved are proved here;
            # give each one a merged unit span so coverage stays exact
            # (units that *did* come back already got theirs on absorb).
            for unit in units_by_index.get(index, []):
                if unit.unit_id not in scheduler.results:
                    with tracer.span("unit", kind="unit", unit=unit.unit_id,
                                     worker="local-fallback",
                                     prove_seconds=round(
                                         result.time_seconds, 6),
                                     transport_seconds=0.0,
                                     queue_wait=round(
                                         scheduler.queue_wait(unit.unit_id),
                                         6)):
                        pass
        if recorder is not None and index not in fed_indices:
            try:
                recorder.note_unit(acct.hit_keys, acct.new_subgoals.keys())
                recorder.note_certificates(acct.new_certificates.keys())
            except Exception:
                pass
        results[index] = result
        stats.subgoal_hits += acct.hits
        stats.subgoal_misses += acct.misses
        if cache is not None:
            # Under the store lock: a still-draining handler thread may be
            # serving a late worker message against the same cache.
            with coordinator._store_lock:
                cache.put_pass(key, result_to_payload(result))
                for sub_key, value in acct.new_subgoals.items():
                    if not cache.has_subgoal(sub_key):
                        cache.put_subgoal(sub_key, value)
                store_certificates(cache, acct.new_certificates)
                cache.touch_subgoals(acct.hit_keys)
        timing_updates[identity_key(pass_class, pass_kwargs)] = \
            result.time_seconds
    stats.cluster["local_units"] = local_count

    record_timings(timings_dir, timing_updates)
