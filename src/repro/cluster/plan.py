"""Decompose a pending verification batch into distributable work units.

The default unit is a whole pass — the granularity the engine already
schedules across local processes.  For passes whose *recorded* wall time
exceeds a threshold (path-explosion-heavy passes dominate hard suites),
the plan splits the discharge work into subgoal shards: every shard
re-runs the cheap, deterministic symbolic execution and discharges only
the obligations whose enumeration index lands in its stripe (see
:func:`repro.engine.driver.verify_pass_shard`).  Splitting never needs to
know the subgoal count up front — a shard that owns no obligations merges
as an empty contribution — so the plan is safe on passes it has never
seen.

Unit identity is deterministic (:func:`repro.engine.fingerprint.unit_fingerprint`):
the same pending pass at the same split always yields the same unit ids,
which is what makes results cacheable, mergeable, and idempotent under
work stealing.

Timings come from a small ``timings.json`` record in the cache directory,
updated by the coordinator after every run — so a suite's second cluster
run knows which passes deserved splitting even if their proofs were
evicted in between.  The shard count is auto-tuned from the same record:
a pass recorded at N times the threshold is cut into ~N shards (clamped
to :data:`MAX_SHARD_COUNT`), instead of the seed's fixed two-way split.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.fingerprint import DEFAULT_SOLVER, unit_fingerprint
from repro.incremental.deps import identity_key
from repro.service.protocol import ProtocolError, make_pass_spec, resolve_pass_spec

_TIMINGS_FILE = "timings.json"

#: Default wall-time threshold (seconds) above which a pass is split.
DEFAULT_SHARD_THRESHOLD = 1.0

#: Default number of subgoal shards a split pass is cut into when no
#: recorded timing says otherwise.
DEFAULT_SHARD_COUNT = 2

#: Upper bound on auto-tuned shard counts: past this, per-shard symbolic
#: re-execution overhead dominates whatever discharge parallelism remains.
MAX_SHARD_COUNT = 8


def derive_shard_count(recorded: Optional[float],
                       threshold: float) -> int:
    """Shard count for one pass from its recorded wall time.

    The split should leave each shard roughly one threshold's worth of
    discharge work: a pass recorded at 3.2s against a 1.0s threshold cuts
    into 4 shards, not a fixed 2 — and never more than
    :data:`MAX_SHARD_COUNT` (each shard re-runs the symbolic execution).
    With no recorded time, or a non-positive threshold (force-split mode),
    there is no ratio to derive from and the default applies.
    """
    if recorded is None or threshold <= 0:
        return DEFAULT_SHARD_COUNT
    return max(DEFAULT_SHARD_COUNT,
               min(MAX_SHARD_COUNT, math.ceil(recorded / threshold)))


@dataclass
class WorkUnit:
    """One leasable unit of verification work.

    ``kind`` is ``"pass"`` (verify the whole pass) or ``"shard"``
    (discharge one subgoal stripe).  ``index`` is the position in the
    *pending* list the coordinator planned from; ``spec`` is the wire form
    (:func:`~repro.service.protocol.make_pass_spec`); ``key`` is the pass
    fingerprint (``None`` for uncacheable passes).
    """

    unit_id: str
    index: int
    kind: str
    spec: Dict[str, object]
    key: Optional[str]
    shard_index: int = 0
    shard_count: int = 1

    def to_wire(self, counterexample_search: bool,
                solver: str = DEFAULT_SOLVER) -> Dict[str, object]:
        return {
            "unit_id": self.unit_id,
            "kind": self.kind,
            "spec": self.spec,
            # The pass fingerprint travels so the worker can verify it
            # re-derives the same key locally (source-skew guard).
            "key": self.key,
            # The solver backend the run discharges with: the worker must
            # prove with the same backend (the key covers it, so a skewed
            # worker refuses the unit rather than poisoning the store).
            "solver": solver,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            # Shards never search (no shard sees the full failure set);
            # the coordinator re-proves whole when a counterexample is
            # wanted.
            "counterexample_search": counterexample_search and self.kind == "pass",
        }


@dataclass
class Plan:
    """The planned decomposition of one pending batch."""

    units: List[WorkUnit] = field(default_factory=list)
    #: Pending entries that cannot travel (inexpressible kwargs, classes
    #: outside the registry): ``(index, pass_class, pass_kwargs, key)``.
    local: List[Tuple] = field(default_factory=list)
    #: Pending indexes that were split, mapped to their shard count.
    split: Dict[int, int] = field(default_factory=dict)

    @property
    def split_passes(self) -> int:
        return len(self.split)


def _distributable_spec(pass_class, pass_kwargs, registry) -> Optional[Dict]:
    """The wire spec for one configuration, or ``None`` if it cannot travel.

    A spec is only usable if the worker's registry round-trips it to the
    *same* configuration: same class object, same canonical kwargs (the
    identity key captures both).  Anything else — custom classes, kwargs
    the protocol cannot express — is verified coordinator-side instead.
    """
    try:
        spec = make_pass_spec(pass_class, pass_kwargs)
        resolved_class, resolved_kwargs = resolve_pass_spec(spec, registry)
    except ProtocolError:
        return None
    if resolved_class is not pass_class:
        return None
    if identity_key(resolved_class, resolved_kwargs) != \
            identity_key(pass_class, pass_kwargs):
        return None
    return spec


def plan_units(
    pending: Sequence[Tuple],
    registry: Dict[str, type],
    *,
    timings: Optional[Dict[str, float]] = None,
    shard_threshold: Optional[float] = None,
    shard_count: Optional[int] = None,
) -> Plan:
    """Plan the unit decomposition of ``pending``.

    ``pending`` is the engine's resolution output:
    ``(index, pass_class, pass_kwargs, key)`` per entry (see
    :func:`repro.engine.driver.resolve_pending`).  ``timings`` maps
    identity keys to recorded wall seconds; a pass is split into subgoal
    shards when its recorded time is at least ``shard_threshold``.
    ``shard_count=None`` (the default) auto-tunes the split per pass from
    the recorded-time/threshold ratio (:func:`derive_shard_count`); an
    explicit count pins every split pass to that many shards.
    ``shard_threshold <= 0`` force-splits every distributable pass (used
    by tests and smoke runs to exercise the sharded path without waiting
    for a slow suite).
    """
    threshold = DEFAULT_SHARD_THRESHOLD if shard_threshold is None else float(shard_threshold)
    fixed_count = None if shard_count is None else max(2, int(shard_count))
    timings = timings or {}
    plan = Plan()
    seen_ids: set = set()

    def unique(unit_id: str, index: int) -> str:
        # The same configuration pending twice in one batch (rare, but the
        # engine allows it) must not collapse into one unit.
        if unit_id in seen_ids:
            unit_id = f"{unit_id}@{index}"
        seen_ids.add(unit_id)
        return unit_id

    for entry in pending:
        index, pass_class, pass_kwargs, key = entry
        spec = _distributable_spec(pass_class, pass_kwargs, registry)
        if spec is None:
            plan.local.append(entry)
            continue
        recorded = timings.get(identity_key(pass_class, pass_kwargs))
        split = threshold <= 0 or (recorded is not None and recorded >= threshold)
        # An uncacheable pass (key None) has no deterministic unit id to
        # merge shards under; keep it whole.
        if split and key is not None:
            count = fixed_count if fixed_count is not None \
                else derive_shard_count(recorded, threshold)
            plan.split[index] = count
            for shard in range(count):
                plan.units.append(WorkUnit(
                    unit_id=unique(unit_fingerprint(key, shard, count), index),
                    index=index,
                    kind="shard",
                    spec=spec,
                    key=key,
                    shard_index=shard,
                    shard_count=count,
                ))
        else:
            plan.units.append(WorkUnit(
                unit_id=unique(key if key is not None else f"uncacheable-{index}", index),
                index=index,
                kind="pass",
                spec=spec,
                key=key,
            ))
    return plan


# --------------------------------------------------------------------------- #
# Fuzz campaigns
# --------------------------------------------------------------------------- #
def plan_fuzz_units(seed: int, num_cases: int, passes: Sequence[str],
                    config: Dict, workers: int) -> List[WorkUnit]:
    """Cut a fuzz campaign's case range into ``kind="fuzz"`` work units.

    Fuzz units reuse the lease/steal/retry pipeline but none of the
    proof-store machinery: the spec carries the seed and a contiguous
    batch of case indices (each case's outcome is a pure function of
    ``(seed, index, config)``, so chunking never affects results), and
    ``key`` is ``None`` — there is no pass fingerprint to skew-check and
    nothing to write to the shared store.  Batches aim at two units per
    worker so work stealing has something to steal.
    """
    size = max(1, math.ceil(num_cases / max(1, workers * 2)))
    units: List[WorkUnit] = []
    for batch_index, lo in enumerate(range(0, num_cases, size)):
        indices = list(range(lo, min(lo + size, num_cases)))
        units.append(WorkUnit(
            unit_id=f"fuzz:{int(seed)}:{indices[0]}:{indices[-1] + 1}",
            index=batch_index,
            kind="fuzz",
            spec={
                "name": f"fuzz[{indices[0]}:{indices[-1] + 1}]",
                "seed": int(seed),
                "indices": indices,
                "passes": list(passes),
                "config": dict(config),
            },
            key=None,
        ))
    return units


# --------------------------------------------------------------------------- #
# Recorded timings
# --------------------------------------------------------------------------- #
def timings_path(cache_dir: os.PathLike) -> Path:
    return Path(cache_dir) / _TIMINGS_FILE


def load_timings(cache_dir: Optional[os.PathLike]) -> Dict[str, float]:
    """The recorded per-configuration wall times (identity key → seconds)."""
    if cache_dir is None:
        return {}
    try:
        with open(timings_path(cache_dir), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return {str(k): float(v) for k, v in payload.items()}
    except (OSError, ValueError, TypeError, AttributeError):
        return {}


def record_timings(cache_dir: Optional[os.PathLike],
                   updates: Dict[str, float]) -> None:
    """Merge freshly measured wall times into the record (last write wins)."""
    if cache_dir is None or not updates:
        return
    merged = load_timings(cache_dir)
    merged.update({str(k): round(float(v), 6) for k, v in updates.items()})
    path = timings_path(cache_dir)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        pass  # timings are an optimisation hint, never worth failing a run
