"""Cluster transports: framed JSON over unix sockets and token-authed TCP.

The service tier (:mod:`repro.service`) speaks JSON over localhost HTTP —
right for a cache daemon serving request/response clients, wrong for a
work-leasing loop where a worker holds one connection open and exchanges
many small messages.  This module generalises the *same payload formats*
(pass specs from :func:`repro.service.protocol.make_pass_spec`, result
payloads from :func:`repro.engine.driver.result_to_payload`, stats from
``EngineStats.to_dict``) onto two stream transports:

* ``unix:/path/to.sock`` — for co-located workers (``repro verify
  --workers N``); the socket file is created ``0700``-dir-private, so the
  filesystem is the credential exactly like the cache directory itself;
* ``host:port`` — token-authenticated TCP for workers on other hosts
  (``repro work --connect HOST:PORT``); the coordinator mints a fresh
  token per run and every connection must present it in its ``hello``
  before anything else is served.

Framing is a 4-byte big-endian length prefix followed by a UTF-8 JSON
object — the simplest format that survives partial reads, interleaved
small messages, and multi-megabyte subgoal snapshots alike.

Discovery mirrors the daemon's: a coordinator that wants to be found
writes ``cluster.json`` (address, token, pid; mode ``0600``) into the
shared cache directory, which is the rendezvous workers already share for
the proof store.
"""

from __future__ import annotations

import hmac
import json
import os
import socket
import struct
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Version of the coordinator/worker message protocol.  A mismatched
#: ``hello`` is rejected during the handshake, so version skew fails
#: closed (the worker exits; the coordinator falls back in-process).
CLUSTER_PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">I")

#: Upper bound on one frame.  Subgoal snapshots for the full 47-pass suite
#: are a few hundred kilobytes; anything near this limit is a bug or an
#: attack, not a workload.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_STATE_FILE = "cluster.json"
_TOKEN_FILE = "cluster-token"


class TransportError(ConnectionError):
    """A cluster connection could not be established or has broken."""


# --------------------------------------------------------------------------- #
# Addresses
# --------------------------------------------------------------------------- #
def parse_address(spec: str) -> Tuple[str, object]:
    """Parse ``unix:/path`` or ``host:port`` into ``(family, target)``.

    >>> parse_address("unix:/tmp/repro.sock")
    ('unix', '/tmp/repro.sock')
    >>> parse_address("127.0.0.1:7200")
    ('tcp', ('127.0.0.1', 7200))
    """
    spec = str(spec).strip()
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise TransportError(f"empty unix socket path in {spec!r}")
        return ("unix", path)
    host, separator, port = spec.rpartition(":")
    if not separator or not host:
        raise TransportError(
            f"malformed address {spec!r} (expected unix:/path or host:port)")
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise TransportError(f"malformed port in address {spec!r}")


def format_address(family: str, target) -> str:
    if family == "unix":
        return f"unix:{target}"
    host, port = target
    return f"{host}:{port}"


# --------------------------------------------------------------------------- #
# Framed connections
# --------------------------------------------------------------------------- #
class Connection:
    """One framed-JSON stream: ``send(dict)`` / ``recv() -> dict | None``."""

    def __init__(self, sock: socket.socket, peer: str = "?") -> None:
        self._sock = sock
        self.peer = peer

    def send(self, message: Dict) -> None:
        body = json.dumps(message, sort_keys=True).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise TransportError(
                f"refusing to send a {len(body)}-byte frame to {self.peer}")
        try:
            self._sock.sendall(_HEADER.pack(len(body)) + body)
        except OSError as exc:
            raise TransportError(f"send to {self.peer} failed: {exc}") from exc

    def _read_exact(self, count: int) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except OSError as exc:
                raise TransportError(f"recv from {self.peer} failed: {exc}") from exc
            if not chunk:
                if remaining == count:
                    return None  # clean EOF between frames
                raise TransportError(f"{self.peer} closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> Optional[Dict]:
        """The next message, or ``None`` when the peer closed cleanly."""
        header = self._read_exact(_HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"{self.peer} announced a {length}-byte frame; closing")
        body = self._read_exact(length)
        if body is None:
            raise TransportError(f"{self.peer} closed before its frame body")
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(f"{self.peer} sent a malformed frame") from exc
        if not isinstance(message, dict):
            raise TransportError(f"{self.peer} sent a non-object frame")
        return message

    def settimeout(self, seconds: Optional[float]) -> None:
        self._sock.settimeout(seconds)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(address: str, timeout: Optional[float] = 30.0) -> Connection:
    """Open a client connection to a coordinator address."""
    family, target = parse_address(address)
    try:
        if family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(target)
        else:
            sock = socket.create_connection(target, timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError as exc:
        raise TransportError(f"cannot connect to {address}: {exc}") from exc
    return Connection(sock, peer=address)


class Listener:
    """A listening cluster endpoint over either transport family."""

    def __init__(self, address: str, backlog: int = 16) -> None:
        self.family, target = parse_address(address)
        if self.family == "unix":
            self._path = target
            try:
                os.unlink(target)
            except OSError:
                pass
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.bind(target)
            os.chmod(target, 0o600)
            self._target = target
        else:
            self._path = None
            host, port = target
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind((host, port))
            self._target = self._sock.getsockname()[:2]
        self._sock.listen(backlog)

    @property
    def address(self) -> str:
        """The bound address (with the real port when ``0`` was asked for)."""
        return format_address(self.family, self._target)

    def accept(self, timeout: Optional[float] = None) -> Connection:
        self._sock.settimeout(timeout)
        try:
            sock, peer = self._sock.accept()
        except socket.timeout as exc:
            raise TransportError("accept timed out") from exc
        except OSError as exc:
            raise TransportError(f"accept failed: {exc}") from exc
        if self.family == "tcp":
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            peer = f"{peer[0]}:{peer[1]}"
        else:
            peer = f"unix-peer-{id(sock):x}"
        sock.settimeout(None)
        return Connection(sock, peer=peer)

    def close(self) -> None:
        self._sock.close()
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:
                pass

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Handshake
# --------------------------------------------------------------------------- #
def client_hello(connection: Connection, token: str, **info) -> Dict:
    """Authenticate a fresh connection; returns the coordinator's welcome."""
    hello = {"op": "hello", "token": token,
             "protocol_version": CLUSTER_PROTOCOL_VERSION,
             "pid": os.getpid()}
    hello.update(info)
    connection.send(hello)
    welcome = connection.recv()
    if welcome is None or welcome.get("op") != "welcome":
        error = (welcome or {}).get("error", "connection closed")
        raise TransportError(f"coordinator rejected the handshake: {error}")
    return welcome


def server_handshake(connection: Connection, token: str,
                     welcome_extra: Optional[Dict] = None) -> Optional[Dict]:
    """Verify a client's ``hello``; returns it, or ``None`` after rejecting.

    The token comparison is constant-time (the TCP transport may be
    reachable by other hosts); a bad token or a protocol-version mismatch
    gets one explanatory frame and a closed connection.
    """
    hello = connection.recv()
    if hello is None or hello.get("op") != "hello":
        connection.close()
        return None
    presented = str(hello.get("token", ""))
    if not hmac.compare_digest(presented.encode("utf-8", "surrogateescape"),
                               token.encode("utf-8")):
        connection.send({"op": "error", "error": "bad token"})
        connection.close()
        return None
    if hello.get("protocol_version") != CLUSTER_PROTOCOL_VERSION:
        connection.send({"op": "error",
                         "error": f"protocol version mismatch "
                                  f"(coordinator speaks {CLUSTER_PROTOCOL_VERSION})"})
        connection.close()
        return None
    welcome = {"op": "welcome", "protocol_version": CLUSTER_PROTOCOL_VERSION}
    welcome.update(welcome_extra or {})
    connection.send(welcome)
    return hello


# --------------------------------------------------------------------------- #
# Discovery (cluster.json / cluster-token in the shared cache directory)
# --------------------------------------------------------------------------- #
@dataclass
class ClusterEndpoint:
    """Where a coordinator listens and how to authenticate to it."""

    address: str
    token: str
    pid: int
    protocol_version: int = CLUSTER_PROTOCOL_VERSION


def state_path(cache_dir: os.PathLike) -> Path:
    return Path(cache_dir) / _STATE_FILE


def token_path(cache_dir: os.PathLike) -> Path:
    """The bare-token sidecar, convenient to copy to remote worker hosts."""
    return Path(cache_dir) / _TOKEN_FILE


def _write_private(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    # Private from the first byte — the content is the credential.
    descriptor = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp, path)


def write_cluster_state(cache_dir: os.PathLike, endpoint: ClusterEndpoint) -> Path:
    """Persist the endpoint (and a copyable token file) for worker discovery."""
    path = state_path(cache_dir)
    _write_private(path, json.dumps(asdict(endpoint), indent=2, sort_keys=True) + "\n")
    _write_private(token_path(cache_dir), endpoint.token + "\n")
    return path


def read_cluster_state(cache_dir: os.PathLike) -> Optional[ClusterEndpoint]:
    """Load a previously written endpoint, or ``None`` if absent/unreadable."""
    try:
        with open(state_path(cache_dir), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("protocol_version") != CLUSTER_PROTOCOL_VERSION:
            return None
        return ClusterEndpoint(
            address=str(payload["address"]),
            token=str(payload["token"]),
            pid=int(payload["pid"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def remove_cluster_state(cache_dir: os.PathLike, token: Optional[str] = None) -> None:
    """Drop the discovery files — only if they are still ours (same token)."""
    state = read_cluster_state(cache_dir)
    if token is not None and state is not None and state.token != token:
        return
    for path in (state_path(cache_dir), token_path(cache_dir)):
        try:
            os.unlink(path)
        except OSError:
            pass
