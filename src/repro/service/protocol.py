"""The JSON wire protocol between verification clients and the daemon.

The protocol is deliberately small and stdlib-only: HTTP/1.1 over localhost
TCP, JSON bodies, one shared-secret token.  Three endpoints:

``POST /verify``
    ``{"passes": [{"name": ..., "coupling": {...}|null}, ...],
    "jobs": N|null, "counterexample_search": bool,
    "changed_paths": [path, ...]|absent, "solver": name|absent}`` →
    ``{"results": [...], "stats": {...}, "daemon": {...}}``.  Results are the
    engine's JSON payloads (plus a ``from_cache`` flag); ``stats`` is an
    :class:`~repro.engine.driver.EngineStats` dict.

    ``solver`` (protocol v3) selects the prover backend the daemon
    discharges with (``auto``/``builtin``/``z3``/``bounded``); the choice
    joins every cache key daemon-side exactly as it would in-process.  A
    backend the daemon cannot run answers with a protocol error, and the
    client falls back to in-process verification (where the same error
    surfaces to the user instead of being silently substituted).

    ``changed_paths`` (protocol v2) makes the request *incremental*: the
    daemon first absorbs the named edits (reloading the modules behind
    them and re-deriving its fingerprints, exactly like its ``--watch``
    loop would) and then routes the batch through
    ``verify_passes(changed_paths=...)``, so only invalidated passes are
    re-fingerprinted.  An empty list means "nothing changed"; an absent
    field means a full run.  Paths are interpreted on the daemon's
    filesystem — clients and daemon are assumed to share a checkout,
    which localhost clients do by construction.

``GET /status``
    Daemon identity, uptime, request counters, and the proof-store summary.

``POST /shutdown``
    Acknowledges, then stops the server.

Discovery is file-based: a running daemon writes ``daemon.json`` (endpoint,
pid, auth token; mode 0600) into its cache directory, which is exactly the
rendezvous clients already share for the proof store itself.

Wire-format invariants (what ``docs/caching.md`` and ``docs/operations.md``
document and every client may rely on):

1. **Only expressible requests travel.**  A pass spec carries a class name
   and at most a coupling map; any other constructor kwarg raises
   :class:`ProtocolError` *client-side*, so the daemon can never silently
   verify a different configuration than the caller asked for:

   >>> from repro.passes import CXCancellation, SabreSwap
   >>> make_pass_spec(CXCancellation, None)
   {'name': 'CXCancellation', 'coupling': None}
   >>> from repro.coupling.devices import linear_device
   >>> spec = make_pass_spec(SabreSwap, {"coupling": linear_device(3)})
   >>> spec["coupling"]["num_qubits"]
   3
   >>> make_pass_spec(SabreSwap, None)  # doctest: +IGNORE_EXCEPTION_DETAIL
   Traceback (most recent call last):
       ...
   ProtocolError: SabreSwap needs a coupling map; refusing to let the daemon substitute its default device

2. **Couplings are canonical on the wire.**  Edges are serialised sorted,
   so two clients describing the same device produce byte-identical specs
   (and therefore identical cache keys daemon-side).
3. **Results round-trip.**  ``results`` entries are exactly the engine's
   JSON payloads (:func:`repro.engine.driver.result_to_payload`) plus a
   ``from_cache`` flag; ``stats`` is an ``EngineStats.to_dict()`` block.
   Decoding with :func:`repro.engine.driver.payload_to_result` loses
   nothing a report consumes.
4. **Version skew fails closed.**  ``protocol_version`` travels in the
   state file; a client that finds a mismatched version treats it as "no
   daemon" and falls back in-process rather than speaking a format it does
   not know.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

#: v2: ``/verify`` accepts ``changed_paths`` for incremental requests.
#: v3: ``/verify`` accepts ``solver`` (the prover-backend choice must reach
#: the daemon — an old daemon silently proving with a different backend
#: than requested would be a correctness bug, so skew must fail closed).
#: Version skew fails closed either way (invariant 4), so an old daemon is
#: simply invisible to newer clients and vice versa.
PROTOCOL_VERSION = 3

_STATE_FILE = "daemon.json"

#: Header carrying the shared-secret token from the state file.
TOKEN_HEADER = "X-Repro-Token"


class ProtocolError(ValueError):
    """A request or pass spec the wire format cannot express."""


@dataclass
class DaemonEndpoint:
    """Where a daemon listens and how to authenticate to it."""

    host: str
    port: int
    token: str
    pid: int
    backend: str
    cache_dir: str
    protocol_version: int = PROTOCOL_VERSION

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


def state_path(cache_dir: os.PathLike) -> Path:
    return Path(cache_dir) / _STATE_FILE


def write_state(cache_dir: os.PathLike, endpoint: DaemonEndpoint) -> Path:
    """Persist the endpoint for client discovery (owner-readable only)."""
    path = state_path(cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    # Created private from the first byte: the file carries the auth token,
    # so an after-the-fact chmod would leave a world-readable window.
    descriptor = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
        json.dump(asdict(endpoint), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def read_state(cache_dir: os.PathLike) -> Optional[DaemonEndpoint]:
    """Load a previously written endpoint, or ``None`` if absent/unreadable."""
    path = state_path(cache_dir)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("protocol_version") != PROTOCOL_VERSION:
            return None
        return DaemonEndpoint(
            host=payload["host"],
            port=int(payload["port"]),
            token=payload["token"],
            pid=int(payload["pid"]),
            backend=payload.get("backend", "sqlite"),
            cache_dir=payload.get("cache_dir", str(cache_dir)),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def remove_state(cache_dir: os.PathLike) -> None:
    try:
        os.unlink(state_path(cache_dir))
    except OSError:
        pass


# --------------------------------------------------------------------------- #
# Pass specs
# --------------------------------------------------------------------------- #
def serialize_coupling(coupling) -> Dict[str, object]:
    return {
        "num_qubits": coupling.num_qubits,
        "edges": [list(edge) for edge in sorted(coupling.edges)],
    }


def make_pass_spec(pass_class, pass_kwargs: Optional[Dict]) -> Dict[str, object]:
    """Encode one (pass class, constructor kwargs) pair for the wire.

    Only the kwargs the verified passes actually take — a coupling map or
    nothing — are expressible; anything else raises :class:`ProtocolError`
    so callers fall back to in-process verification rather than silently
    verifying a different configuration.
    """
    spec: Dict[str, object] = {"name": pass_class.__name__, "coupling": None}
    kwargs = dict(pass_kwargs or {})
    coupling = kwargs.pop("coupling", None)
    if kwargs:
        raise ProtocolError(
            f"cannot ship kwargs {sorted(kwargs)} for {pass_class.__name__} "
            f"over the daemon protocol"
        )
    if coupling is None:
        # A coupling pass with no coupling would be resolved against the
        # daemon's default device — a *different* configuration (and cache
        # key) than the in-process kwargs=None path.  Refuse, so callers
        # fall back and both paths keep serving identical verdicts.
        from repro.engine.driver import COUPLING_PASSES

        if pass_class.__name__ in COUPLING_PASSES:
            raise ProtocolError(
                f"{pass_class.__name__} needs a coupling map; refusing to let "
                f"the daemon substitute its default device"
            )
    else:
        spec["coupling"] = serialize_coupling(coupling)
    return spec


def resolve_pass_spec(spec: Dict[str, object],
                      registry: Dict[str, type]) -> Tuple[type, Optional[Dict]]:
    """Decode one wire spec back into (pass class, constructor kwargs)."""
    try:
        name = spec["name"]
    except (KeyError, TypeError):
        raise ProtocolError(f"malformed pass spec: {spec!r}")
    pass_class = registry.get(name)
    if pass_class is None:
        raise ProtocolError(f"unknown pass {name!r}")
    coupling_spec = spec.get("coupling")
    if coupling_spec is None:
        from repro.engine.driver import default_pass_kwargs

        return pass_class, default_pass_kwargs(pass_class)
    try:
        from repro.coupling.coupling_map import CouplingMap

        coupling = CouplingMap(
            edges=[tuple(edge) for edge in coupling_spec["edges"]],
            num_qubits=int(coupling_spec["num_qubits"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed coupling spec for {name!r}: {exc}")
    return pass_class, {"coupling": coupling}


def pass_registry() -> Dict[str, type]:
    """Every pass the daemon will verify by name (verified + extensions)."""
    from repro.passes import ALL_VERIFIED_PASSES, EXTENSION_PASSES

    registry: Dict[str, type] = {}
    for pass_class in list(ALL_VERIFIED_PASSES) + list(EXTENSION_PASSES):
        registry[pass_class.__name__] = pass_class
    return registry
