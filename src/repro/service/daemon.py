"""The resident verification daemon.

One long-lived process owns the shared proof store and keeps everything a
cold ``repro verify`` pays for — importing the prover, hashing the toolchain
into the active fingerprint, interning the rewrite-rule set — warm across
requests.  Clients speak the JSON protocol from
:mod:`repro.service.protocol`; each ``/verify`` request is dispatched
through the existing engine scheduler (:func:`repro.engine.verify_passes`)
against the daemon's open cache, so every client shares every other
client's proofs.

The server is a stdlib :class:`~http.server.ThreadingHTTPServer` bound to
localhost.  Status queries are served concurrently; verification requests
serialise on one lock (the store itself is multi-process safe, but
per-request statistics are deltas over shared counters, and forking worker
pools from concurrent threads is exactly the kind of subtle hazard a cache
daemon does not need).  Verdicts for queued clients are identical either
way — only latency differs.
"""

from __future__ import annotations

import hmac
import json
import os
import secrets
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.engine.cache import default_cache_dir, open_proof_cache
from repro.engine.driver import (
    EngineStats,
    batch_distinct_configs,
    result_to_payload,
    verify_passes,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    TOKEN_HEADER,
    DaemonEndpoint,
    ProtocolError,
    pass_registry,
    remove_state,
    resolve_pass_spec,
    write_state,
)
from repro.telemetry import trace as _trace
from repro.telemetry.health import read_rss
from repro.telemetry.metrics import CounterRegistry, render_prometheus


def absorb_source_changes(service: "VerificationService", changed) -> None:
    """Bring the daemon's in-memory state up to date with edited files.

    Reloads the changed modules, re-derives the toolchain fingerprint
    (switching the open store over when the *prover* was edited), and
    re-resolves the wire-facing registry against the reloaded modules.
    Shared by the background watcher's cycle and by ``/verify`` requests
    carrying ``changed_paths`` — a daemon must never key a new fingerprint
    from on-disk source while proving the old in-memory code.  Callers
    hold the verify lock.
    """
    from repro.engine.fingerprint import toolchain_fingerprint
    from repro.incremental.watch import refresh_classes, refresh_source_state

    refresh_source_state(changed)
    toolchain = toolchain_fingerprint()
    if toolchain != service.toolchain:
        service.toolchain = toolchain
        service.cache.active_fingerprint = toolchain
    # The registry is the wire-facing resolution table; it must always
    # point at the reloaded classes or a request arriving right after the
    # absorb would still verify the pre-edit code.
    service.registry = {
        name: cls for name, cls in zip(
            service.registry,
            refresh_classes(list(service.registry.values())))
    }


class VerificationService:
    """The daemon's verification core, independent of the HTTP layer."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 backend: str = "sqlite", jobs: int = 1) -> None:
        self.cache_dir = Path(cache_dir or default_cache_dir())
        self.backend = backend
        self.jobs = jobs
        self.started_at = time.time()
        self.requests_served = 0
        self.passes_served = 0
        #: The ``/metrics`` surface (see :meth:`metrics`): request and
        #: cache-outcome counters accumulated across the daemon's lifetime.
        self.counters = CounterRegistry()
        self._counter_lock = threading.Lock()
        self._verify_lock = threading.Lock()
        # Warm-up: hashing the toolchain imports and fingerprints the whole
        # prover; building the registry imports every pass.  After this,
        # requests pay only for actual proof work (or cache lookups).
        from repro.engine.fingerprint import rule_set_fingerprint, toolchain_fingerprint

        self.registry = pass_registry()
        rule_set_fingerprint()
        self.toolchain = toolchain_fingerprint()
        self.cache = open_proof_cache(self.cache_dir, backend)
        #: Set by :func:`serve` when the opt-in background file watcher is
        #: running (``repro serve --watch``).
        self.watcher: Optional["DaemonWatcher"] = None

    def close(self) -> None:
        self.cache.close()

    # ------------------------------------------------------------------ #
    # Request handlers
    # ------------------------------------------------------------------ #
    def verify(self, body: Dict) -> Dict:
        """Handle one ``/verify`` request body, returning the response dict."""
        self.counters.inc("repro_inflight_requests", 1)
        tracer = _trace.current()
        started = time.perf_counter()
        try:
            if tracer is None:
                response = self._handle_verify(body)
            else:
                with tracer.span("daemon.verify", kind="daemon") as handle:
                    response = self._handle_verify(body)
                    handle.attrs["passes"] = len(response["results"])
        except Exception:
            self.counters.inc("repro_request_errors_total")
            raise
        finally:
            self.counters.inc("repro_inflight_requests", -1)
        stats = response.get("stats") or {}
        # Per-solver latency histogram: warm (cache-served) requests land
        # in the sub-millisecond buckets, cold proofs in the second-scale
        # ones, so one scrape distinguishes "slow solver" from "cold store".
        self.counters.observe(
            "repro_verify_latency_seconds", time.perf_counter() - started,
            labels=(("solver", str(stats.get("solver") or "unknown")),))
        self.counters.inc("repro_requests_total")
        self.counters.inc("repro_passes_served_total",
                          len(response.get("results") or []))
        for metric, key in (("repro_cache_hits_total", "cache_hits"),
                            ("repro_cache_misses_total", "cache_misses"),
                            ("repro_subgoal_hits_total", "subgoal_hits"),
                            ("repro_subgoal_misses_total", "subgoal_misses")):
            self.counters.inc(metric, int(stats.get(key) or 0))
        return response

    def _handle_verify(self, body: Dict) -> Dict:
        specs = body.get("passes")
        if not isinstance(specs, list) or not specs:
            raise ProtocolError("request must carry a non-empty 'passes' list")
        # With the watcher on, serve requests only from caught-up state: an
        # edit that landed since the last poll would otherwise be resolved
        # to the stale in-memory classes while being keyed against the new
        # on-disk source — and that wrong verdict would be cached.  Catch
        # up *before* resolving specs, so they hit the refreshed registry.
        # A failed catch-up must fail the request (the client falls back to
        # sound in-process verification), not proceed on possibly-stale
        # state; half-saved files are already tolerated inside the cycle.
        if self.watcher is not None:
            self.watcher.run_cycle()
        changed_paths = body.get("changed_paths")
        if changed_paths is not None:
            if not isinstance(changed_paths, list) or \
                    not all(isinstance(path, str) for path in changed_paths):
                raise ProtocolError("'changed_paths' must be a list of paths")
            if changed_paths:
                # Absorb the client-observed edits before resolving specs:
                # the reload machinery is the watcher's (idempotent when a
                # watching daemon already caught the same edit up above).
                with self._verify_lock:
                    absorb_source_changes(self, changed_paths)
        pairs = [resolve_pass_spec(spec, self.registry) for spec in specs]
        jobs = body.get("jobs")
        jobs = self.jobs if jobs is None else int(jobs)
        counterexample_search = bool(body.get("counterexample_search", True))
        solver = str(body.get("solver", "auto"))
        from repro.prover.backend import SolverUnavailable

        with self._verify_lock:
            try:
                results, stats = self._verify_pairs(
                    pairs, jobs, counterexample_search,
                    changed_paths=changed_paths, solver=solver)
            except (SolverUnavailable, ValueError) as exc:
                # An unusable solver choice is the *request's* problem: a
                # protocol error sends the client to its in-process
                # fallback, where the same error reaches the user.
                raise ProtocolError(str(exc))
        if self.watcher is not None:
            try:
                self.watcher.refresh_surface()
            except Exception as exc:
                # The next cycle's poll re-reads the dep index and retries
                # the baseline automatically; log so the shrunken-window
                # guarantee being temporarily weaker is at least visible.
                import sys

                print(f"repro serve: watch-surface refresh failed "
                      f"({type(exc).__name__}: {exc}); retrying next cycle",
                      file=sys.stderr)
        with self._counter_lock:
            self.requests_served += 1
            self.passes_served += len(pairs)
        payloads = []
        for result in results:
            payload = result_to_payload(result)
            payload["from_cache"] = result.from_cache
            payloads.append(payload)
        return {
            "results": payloads,
            "stats": stats.to_dict(),
            "daemon": self.identity(),
        }

    def _verify_pairs(self, pairs: List[Tuple[type, Optional[Dict]]],
                      jobs: int, counterexample_search: bool,
                      changed_paths: Optional[List[str]] = None,
                      solver: str = "auto"):
        """Verify (class, kwargs) pairs, one engine batch per distinct class.

        A request may name the same class twice with different couplings;
        :func:`batch_distinct_configs` defers such repeats to later rounds
        (the common case — each class once — is a single batch).
        ``changed_paths`` (already absorbed by the caller) scopes each
        batch incrementally.
        """
        results = [None] * len(pairs)
        merged: Optional[EngineStats] = None
        for batch in batch_distinct_configs(pairs):
            batch_kwargs = {cls: kwargs for _, cls, kwargs in batch}
            report = verify_passes(
                [cls for _, cls, _ in batch],
                jobs=jobs,
                cache=self.cache,
                pass_kwargs_fn=batch_kwargs.get,
                counterexample_search=counterexample_search,
                changed_paths=changed_paths,
                solver=solver,
            )
            for (index, _, _), result in zip(batch, report.results):
                results[index] = result
            merged = report.stats if merged is None else merged.merge(report.stats)
        return results, merged

    def identity(self) -> Dict[str, object]:
        with self._counter_lock:
            return {
                "pid": os.getpid(),
                "backend": self.backend,
                "cache_dir": str(self.cache_dir),
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "requests_served": self.requests_served,
                "passes_served": self.passes_served,
                "protocol_version": PROTOCOL_VERSION,
            }

    def status(self) -> Dict[str, object]:
        payload = self.identity()
        payload["toolchain_fingerprint"] = self.toolchain
        payload["known_passes"] = len(self.registry)
        watcher = self.watcher
        payload["watcher"] = None if watcher is None else {
            "interval_seconds": watcher.interval,
            "cycles": watcher.cycles,
            "prewarmed": watcher.prewarmed,
        }
        summary = getattr(self.cache, "summary", None)
        if summary is not None:
            payload["store"] = summary()
        else:
            payload["store"] = {"backend": getattr(self.cache, "backend", None),
                                "entries_live": len(self.cache)}
        payload["counters"] = self.counters.snapshot()
        return payload

    def metrics(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition.

        The same numbers feed ``repro status`` (via
        :func:`repro.telemetry.metrics.parse_prometheus`), so the CLI and
        any scraper read one surface.  Gauges are sampled here; counters
        come straight from :attr:`counters`.
        """
        with self._counter_lock:
            requests = self.requests_served
            passes = self.passes_served
        # Counters a scraper should always see, even before first touch.
        values = {
            "repro_request_errors_total": 0,
            "repro_inflight_requests": 0,
            "repro_cache_hits_total": 0,
            "repro_cache_misses_total": 0,
            "repro_subgoal_hits_total": 0,
            "repro_subgoal_misses_total": 0,
        }
        values.update(self.counters.snapshot())
        values.update({
            "repro_requests_total": requests,
            "repro_passes_served_total": passes,
            "repro_uptime_seconds": round(time.time() - self.started_at, 3),
            "repro_protocol_version": PROTOCOL_VERSION,
            "repro_known_passes": len(self.registry),
        })
        rss = read_rss()
        if rss is not None:
            values["repro_rss_bytes"] = rss
        try:
            from repro.smt.arena import kernel_stats

            kernel = kernel_stats()
            values["repro_kernel_interned_nodes"] = kernel["interned_nodes"]
            values["repro_kernel_intern_hits_total"] = kernel["intern_hits"]
            values["repro_kernel_find_ops_total"] = kernel["find_ops"]
            values["repro_kernel_union_ops_total"] = kernel["union_ops"]
            values["repro_kernel_closures_total"] = kernel["closures"]
        except Exception:
            pass
        try:
            from repro.prover.portfolio import portfolio_stats

            for field, value in portfolio_stats().items():
                values[f"repro_portfolio_{field}_total"] = int(value)
        except Exception:
            pass
        summary = getattr(self.cache, "summary", None)
        if callable(summary):
            store = summary()
            for key in ("entries_total", "entries_live", "pass_entries",
                        "subgoal_entries", "cert_entries"):
                if store.get(key) is not None:
                    values[f"repro_store_{key}"] = int(store[key])
            for metric, key in (("repro_store_hits_total", "accumulated_hits"),
                                ("repro_store_cert_hits_total",
                                 "cert_accumulated_hits")):
                if store.get(key) is not None:
                    values[metric] = int(store[key])
        return render_prometheus(values, help_text={
            "repro_requests_total": "verify requests served",
            "repro_passes_served_total": "pass verdicts served",
            "repro_uptime_seconds": "seconds since the daemon started",
            "repro_inflight_requests": "verify requests currently executing",
            "repro_rss_bytes": "daemon resident set size",
            "repro_kernel_interned_nodes": "slot-arena term nodes interned",
            "repro_kernel_find_ops_total": "kernel union-find find operations",
            "repro_kernel_union_ops_total": "kernel union operations",
            "repro_verify_latency_seconds":
                "verify request latency by solver backend",
        }, histograms=self.counters.histogram_snapshot())


class DaemonWatcher(threading.Thread):
    """Background file watcher that pre-warms invalidated cache entries.

    Opt-in (``repro serve --watch``): polls the dependency index's file
    surface; when a watched source file really changes, it reloads the
    edited modules, refreshes the memoised fingerprints, and re-verifies
    exactly the invalidated configurations against the daemon's own store —
    so the next ``repro verify --daemon`` after an edit is served warm
    instead of paying the re-proof at request time.

    Cycles take the service's verify lock, so a watcher re-proof and a
    client request serialise exactly like two client requests do.  The
    toolchain fingerprint is re-derived after a reload; if it moved (a
    prover edit), the service and its store switch to the new fingerprint
    so freshly proved entries are keyed — and client requests filtered —
    consistently.
    """

    def __init__(self, service: "VerificationService", interval: float = 2.0,
                 pass_classes=None, pass_kwargs_fn=None) -> None:
        super().__init__(name="repro-daemon-watcher", daemon=True)
        from repro.engine.driver import default_pass_kwargs
        from repro.incremental.detect import ChangeDetector

        self.service = service
        self.interval = interval
        self.kwargs_fn = pass_kwargs_fn or default_pass_kwargs
        self._explicit_classes = list(pass_classes) if pass_classes is not None else None
        self._detector = ChangeDetector()
        self._stop = threading.Event()
        #: Serialises cycles: the polling thread and request-time catch-up
        #: calls (see VerificationService.verify) share one detector.
        self._cycle_lock = threading.Lock()
        self.cycles = 0
        self.prewarmed = 0
        self._baseline()

    def _classes(self):
        if self._explicit_classes is not None:
            return self._explicit_classes
        return list(self.service.registry.values())

    def _baseline(self) -> None:
        """Extend the watch surface with newly recorded dependency paths.

        Uses ``add_paths`` (baseline-only), never ``poll``: polling here
        would silently consume a pending change of an already-watched file.
        """
        from repro.incremental.deps import dep_index_paths

        self._detector.add_paths(
            dep_index_paths(self.service.cache.deps_snapshot()))

    def refresh_surface(self) -> None:
        """Re-baseline after a request may have recorded new dependencies.

        Called by the service after each verify request: a configuration
        verified for the first time only just gained a dependency entry,
        and its files must be watched from *this* moment — waiting for the
        next cycle would let an edit race in unobserved and be baselined
        as if it were the verified content.
        """
        with self._cycle_lock:
            self._baseline()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_cycle()
            except Exception:
                # A failed cycle (half-saved file, transient store error)
                # must not kill the watcher; the next poll retries.
                continue

    def run_cycle(self) -> int:
        """Poll once; re-verify what an edit invalidated.  Returns the count."""
        with self._cycle_lock:
            return self._cycle()

    def _cycle(self) -> int:
        from repro.incremental.deps import dep_index_paths
        from repro.incremental.watch import refresh_classes

        self.cycles += 1
        changed = self._detector.poll(
            dep_index_paths(self.service.cache.deps_snapshot()))
        if not changed:
            return 0
        with self.service._verify_lock:
            from repro.engine.driver import verify_passes

            absorb_source_changes(self.service, changed)
            if self._explicit_classes is not None:
                self._explicit_classes = refresh_classes(self._explicit_classes)
            report = verify_passes(
                self._classes(),
                jobs=self.service.jobs,
                cache=self.service.cache,
                pass_kwargs_fn=self.kwargs_fn,
                changed_paths=changed,
            )
        stale = report.stats.stale_passes or 0
        self.prewarmed += stale
        return stale


class _Handler(BaseHTTPRequestHandler):
    """HTTP plumbing around :class:`VerificationService`."""

    server: "ProofDaemon"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _authorized(self) -> bool:
        # Constant-time comparison: a short-circuiting == would let another
        # local user recover the token byte-by-byte from response timing.
        # Compared as bytes — compare_digest raises on non-ASCII str, and the
        # header is attacker-controlled (http.server decodes it as latin-1).
        received = self.headers.get(TOKEN_HEADER, "")
        return hmac.compare_digest(
            received.encode("utf-8", "surrogateescape"),
            self.server.token.encode("utf-8"),
        )

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ProtocolError("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if not self._authorized():
            self._send_json(401, {"error": "bad or missing token"})
            return
        if self.path == "/status":
            self._send_json(200, self.server.service.status())
        elif self.path == "/metrics":
            body = self.server.service.metrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(404, {"error": f"unknown endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if not self._authorized():
            self._send_json(401, {"error": "bad or missing token"})
            return
        if self.path == "/verify":
            try:
                response = self.server.service.verify(self._read_body())
            except ProtocolError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # a crashed proof must not kill the daemon
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            else:
                self._send_json(200, response)
        elif self.path == "/shutdown":
            self._send_json(200, {"ok": True})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send_json(404, {"error": f"unknown endpoint {self.path}"})


class ProofDaemon(ThreadingHTTPServer):
    """The listening server: localhost-only, token-authenticated.

    ``port=0`` picks a free port.  On construction the endpoint (including
    the freshly minted token) is written to the cache directory for client
    discovery; :meth:`close` removes it.  Use as a context manager, with
    :meth:`serve_forever` in the foreground (CLI) or a thread (tests).
    """

    daemon_threads = True

    def __init__(self, service: VerificationService, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self.token = secrets.token_hex(16)
        self.verbose = verbose
        self.endpoint = DaemonEndpoint(
            host=self.server_address[0],
            port=self.server_address[1],
            token=self.token,
            pid=os.getpid(),
            backend=service.backend,
            cache_dir=str(service.cache_dir),
        )
        write_state(service.cache_dir, self.endpoint)

    def close(self) -> None:
        # Only remove the discovery file if it is still ours — a rolling
        # restart may already have written a newer daemon's endpoint, and
        # deleting that would cut every client over to the slow path.
        from repro.service.protocol import read_state

        state = read_state(self.service.cache_dir)
        if state is None or state.token == self.token:
            remove_state(self.service.cache_dir)
        self.server_close()
        self.service.close()

    def __enter__(self) -> "ProofDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(cache_dir: Optional[os.PathLike] = None, backend: str = "sqlite",
          host: str = "127.0.0.1", port: int = 0, jobs: int = 1,
          verbose: bool = False,
          watch_interval: Optional[float] = None,
          ready_callback=None) -> None:
    """Run a daemon in the foreground until interrupted or shut down.

    Ctrl-C *and* SIGTERM (``kill <pid>``, service managers) both run the
    full cleanup — without the handler a terminated daemon would leave its
    stale ``daemon.json`` behind and every later ``--daemon`` client would
    pay a failed probe before falling back.

    ``watch_interval`` (seconds) opts into the background
    :class:`DaemonWatcher`: edited pass/toolchain sources are re-verified
    into the store as they change, so clients arriving after an edit are
    served warm.
    """
    import signal

    service = VerificationService(cache_dir=cache_dir, backend=backend, jobs=jobs)
    with ProofDaemon(service, host=host, port=port, verbose=verbose) as server:
        watcher = None
        if watch_interval is not None:
            watcher = DaemonWatcher(service, interval=watch_interval)
            service.watcher = watcher
            watcher.start()

        def stop(_signum, _frame):
            threading.Thread(target=server.shutdown, daemon=True).start()

        previous = None
        try:
            previous = signal.signal(signal.SIGTERM, stop)
        except ValueError:
            pass  # not the main thread (embedding); rely on shutdown()
        if ready_callback is not None:
            ready_callback(server.endpoint)
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            if watcher is not None:
                watcher.stop()
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)
