"""Client for the verification daemon, with graceful in-process fallback.

``DaemonClient`` speaks the JSON wire protocol; ``verify_with_fallback`` is
what the CLI and the pass manager call: it discovers a daemon through the
cache directory's state file, ships the request (batched, with a timeout),
and — if no daemon is running, the daemon is unreachable, or the request
cannot be expressed on the wire — quietly verifies in-process instead.
A missing daemon is never an error; it is just a cold path.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.engine.cache import default_cache_dir
from repro.engine.driver import (
    EngineReport,
    EngineStats,
    default_pass_kwargs,
    payload_to_result,
    verify_passes,
)
from repro.service.protocol import (
    TOKEN_HEADER,
    DaemonEndpoint,
    ProtocolError,
    make_pass_spec,
    read_state,
)

#: Transport-level errors that mean "no usable daemon there", not "the
#: request failed": refused/timed-out sockets, and non-HTTP garbage from a
#: stale endpoint whose port was reused by some other service.
_UNREACHABLE_ERRORS = (ConnectionError, socket.timeout, socket.gaierror,
                       OSError, http.client.HTTPException)


class DaemonUnavailable(RuntimeError):
    """Raised by :class:`DaemonClient` when the daemon cannot be reached."""


class DaemonClient:
    """A thin, connection-per-request HTTP client for one daemon endpoint."""

    def __init__(self, endpoint: DaemonEndpoint, timeout: float = 120.0) -> None:
        self.endpoint = endpoint
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        connection = http.client.HTTPConnection(
            self.endpoint.host, self.endpoint.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body).encode("utf-8")
            headers = {TOKEN_HEADER: self.endpoint.token,
                       "Content-Type": "application/json"}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except _UNREACHABLE_ERRORS as exc:
            raise DaemonUnavailable(
                f"daemon at {self.endpoint.address} unreachable: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DaemonUnavailable(
                f"daemon at {self.endpoint.address} sent a malformed response"
            ) from exc
        if response.status != 200:
            error = decoded.get("error", f"HTTP {response.status}")
            if response.status in (400, 404):
                raise ProtocolError(error)
            raise DaemonUnavailable(
                f"daemon at {self.endpoint.address} refused the request: {error}"
            )
        return decoded

    def _request_text(self, method: str, path: str) -> str:
        """Like :meth:`_request` but for non-JSON bodies (``/metrics`` is
        Prometheus text exposition, not a JSON document)."""
        connection = http.client.HTTPConnection(
            self.endpoint.host, self.endpoint.port, timeout=self.timeout
        )
        try:
            connection.request(method, path,
                               headers={TOKEN_HEADER: self.endpoint.token})
            response = connection.getresponse()
            raw = response.read()
        except _UNREACHABLE_ERRORS as exc:
            raise DaemonUnavailable(
                f"daemon at {self.endpoint.address} unreachable: {exc}"
            ) from exc
        finally:
            connection.close()
        if response.status != 200:
            raise DaemonUnavailable(
                f"daemon at {self.endpoint.address} refused the request: "
                f"HTTP {response.status}"
            )
        return raw.decode("utf-8", "replace")

    # ------------------------------------------------------------------ #
    def status(self) -> Dict:
        return self._request("GET", "/status")

    def metrics(self) -> str:
        """The daemon's raw Prometheus exposition (``GET /metrics``)."""
        return self._request_text("GET", "/metrics")

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdown")

    def verify_specs(self, specs: Sequence[Dict], *, jobs: Optional[int] = None,
                     counterexample_search: bool = True,
                     batch_size: Optional[int] = None,
                     changed_paths: Optional[Sequence[str]] = None,
                     solver: str = "auto") -> Tuple[List, EngineStats]:
        """Ship pass specs to the daemon, optionally in batches.

        ``batch_size`` bounds how many passes ride in one HTTP request —
        large suites stream in chunks so a slow chunk times out alone.
        ``changed_paths`` makes the request incremental (protocol v2): the
        daemon absorbs the named edits, then re-fingerprints only the
        passes they can have invalidated.  ``solver`` (protocol v3) names
        the prover backend the daemon must discharge with.  Returns
        (ordered results, merged stats); the stats carry the daemon's
        identity block.
        """
        specs = list(specs)
        chunk = int(batch_size) if batch_size and batch_size > 0 else max(1, len(specs))
        results: List = []
        merged: Optional[EngineStats] = None
        daemon_info: Optional[Dict] = None
        # An empty spec list still makes one request: the daemon's protocol
        # error ("non-empty 'passes' list") is the authoritative answer.
        for start in range(0, len(specs), chunk) if specs else (0,):
            body = {
                "passes": specs[start:start + chunk],
                "jobs": jobs,
                "counterexample_search": counterexample_search,
                "solver": solver,
            }
            if changed_paths is not None:
                if isinstance(changed_paths, (str, bytes)):
                    # Iterating a bare string would silently ship its
                    # characters as one-letter "paths".
                    raise ProtocolError(
                        "changed_paths must be a sequence of paths, not a string")
                body["changed_paths"] = [os.fspath(p) for p in changed_paths]
            response = self._request("POST", "/verify", body)
            for payload in response["results"]:
                from_cache = bool(payload.pop("from_cache", False))
                results.append(payload_to_result(payload, from_cache=from_cache))
            stats = EngineStats.from_dict(response["stats"])
            daemon_info = response.get("daemon", daemon_info)
            merged = stats if merged is None else merged.merge(stats)
        if merged is None:
            merged = EngineStats(passes_total=0)
        if daemon_info is not None:
            daemon_info = dict(daemon_info)
            daemon_info["endpoint"] = self.endpoint.address
        merged.daemon = daemon_info
        return results, merged


def connect(cache_dir: Optional[os.PathLike] = None,
            endpoint: Optional[DaemonEndpoint] = None,
            timeout: float = 120.0,
            probe: bool = True,
            probe_timeout: float = 3.0) -> Optional[DaemonClient]:
    """Discover and ping a daemon; ``None`` when no live daemon is found.

    The liveness probe uses its own short ``probe_timeout``: ``timeout``
    must accommodate long proofs, but "is anything alive there?" must not —
    a stale endpoint whose port was reused by a mute service would
    otherwise stall the advertised fast fallback for the full timeout.
    """
    if endpoint is None:
        endpoint = read_state(cache_dir or default_cache_dir())
    if endpoint is None:
        return None
    if probe:
        try:
            DaemonClient(endpoint, timeout=min(timeout, probe_timeout)).status()
        except (DaemonUnavailable, ProtocolError):
            return None
    return DaemonClient(endpoint, timeout=timeout)


def verify_with_fallback(
    pass_classes: Sequence[Type],
    *,
    cache_dir: Optional[str] = None,
    backend: str = "jsonl",
    jobs: int = 1,
    use_cache: bool = True,
    pass_kwargs_fn=None,
    counterexample_search: bool = True,
    timeout: float = 120.0,
    batch_size: Optional[int] = None,
    client: Optional[DaemonClient] = None,
    changed_paths: Optional[Sequence[str]] = None,
    solver: str = "auto",
) -> EngineReport:
    """Verify through a daemon when one is running, in-process otherwise.

    The daemon path and the local path serve identical verdicts (same
    engine, same proof store semantics); the report's ``stats.daemon``
    block says which one answered.  ``use_cache=False`` requests a fully
    stateless run — the daemon exists to serve its cache, so such runs
    never leave the process.  ``changed_paths`` drives an incremental run
    on whichever side answers (shipped over the wire to the daemon,
    passed to ``verify_passes`` on fallback).
    """
    kwargs_fn = pass_kwargs_fn or default_pass_kwargs
    if isinstance(changed_paths, (str, bytes)):
        # Validated before any daemon traffic: the wire-level guard raises
        # ProtocolError, which the fallback below would swallow — and then
        # run in-process with the same bad value.
        raise TypeError(
            "changed_paths must be an iterable of paths, not a bare string")
    if not use_cache:
        client = None
    elif client is None:
        client = connect(cache_dir, timeout=timeout)
    if client is not None:
        try:
            specs = [make_pass_spec(cls, kwargs_fn(cls)) for cls in pass_classes]
            results, stats = client.verify_specs(
                specs, jobs=jobs, counterexample_search=counterexample_search,
                batch_size=batch_size, changed_paths=changed_paths,
                solver=solver,
            )
            return EngineReport(results=results, stats=stats)
        except (DaemonUnavailable, ProtocolError):
            pass  # fall through to the in-process engine
    if use_cache:
        backend = _fallback_backend(cache_dir, backend)
    return verify_passes(
        list(pass_classes),
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        backend=backend,
        pass_kwargs_fn=kwargs_fn,
        counterexample_search=counterexample_search,
        changed_paths=changed_paths,
        solver=solver,
    )


def _fallback_backend(cache_dir: Optional[os.PathLike], requested: str) -> str:
    """The proof-cache tier the in-process fallback should use.

    A dead daemon's clients must keep the warmth it banked: prefer the
    backend recorded in a (possibly stale) state file, then an existing
    sqlite store in the cache directory — falling back to the jsonl tier
    would silently re-prove everything the daemon already cached.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    state = read_state(directory)
    if state is not None:
        return state.backend
    from repro.service.store import sqlite_cache_path

    if sqlite_cache_path(directory).exists():
        return "sqlite"
    return requested
