"""The verification service tier: a shared proof store and a resident daemon.

PR 1's engine made one process fast; this package makes *many* processes
share that speed.  Three layers:

* :mod:`repro.service.store` — a sqlite-backed proof cache (WAL mode, safe
  for concurrent readers and writers) with the same interface as the JSONL
  :class:`~repro.engine.cache.ProofCache`, plus a one-shot JSONL migration;
* :mod:`repro.service.daemon` — a long-lived localhost server that keeps the
  rule set, the toolchain fingerprint, and the proof store warm across
  requests, dispatching jobs through the engine scheduler;
* :mod:`repro.service.client` — the JSON wire client with request batching,
  timeouts, and graceful fallback to in-process verification.

``repro serve`` / ``repro status`` / ``repro verify --daemon`` are the CLI
entry points; ``PassManager(verify_first=True, verify_daemon=True)`` is the
library one.
"""

from repro.service.client import (
    DaemonClient,
    DaemonUnavailable,
    connect,
    verify_with_fallback,
)
from repro.service.daemon import ProofDaemon, VerificationService, serve
from repro.service.protocol import (
    PROTOCOL_VERSION,
    DaemonEndpoint,
    ProtocolError,
    pass_registry,
    read_state,
    write_state,
)
from repro.service.store import (
    SCHEMA_VERSION,
    SqliteProofCache,
    migrate_jsonl,
    sqlite_cache_path,
)

__all__ = [
    "DaemonClient",
    "DaemonEndpoint",
    "DaemonUnavailable",
    "PROTOCOL_VERSION",
    "ProofDaemon",
    "ProtocolError",
    "SCHEMA_VERSION",
    "SqliteProofCache",
    "VerificationService",
    "connect",
    "migrate_jsonl",
    "pass_registry",
    "read_state",
    "serve",
    "sqlite_cache_path",
    "verify_with_fallback",
    "write_state",
]
