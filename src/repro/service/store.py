"""The shared sqlite proof-cache tier.

:class:`SqliteProofCache` implements the same interface as the JSONL
:class:`~repro.engine.cache.ProofCache`, so ``verify_passes`` (and therefore
the CLI, the pass manager, and the daemon) can use either backend.  Where the
JSONL cache is a single-writer append-only file, this store is built for many
concurrent clients:

* the database runs in WAL mode with a generous busy timeout, so readers
  never block writers and concurrent writers serialise instead of corrupting;
* every entry carries the toolchain fingerprint it was proved under, so
  entries written by an older prover are invisible (and reaped by ``prune``);
* hit counters and last-used timestamps are accumulated *in the database*
  (``hits = hits + 1``), so statistics stay correct when several processes
  share the store and eviction can be least-recently-used across all of them;
* the schema is versioned; a store written by an incompatible schema is
  rebuilt rather than misread (it is a cache — the proofs can be re-run).

``migrate_jsonl`` imports an existing JSONL cache one-shot, preserving each
entry's recorded fingerprint.

A ``deps`` table carries the incremental layer's dependency index (identity
key → fingerprint + file set, see :mod:`repro.incremental.deps`), gated by
its own per-row schema number — the sidecar analogue of the JSONL tier's
``deps.jsonl``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.engine.cache import CacheStats

_DB_NAME = "proofs.sqlite"

#: Bump when the table layout changes incompatibly; mismatched stores are
#: rebuilt from scratch on open.  v2 adds the subgoal-certificate tier;
#: v3 gives that tier its own hit/recency accounting columns.
SCHEMA_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS proofs (
    kind         TEXT NOT NULL,
    key          TEXT NOT NULL,
    fp           TEXT NOT NULL,
    value        TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_used_at REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (kind, key)
);
CREATE INDEX IF NOT EXISTS proofs_lru ON proofs (last_used_at);
CREATE TABLE IF NOT EXISTS deps (
    key        TEXT PRIMARY KEY,
    schema     INTEGER NOT NULL,
    value      TEXT NOT NULL,
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS certs (
    key          TEXT NOT NULL PRIMARY KEY,
    fp           TEXT NOT NULL,
    value        TEXT NOT NULL,
    updated_at   REAL NOT NULL,
    last_used_at REAL NOT NULL DEFAULT 0,
    hits         INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS certs_lru ON certs (last_used_at);
"""


def sqlite_cache_path(directory: os.PathLike) -> Path:
    """The database file used by a store rooted at ``directory``."""
    return Path(directory) / _DB_NAME


#: Error messages that mean the file itself is damaged (vs. transiently
#: unavailable).  The exception class alone cannot distinguish: corruption
#: surfaces as plain DatabaseError, but "not a database" has been an
#: OperationalError in some Python/sqlite combinations.
_CORRUPTION_SIGNS = ("not a database", "malformed", "file is encrypted")


def _looks_corrupt(exc: sqlite3.DatabaseError) -> bool:
    message = str(exc).lower()
    if any(sign in message for sign in _CORRUPTION_SIGNS):
        return True
    # Non-operational database errors during PRAGMA/schema setup have no
    # transient cause left; treat them as corruption.
    return not isinstance(exc, sqlite3.OperationalError)


class SqliteProofCache:
    """A proof cache safe for concurrent readers and writers.

    Drop-in replacement for :class:`~repro.engine.cache.ProofCache`:
    ``directory=None`` gives an in-memory store (process-local, used by
    tests and ``--no-cache``-style runs), otherwise ``directory/proofs.sqlite``
    is created on demand.  ``max_entries`` (optional) prunes the store to an
    LRU bound on :meth:`close`.
    """

    backend = "sqlite"

    def __init__(self, directory: Optional[os.PathLike] = None,
                 active_fingerprint: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 timeout: float = 30.0) -> None:
        from repro.engine.fingerprint import toolchain_fingerprint

        self.directory = Path(directory) if directory is not None else None
        self.active_fingerprint = active_fingerprint or toolchain_fingerprint()
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Optional :class:`repro.telemetry.stats.StatsRecorder`; attached
        #: per run by the driver, guarded on ``None`` at every hook site.
        self.recorder = None
        self._lock = threading.RLock()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            target = str(sqlite_cache_path(self.directory))
        else:
            target = ":memory:"
        # Autocommit mode: every statement is its own transaction, so two
        # processes interleaving puts serialise at the sqlite layer; the
        # handler threads of one daemon share the connection under _lock.
        self._timeout = timeout
        self._conn: Optional[sqlite3.Connection] = self._connect(target)
        try:
            self._configure()
        except sqlite3.DatabaseError as exc:
            # Rebuild only on actual corruption ("not a database" header,
            # malformed image).  Transient operational errors — the store
            # locked by a long-running writer, a momentarily unopenable
            # file — must propagate: deleting the live shared store out
            # from under other clients is far worse than failing one open.
            self._conn.close()
            self._conn = None
            if self.directory is None or not _looks_corrupt(exc):
                raise
            # Losing cache entries is safe; misreading them is not.
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(target + suffix)
                except OSError:
                    pass
            self.stats.corrupt_lines += 1
            self._conn = self._connect(target)
            self._configure()

    def _connect(self, target: str) -> sqlite3.Connection:
        return sqlite3.connect(
            target, timeout=self._timeout, isolation_level=None,
            check_same_thread=False,
        )

    # ------------------------------------------------------------------ #
    # Schema / connection management
    # ------------------------------------------------------------------ #
    def _configure(self) -> None:
        cursor = self._conn.cursor()
        try:
            cursor.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass  # e.g. network filesystems; rollback journal still works
        cursor.execute("PRAGMA synchronous=NORMAL")
        cursor.execute("PRAGMA busy_timeout=30000")
        cursor.executescript(_SCHEMA)
        row = cursor.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            cursor.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif row[0] != str(SCHEMA_VERSION):
            # Incompatible layout: rebuild.  Losing cache entries is safe;
            # misreading them is not.
            cursor.execute("DROP TABLE IF EXISTS proofs")
            cursor.execute("DROP TABLE IF EXISTS deps")
            cursor.execute("DROP TABLE IF EXISTS certs")
            cursor.execute("DELETE FROM meta")
            cursor.executescript(_SCHEMA)
            cursor.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )

    @property
    def path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return sqlite_cache_path(self.directory)

    def flush(self) -> None:
        """No-op for parity with the JSONL cache (writes are synchronous)."""

    def close(self) -> None:
        with self._lock:
            if self._conn is None:
                return
            if self.max_entries is not None:
                self.prune(self.max_entries)
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SqliteProofCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Reads / writes
    # ------------------------------------------------------------------ #
    def _get(self, kind: str, key: str) -> Optional[dict]:
        recorder = self.recorder
        started = time.perf_counter() if recorder is not None else 0.0
        entry, nbytes = self._get_inner(kind, key)
        if recorder is not None:
            recorder.note_io(kind, hit=entry is not None, nbytes=nbytes,
                             seconds=time.perf_counter() - started)
        return entry

    def _get_inner(self, kind: str, key: str) -> Tuple[Optional[dict], int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT fp, value FROM proofs WHERE kind = ? AND key = ?",
                (kind, key),
            ).fetchone()
            if row is None:
                return None, 0
            fingerprint, value = row
            if fingerprint != self.active_fingerprint:
                self.stats.invalidated += 1
                return None, 0
            self._conn.execute(
                "UPDATE proofs SET hits = hits + 1, last_used_at = ? "
                "WHERE kind = ? AND key = ?",
                (time.time(), kind, key),
            )
            try:
                return json.loads(value), len(value)
            except json.JSONDecodeError:
                self.stats.corrupt_lines += 1
                return None, 0

    def _put(self, kind: str, key: str, value: dict) -> None:
        now = time.time()
        with self._lock:
            # Re-proving under a new toolchain resets the hit counter: the
            # old prover's tally must not be attributed to the new proof.
            self._conn.execute(
                "INSERT INTO proofs (kind, key, fp, value, created_at, last_used_at, hits) "
                "VALUES (?, ?, ?, ?, ?, ?, 0) "
                "ON CONFLICT (kind, key) DO UPDATE SET "
                "hits = CASE WHEN proofs.fp = excluded.fp THEN proofs.hits ELSE 0 END, "
                "fp = excluded.fp, value = excluded.value, "
                "last_used_at = excluded.last_used_at",
                (kind, key, self.active_fingerprint, json.dumps(value, sort_keys=True), now, now),
            )
            self.stats.stores += 1

    def get_pass(self, key: Optional[str]) -> Optional[dict]:
        if key is None:
            self.stats.pass_misses += 1
            return None
        entry = self._get("pass", key)
        if entry is None:
            self.stats.pass_misses += 1
        else:
            self.stats.pass_hits += 1
        return entry

    def put_pass(self, key: Optional[str], value: dict) -> None:
        if key is None:
            return
        self._put("pass", key, value)

    def get_subgoal(self, key: str) -> Optional[dict]:
        entry = self._get("subgoal", key)
        if entry is None:
            self.stats.subgoal_misses += 1
        else:
            self.stats.subgoal_hits += 1
        return entry

    def has_subgoal(self, key: str) -> bool:
        """Membership test that does not touch the hit/miss counters."""
        with self._lock:
            row = self._conn.execute(
                "SELECT fp FROM proofs WHERE kind = 'subgoal' AND key = ?",
                (key,),
            ).fetchone()
        return row is not None and row[0] == self.active_fingerprint

    def put_subgoal(self, key: str, value: dict) -> None:
        self._put("subgoal", key, value)

    def subgoal_snapshot(self) -> Dict[str, dict]:
        """A plain-dict copy of the live subgoal table, shippable to workers."""
        snapshot: Dict[str, dict] = {}
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, value FROM proofs WHERE kind = 'subgoal' AND fp = ?",
                (self.active_fingerprint,),
            ).fetchall()
        for key, value in rows:
            try:
                snapshot[key] = json.loads(value)
            except json.JSONDecodeError:
                self.stats.corrupt_lines += 1
        return snapshot

    def touch_subgoals(self, keys) -> None:
        """Refresh recency and hit counts for snapshot-served subgoals.

        The engine reads subgoals through :meth:`subgoal_snapshot`, which
        cannot update per-row counters; the driver reports back which keys
        it actually reused so LRU eviction and the accumulated hit
        statistics see the subgoal tier's real traffic.
        """
        keys = list(keys)
        if not keys:
            return
        now = time.time()
        with self._lock:
            self._conn.executemany(
                "UPDATE proofs SET hits = hits + 1, last_used_at = ? "
                "WHERE kind = 'subgoal' AND key = ?",
                [(now, key) for key in keys],
            )

    # ------------------------------------------------------------------ #
    # Certificate tier (the subgoal evidence objects)
    # ------------------------------------------------------------------ #
    def get_certificate(self, key: str) -> Optional[dict]:
        """The certificate recorded for one subgoal fingerprint, or ``None``.

        Hits accumulate in the database (like the proof tiers), so the
        certificate tier's traffic is visible across every client sharing
        the store, and counted in this handle's ``stats`` separately from
        the subgoal tier's counters.
        """
        recorder = self.recorder
        started = time.perf_counter() if recorder is not None else 0.0
        with self._lock:
            row = self._conn.execute(
                "SELECT fp, value FROM certs WHERE key = ?", (key,),
            ).fetchone()
            if row is None or row[0] != self.active_fingerprint:
                self.stats.cert_misses += 1
                if recorder is not None:
                    recorder.note_io("certificate", hit=False,
                                     seconds=time.perf_counter() - started)
                return None
            self._conn.execute(
                "UPDATE certs SET hits = hits + 1, last_used_at = ? "
                "WHERE key = ?",
                (time.time(), key),
            )
        self.stats.cert_hits += 1
        if recorder is not None:
            recorder.note_io("certificate", hit=True, nbytes=len(row[1]),
                             seconds=time.perf_counter() - started)
        try:
            return json.loads(row[1])
        except json.JSONDecodeError:
            self.stats.corrupt_lines += 1
            return None

    def put_certificate(self, key: str, value: dict) -> None:
        """Record (or refresh) one subgoal's proof certificate."""
        now = time.time()
        with self._lock:
            # A certificate re-minted under a new toolchain starts its hit
            # count over, mirroring the proof tiers' contract.
            self._conn.execute(
                "INSERT INTO certs (key, fp, value, updated_at, last_used_at, hits) "
                "VALUES (?, ?, ?, ?, ?, 0) "
                "ON CONFLICT (key) DO UPDATE SET "
                "hits = CASE WHEN certs.fp = excluded.fp THEN certs.hits ELSE 0 END, "
                "fp = excluded.fp, value = excluded.value, "
                "updated_at = excluded.updated_at, "
                "last_used_at = excluded.last_used_at",
                (key, self.active_fingerprint,
                 json.dumps(value, sort_keys=True), now, now),
            )
            self.stats.cert_stores += 1

    def certificate_snapshot(self) -> Dict[str, dict]:
        """A plain-dict copy of the live certificate tier."""
        snapshot: Dict[str, dict] = {}
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, value FROM certs WHERE fp = ?",
                (self.active_fingerprint,),
            ).fetchall()
        for key, value in rows:
            try:
                snapshot[key] = json.loads(value)
            except json.JSONDecodeError:
                self.stats.corrupt_lines += 1
        return snapshot

    # ------------------------------------------------------------------ #
    # Dependency sidecar (incremental re-verification)
    # ------------------------------------------------------------------ #
    def get_deps(self, key: str) -> Optional[dict]:
        """The dependency entry recorded under ``key``, or ``None``.

        Entries written under another sidecar schema are invisible, exactly
        like proofs written under another toolchain fingerprint.
        """
        from repro.incremental.deps import DEPS_SCHEMA_VERSION

        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM deps WHERE key = ? AND schema = ?",
                (key, DEPS_SCHEMA_VERSION),
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            self.stats.corrupt_lines += 1
            return None

    def put_deps(self, key: str, value: dict) -> None:
        """Record (or refresh) one dependency entry."""
        from repro.incremental.deps import DEPS_SCHEMA_VERSION

        with self._lock:
            self._conn.execute(
                "INSERT INTO deps (key, schema, value, updated_at) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT (key) DO UPDATE SET "
                "schema = excluded.schema, value = excluded.value, "
                "updated_at = excluded.updated_at",
                (key, DEPS_SCHEMA_VERSION, json.dumps(value, sort_keys=True),
                 time.time()),
            )

    def deps_snapshot(self) -> Dict[str, dict]:
        """A plain-dict copy of the (current-schema) dependency index."""
        from repro.incremental.deps import DEPS_SCHEMA_VERSION

        snapshot: Dict[str, dict] = {}
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, value FROM deps WHERE schema = ?",
                (DEPS_SCHEMA_VERSION,),
            ).fetchall()
        for key, value in rows:
            try:
                snapshot[key] = json.loads(value)
            except json.JSONDecodeError:
                self.stats.corrupt_lines += 1
        return snapshot

    def gc_deps(self, live_keys) -> int:
        """Drop dependency rows whose identity key is not in ``live_keys``.

        Same contract as :meth:`ProofCache.gc_deps <repro.engine.cache.ProofCache.gc_deps>`:
        removing a row is always sound (the configuration re-records itself
        if ever verified again).  Returns the number of rows removed.
        """
        live = set(live_keys)
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, LENGTH(value) FROM deps").fetchall()
            doomed = [(key, size) for key, size in rows if key not in live]
            if doomed:
                self._conn.executemany(
                    "DELETE FROM deps WHERE key = ?",
                    [(key,) for key, _ in doomed],
                )
        self.stats.deps_reclaimed += len(doomed)
        self.stats.dep_bytes_reclaimed += sum(size or 0 for _, size in doomed)
        return len(doomed)

    # ------------------------------------------------------------------ #
    # Eviction / maintenance
    # ------------------------------------------------------------------ #
    def prune(self, max_entries: int) -> int:
        """Evict stale-fingerprint rows, then LRU rows beyond ``max_entries``.

        Recency is the cross-process ``last_used_at`` column, so the store
        keeps what *any* client used recently.  Returns the number of rows
        evicted.
        """
        max_entries = max(0, int(max_entries))
        journal = []
        with self._lock:
            cursor = self._conn.cursor()
            cursor.execute("BEGIN IMMEDIATE")
            try:
                from repro.incremental.deps import DEPS_SCHEMA_VERSION

                # Each category SELECTs its doomed rows first so eviction
                # can report reclaimed bytes per tier and journal the
                # LRU-evicted keys for wasted-eviction accounting.
                dep_bytes = cursor.execute(
                    "SELECT COALESCE(SUM(LENGTH(value)), 0) FROM deps "
                    "WHERE schema != ?", (DEPS_SCHEMA_VERSION,),
                ).fetchone()[0]
                cursor.execute("DELETE FROM deps WHERE schema != ?",
                               (DEPS_SCHEMA_VERSION,))
                deps_reclaimed = cursor.rowcount
                proof_bytes = cursor.execute(
                    "SELECT COALESCE(SUM(LENGTH(value)), 0) FROM proofs "
                    "WHERE fp != ?", (self.active_fingerprint,),
                ).fetchone()[0]
                cursor.execute("DELETE FROM proofs WHERE fp != ?",
                               (self.active_fingerprint,))
                evicted = cursor.rowcount
                overflow = cursor.execute(
                    "SELECT kind, key, LENGTH(value) FROM proofs "
                    "ORDER BY last_used_at DESC, kind, key "
                    "LIMIT -1 OFFSET ?",
                    (max_entries,),
                ).fetchall()
                if overflow:
                    cursor.executemany(
                        "DELETE FROM proofs WHERE kind = ? AND key = ?",
                        [(kind, key) for kind, key, _ in overflow],
                    )
                    evicted += len(overflow)
                    proof_bytes += sum(size or 0 for _, _, size in overflow)
                    journal.extend((kind, key) for kind, key, _ in overflow)
                # Certificates live and die with their subgoal entry; only
                # orphans of a *live* fingerprint were evicted too eagerly,
                # so only those enter the journal.
                doomed_certs = cursor.execute(
                    "SELECT key, fp, LENGTH(value) FROM certs "
                    "WHERE fp != ? OR key NOT IN ("
                    "  SELECT key FROM proofs WHERE kind = 'subgoal')",
                    (self.active_fingerprint,),
                ).fetchall()
                if doomed_certs:
                    cursor.executemany(
                        "DELETE FROM certs WHERE key = ?",
                        [(key,) for key, _, _ in doomed_certs],
                    )
                certs_evicted = len(doomed_certs)
                cert_bytes = sum(size or 0 for _, _, size in doomed_certs)
                journal.extend(
                    ("certificate", key) for key, fp, _ in doomed_certs
                    if fp == self.active_fingerprint)
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                raise
        self.stats.evicted += evicted
        self.stats.certs_evicted += max(0, certs_evicted)
        # Dep rows reaped for schema staleness are reported separately so
        # ``repro cache prune`` can say what the sidecar reclaimed.
        self.stats.deps_reclaimed += max(0, deps_reclaimed)
        self.stats.proof_bytes_reclaimed += int(proof_bytes or 0)
        self.stats.cert_bytes_reclaimed += int(cert_bytes or 0)
        self.stats.dep_bytes_reclaimed += int(dep_bytes or 0)
        if journal and self.directory is not None:
            from repro.telemetry.stats import append_evictions

            try:
                append_evictions(self.directory, journal)
            except OSError:
                pass
        return evicted

    def compact(self) -> None:
        """Reclaim file space after eviction (``VACUUM``)."""
        with self._lock:
            self._conn.execute("VACUUM")

    def hit_count(self, kind: str, key: str) -> int:
        """Cross-process accumulated hit count for one entry (0 if absent)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT hits FROM proofs WHERE kind = ? AND key = ?",
                (kind, key),
            ).fetchone()
        return int(row[0]) if row is not None else 0

    def summary(self) -> Dict[str, object]:
        """Whole-store statistics for ``repro status`` and reports."""
        with self._lock:
            total, live, hits = self._conn.execute(
                "SELECT COUNT(*), "
                "       SUM(CASE WHEN fp = ? THEN 1 ELSE 0 END), "
                "       SUM(hits) FROM proofs",
                (self.active_fingerprint,),
            ).fetchone()
            passes = self._conn.execute(
                "SELECT COUNT(*) FROM proofs WHERE kind = 'pass' AND fp = ?",
                (self.active_fingerprint,),
            ).fetchone()[0]
            certs, cert_hits = self._conn.execute(
                "SELECT COUNT(*), SUM(hits) FROM certs WHERE fp = ?",
                (self.active_fingerprint,),
            ).fetchone()
            payload_bytes = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(value)), 0) FROM proofs "
                "WHERE fp = ?", (self.active_fingerprint,),
            ).fetchone()[0]
            cert_payload_bytes = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(value)), 0) FROM certs "
                "WHERE fp = ?", (self.active_fingerprint,),
            ).fetchone()[0]
        return {
            "backend": self.backend,
            "path": str(self.path) if self.path is not None else None,
            "entries_total": int(total or 0),
            "entries_live": int(live or 0),
            "entries_stale": int(total or 0) - int(live or 0),
            "pass_entries": int(passes or 0),
            "subgoal_entries": int(live or 0) - int(passes or 0),
            "accumulated_hits": int(hits or 0),
            "cert_entries": int(certs or 0),
            "cert_accumulated_hits": int(cert_hits or 0),
            "payload_bytes": int(payload_bytes or 0),
            "cert_payload_bytes": int(cert_payload_bytes or 0),
            "schema_version": SCHEMA_VERSION,
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM proofs WHERE fp = ?",
                (self.active_fingerprint,),
            ).fetchone()
        return int(row[0])

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM proofs WHERE key = ? AND fp = ? LIMIT 1",
                (key, self.active_fingerprint),
            ).fetchone()
        return row is not None

    def entries(self) -> Iterator[Tuple[str, str, dict]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT kind, key, value FROM proofs WHERE fp = ? "
                "ORDER BY kind, key",
                (self.active_fingerprint,),
            ).fetchall()
        for kind, key, value in rows:
            try:
                yield kind, key, json.loads(value)
            except json.JSONDecodeError:
                self.stats.corrupt_lines += 1


def migrate_jsonl(directory: os.PathLike,
                  store: Optional[SqliteProofCache] = None) -> int:
    """One-shot import of a JSONL cache into the sqlite store.

    Reads ``directory/proofs.jsonl`` (the :class:`ProofCache` layout) and
    inserts every well-formed entry *with its recorded fingerprint* — stale
    entries stay stale, they are just carried over for bookkeeping and later
    reaped by ``prune``.  Existing sqlite rows win over migrated ones (the
    store is at least as fresh as the file).  Returns the number of entries
    migrated.  The JSONL file is left untouched.
    """
    jsonl_path = Path(directory) / "proofs.jsonl"
    if not jsonl_path.exists():
        return 0
    own_store = store is None
    if own_store:
        store = SqliteProofCache(directory)
    # JSONL is append-only with last-write-wins, so fold the file into a map
    # first; insertion order then preserves the file's recency order.
    entries: Dict[Tuple[str, str], Tuple[str, dict]] = {}
    hit_counts: Dict[Tuple[str, str], int] = {}
    corrupt = 0
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                kind = entry["kind"]
                if kind == "touch":
                    # Recency marker appended by a warm JSONL session:
                    # replay the reorder so the migrated rows inherit the
                    # file's true LRU order (and the accumulated hit total
                    # the record carries, if any — absolute, last write
                    # wins, same as the JSONL loader reads it).
                    ref = "pass" if entry["ref"] == "pass" else "subgoal"
                    reused = entries.pop((ref, entry["key"]), None)
                    if reused is not None:
                        entries[(ref, entry["key"])] = reused
                        if isinstance(entry.get("hits"), int):
                            hit_counts[(ref, entry["key"])] = entry["hits"]
                    continue
                key, fingerprint = entry["key"], entry["fp"]
                value = entry["value"]
            except (json.JSONDecodeError, KeyError, TypeError):
                corrupt += 1
                continue
            entries.pop((kind, key), None)
            entries[(kind, key)] = (fingerprint, value)
            if isinstance(entry.get("hits"), int):
                hit_counts[(kind, key)] = entry["hits"]
    migrated = 0
    now = time.time()
    try:
        store.stats.corrupt_lines += corrupt
        with store._lock:
            for offset, ((kind, key), (fingerprint, value)) in enumerate(entries.items()):
                cursor = store._conn.execute(
                    "INSERT OR IGNORE INTO proofs "
                    "(kind, key, fp, value, created_at, last_used_at, hits) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (kind, key, fingerprint, json.dumps(value, sort_keys=True),
                     now, now + offset * 1e-6,
                     hit_counts.get((kind, key), 0)),
                )
                migrated += cursor.rowcount
    finally:
        if own_store:
            store.close()
    return migrated
