"""Symbolic execution of quantum circuits at the qubit level (Section 5).

A quantum register is represented as a tuple of symbolic qubit terms.
Applying a 1-qubit gate ``U`` to qubit ``q`` produces the term
``app1q(U, q)``; applying a 2-qubit gate produces ``app2q(U, q1, q2, k)`` for
the ``k``-th output qubit.  A circuit is executed by folding its gates over
the register.  The rewrite rules (swap reduction, cancellation of adjacent
self-inverse gates, inverse pairs) are implemented as a terminating
term rewriter; together with the register-level rules in
:mod:`repro.symbolic.rules` this is the reproduction of the paper's symbolic
representation for quantum circuits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.gate import Gate
from repro.circuit.gates import inverse_gate, is_known_gate, is_self_inverse
from repro.errors import CircuitError
from repro.smt.terms import QUBIT, Term, app, lit, var


def initial_register(num_qubits: int, prefix: str = "q") -> Tuple[Term, ...]:
    """A register of fresh symbolic qubits ``(?q0, ..., ?q{n-1})``."""
    return tuple(var(f"{prefix}{i}", QUBIT) for i in range(num_qubits))


def _gate_label(gate: Gate) -> Term:
    """The gate's identity as a term literal: name plus rounded parameters."""
    return lit((gate.name, tuple(round(p, 12) for p in gate.params)), "Gate")


def app1q(gate: Gate, qubit: Term) -> Term:
    """Symbolic result of applying a 1-qubit gate to a qubit term."""
    return app("app1q", _gate_label(gate), qubit, sort=QUBIT)


def app2q(gate: Gate, first: Term, second: Term, index: int) -> Term:
    """Symbolic ``index``-th output (1 or 2) of applying a 2-qubit gate."""
    return app("app2q", _gate_label(gate), first, second, lit(index), sort=QUBIT)


def apply_gate(gate: Gate, register: Sequence[Term]) -> Tuple[Term, ...]:
    """One step of the symbolic execution relation of Section 5."""
    register = tuple(register)
    if gate.is_barrier():
        return register
    if gate.is_conditioned():
        raise CircuitError("conditioned gates have no unconditional symbolic semantics")
    if gate.num_qubits == 1:
        (target,) = gate.qubits
        updated = list(register)
        updated[target] = app1q(gate, register[target])
        return tuple(updated)
    if gate.num_qubits == 2:
        first, second = gate.qubits
        updated = list(register)
        updated[first] = app2q(gate, register[first], register[second], 1)
        updated[second] = app2q(gate, register[first], register[second], 2)
        return tuple(updated)
    raise CircuitError(f"symbolic qubit semantics only covers 1- and 2-qubit gates, got {gate.name}")


def apply_circuit(gates: Sequence[Gate], register: Sequence[Term]) -> Tuple[Term, ...]:
    """Symbolically execute a whole circuit on a register of qubit terms."""
    state = tuple(register)
    for gate in gates:
        state = apply_gate(gate, state)
    return state


# --------------------------------------------------------------------------- #
# Rewriting
# --------------------------------------------------------------------------- #
def _decode_label(label: Term) -> Optional[Tuple[str, Tuple[float, ...]]]:
    if label.is_literal() and isinstance(label.payload, tuple):
        return label.payload
    return None


def _labels_inverse(first, second) -> bool:
    """Do the two decoded gate labels form an inverse pair on the same qubits?"""
    name_a, params_a = first
    name_b, params_b = second
    if name_a == name_b and not params_a and is_known_gate(name_a) and is_self_inverse(name_a):
        return True
    if not is_known_gate(name_a):
        return False
    from repro.circuit.gates import gate_spec

    arity = gate_spec(name_a).num_qubits
    try:
        inverse = inverse_gate(Gate(name_a, tuple(range(arity)), params_a))
    except Exception:  # pragma: no cover
        return False
    return inverse.name == name_b and all(
        abs(a - b) < 1e-10 for a, b in zip(inverse.params, params_b)
    ) and len(inverse.params) == len(params_b)


def rewrite_qubit_term(term: Term, cache: Optional[Dict[Term, Term]] = None) -> Term:
    """Normalise a qubit term using the swap / cancellation rewrite rules.

    Rules applied (innermost-first, to a fixed point):

    * ``app2q(SWAP, q1, q2, 1) -> q2`` and ``app2q(SWAP, q1, q2, 2) -> q1``
    * ``app1q(U, app1q(U^-1, q)) -> q`` (1-qubit cancellation / inverse pairs)
    * ``app2q(U, app2q(U, q1, q2, 1), app2q(U, q1, q2, 2), k) -> qk`` for
      self-inverse 2-qubit gates (the CX cancellation rule of Section 3).

    Qubit terms are hash-consed DAGs with heavy sharing (the two output
    qubits of a 2-qubit gate share their input sub-terms), so the rewriter
    memoises the normal form of every sub-term in ``cache``; without the memo
    table a plain tree walk would be exponential in the circuit depth.
    Callers normalising many related terms (a whole register) should pass a
    shared ``cache``.
    """
    if cache is None:
        cache = {}
    return _normalise(term, cache)


def _normalise(term: Term, cache: Dict[Term, Term]) -> Term:
    cached = cache.get(term)
    if cached is not None:
        return cached
    if not term.args:
        cache[term] = term
        return term
    new_args = tuple(_normalise(arg, cache) for arg in term.args)
    normalised = (
        term if new_args == term.args else Term(term.op, new_args, term.sort, term.payload)
    )
    reduced = _reduce_head(normalised)
    if reduced is not normalised:
        reduced = _normalise(reduced, cache)
    cache[term] = reduced
    cache[normalised] = reduced
    return reduced


def _reduce_head(term: Term) -> Term:
    """Apply one rewrite rule at the root of an argument-normalised term."""
    if term.op == "app2q":
        label, first, second, index = term.args
        decoded = _decode_label(label)
        if decoded is not None and decoded[0] == "swap":
            return second if index.payload == 1 else first
        # Cancellation of a self-inverse or inverse-pair 2-qubit gate.
        if (
            first.op == "app2q"
            and second.op == "app2q"
            and first.args[3].payload == 1
            and second.args[3].payload == 2
            and first.args[0:3] == second.args[0:3]
        ):
            inner_decoded = _decode_label(first.args[0])
            if decoded is not None and inner_decoded is not None and _labels_inverse(inner_decoded, decoded):
                inner_first, inner_second = first.args[1], first.args[2]
                return inner_first if index.payload == 1 else inner_second
    if term.op == "app1q":
        label, operand = term.args
        decoded = _decode_label(label)
        if operand.op == "app1q" and decoded is not None:
            inner_decoded = _decode_label(operand.args[0])
            if inner_decoded is not None and _labels_inverse(inner_decoded, decoded):
                return operand.args[1]
    return term


def registers_equal(left: Sequence[Term], right: Sequence[Term]) -> bool:
    """Are two symbolic registers equal after rewriting every qubit term?"""
    if len(left) != len(right):
        return False
    cache: Dict[Term, Term] = {}
    return all(
        rewrite_qubit_term(a, cache) is rewrite_qubit_term(b, cache)
        for a, b in zip(left, right)
    )


def circuits_equivalent_symbolically(
    left: Sequence[Gate], right: Sequence[Gate], num_qubits: int
) -> bool:
    """Qubit-term equivalence check: execute both circuits and compare registers.

    This only proves equivalence for circuits whose difference is captured by
    the local rewrite rules (cancellations and swap eliminations); it is the
    faithful counterpart of the paper's Section 5 procedure and is used by the
    ablation benchmarks against the dense-matrix oracle.
    """
    register = initial_register(num_qubits)
    return registers_equal(apply_circuit(left, register), apply_circuit(right, register))
