"""Numeric soundness checks for the rewrite rules and the commutation table.

The paper proves its rewrite rules once and for all in Coq against the QWire
matrix library.  This reproduction plays the same game with the dense-matrix
semantics of :mod:`repro.linalg`: every :class:`CircuitRule` and every
``True`` answer of the commutation table is checked numerically, for the
qubit placement given in the rule and (for the embedding lemma) for the same
gates embedded into a larger register.  The checks run in the test suite and
can be invoked programmatically, e.g. when a user registers new rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence

from repro.circuit.circuit import QCircuit
from repro.circuit.gate import Gate
from repro.linalg.unitary import circuits_equivalent
from repro.symbolic.commutation import gates_commute
from repro.symbolic.rules import CircuitRule, default_circuit_rules


@dataclass
class SoundnessReport:
    """Result of checking a batch of rules."""

    checked: int
    failures: List[str]

    @property
    def all_sound(self) -> bool:
        return not self.failures


def check_rule(rule: CircuitRule, embed_qubits: int = 0) -> bool:
    """Check one rule's two sides denote the same unitary.

    ``embed_qubits`` adds idle qubits to the register, checking the paper's
    lemma that local equivalence extends to any larger register.
    """
    num_qubits = rule.num_qubits + embed_qubits
    left = QCircuit(num_qubits, gates=rule.lhs)
    right = QCircuit(num_qubits, gates=rule.rhs)
    return circuits_equivalent(left, right)


def check_rules(rules: Sequence[CircuitRule] = (), embed_qubits: int = 1) -> SoundnessReport:
    """Check every rule both on its own register and embedded in a larger one."""
    rules = list(rules) or default_circuit_rules()
    failures: List[str] = []
    for rule in rules:
        if not check_rule(rule, embed_qubits=0):
            failures.append(f"{rule.name}: sides differ on the minimal register")
        elif embed_qubits and not check_rule(rule, embed_qubits=embed_qubits):
            failures.append(f"{rule.name}: embedding into a larger register fails")
    return SoundnessReport(len(rules), failures)


def check_commutation_table(
    gate_names: Sequence[str] = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "rz", "u1", "cx", "cz", "swap"),
    num_qubits: int = 3,
) -> SoundnessReport:
    """Validate every ``True`` answer of the commutation table numerically."""
    from repro.circuit.gates import gate_spec

    placements: List[Gate] = []
    for name in gate_names:
        spec = gate_spec(name)
        params = tuple(0.613 + 0.1 * i for i in range(spec.num_params))
        for qubits in itertools.permutations(range(num_qubits), spec.num_qubits):
            placements.append(Gate(name, qubits, params))
    failures: List[str] = []
    checked = 0
    for first, second in itertools.product(placements, placements):
        if not gates_commute(first, second):
            continue
        checked += 1
        forward = QCircuit(num_qubits, gates=[first, second])
        backward = QCircuit(num_qubits, gates=[second, first])
        if not circuits_equivalent(forward, backward):
            failures.append(f"{first!r} ~ {second!r} claimed commuting but is not")
    return SoundnessReport(checked, failures)
