"""Sequence-level equivalence checking for quantum circuits.

This module is the computational core of the reproduction's circuit
equivalence engine.  Instead of comparing exponential-size unitaries, two
circuits are compared by bringing both to a *normal form* under the rewrite
rules of Section 5:

* **cancellation** of adjacent inverse pairs (CX;CX, H;H, S;Sdg, ...),
* **rotation merging** of adjacent same-axis rotations on the same qubit,
* **commutation-aware reordering**: adjacent commuting gates are sorted into
  a canonical order (a Foata-style normal form of the trace monoid induced by
  the commutation relation), which also lets cancellation partners meet.

Routing passes are handled by :func:`equivalent_up_to_swaps`, which removes
swap gates by relabelling the wires that follow them (the swap rules of
Figure 7) and returns the induced permutation.

Every rewrite performed here corresponds to a rule whose soundness is checked
against the dense-matrix semantics in :mod:`repro.symbolic.soundness` and the
test suite, mirroring the paper's once-and-for-all Coq proofs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.gate import Gate, normalize_angle
from repro.circuit.gates import inverse_gate, is_known_gate, is_self_inverse
from repro.symbolic.commutation import gates_commute

#: Rotation gates mergeable when adjacent on the same qubit and axis.
_MERGEABLE_ROTATIONS = {"rz", "rx", "ry", "u1", "rzz", "rxx", "cu1", "crz"}

#: Diagonal gates that can be dropped immediately before a measurement.
_DIAGONAL_BEFORE_MEASURE = {"z", "s", "sdg", "t", "tdg", "rz", "u1", "id"}


@dataclass
class EquivalenceReport:
    """Outcome of an equivalence check, with enough detail for diagnostics."""

    equivalent: bool
    reason: str = ""
    normal_form_left: Tuple[Gate, ...] = ()
    normal_form_right: Tuple[Gate, ...] = ()
    permutation: Optional[Tuple[int, ...]] = None

    def __bool__(self) -> bool:
        return self.equivalent


# --------------------------------------------------------------------------- #
# Local rewrite steps
# --------------------------------------------------------------------------- #
def _is_identity_rotation(gate: Gate) -> bool:
    return gate.name in _MERGEABLE_ROTATIONS and all(
        abs(normalize_angle(p)) < 1e-10 for p in gate.params
    )


def cancels_with(first: Gate, second: Gate) -> bool:
    """True when ``first ; second`` is the identity (a cancellation rule)."""
    if first.is_directive() or second.is_directive():
        return False
    if first.is_conditioned() or second.is_conditioned():
        return False
    if first.qubits != second.qubits:
        return False
    if first.name == second.name and is_self_inverse(first.name) and not first.params:
        return True
    if not is_known_gate(first.name) or not is_known_gate(second.name):
        return False
    try:
        inverse = inverse_gate(first)
    except Exception:  # pragma: no cover - gates without an inverse rule
        return False
    if inverse.name != second.name or inverse.qubits != second.qubits:
        return False
    return all(
        abs(normalize_angle(a - b)) < 1e-10
        for a, b in zip(inverse.params, second.params)
    ) and len(inverse.params) == len(second.params)


def merge_rotations(first: Gate, second: Gate) -> Optional[Gate]:
    """Merge two adjacent same-axis rotations into one (or ``None``)."""
    if first.is_conditioned() or second.is_conditioned():
        return None
    if first.name != second.name or first.qubits != second.qubits:
        return None
    if first.name not in _MERGEABLE_ROTATIONS or len(first.params) != 1:
        return None
    angle = normalize_angle(first.params[0] + second.params[0])
    return first.replace(params=(angle,))


def _sort_key(gate: Gate) -> tuple:
    return (gate.name, gate.qubits, tuple(round(p, 10) for p in gate.params),
            gate.clbits, gate.condition or (), gate.q_controls)


# --------------------------------------------------------------------------- #
# Normalisation
# --------------------------------------------------------------------------- #
def normal_form(
    gates: Sequence[Gate],
    drop_barriers: bool = True,
    max_passes: int = 200,
) -> List[Gate]:
    """Bring a gate list to the engine's canonical form.

    The result is equivalent to the input (every step is a verified rewrite)
    and two equivalent circuits built from the supported fragment normalise to
    the same list in the vast majority of cases; the check is sound but not
    complete, exactly like the paper's rule set.
    """
    working: List[Gate] = [
        g for g in gates if not (drop_barriers and g.is_barrier())
    ]
    working = [g for g in working if not _is_identity_rotation(g) and g.name != "id"]

    for _ in range(max_passes):
        changed = False

        # Cancellation / merging: for each gate, scan forward across gates it
        # commutes with, looking for a partner.
        index = 0
        while index < len(working):
            gate = working[index]
            probe = index + 1
            while probe < len(working):
                other = working[probe]
                if cancels_with(gate, other):
                    del working[probe]
                    del working[index]
                    changed = True
                    index -= 1
                    break
                merged = merge_rotations(gate, other)
                if merged is not None:
                    del working[probe]
                    if _is_identity_rotation(merged):
                        del working[index]
                        index -= 1
                    else:
                        working[index] = merged
                    changed = True
                    break
                if gates_commute(gate, other):
                    probe += 1
                    continue
                break
            index += 1

        # Canonical ordering: bubble adjacent commuting gates into sorted order.
        for position in range(len(working) - 1):
            left, right = working[position], working[position + 1]
            if gates_commute(left, right) and _sort_key(right) < _sort_key(left):
                working[position], working[position + 1] = right, left
                changed = True

        if not changed:
            break
    return working


# --------------------------------------------------------------------------- #
# Equivalence checks
# --------------------------------------------------------------------------- #
def equivalent(
    left: Sequence[Gate],
    right: Sequence[Gate],
    ignore_final_measurements: bool = False,
    assume_zero_initial_state: bool = False,
) -> EquivalenceReport:
    """Check two gate lists are semantically equivalent.

    ``ignore_final_measurements`` treats trailing measurements as removable
    (the ``RemoveFinalMeasurements`` obligation); ``assume_zero_initial_state``
    allows dropping reset operations that are the first operation on their
    wire (the ``RemoveResetInZeroState`` obligation).
    """
    left_gates = list(left)
    right_gates = list(right)
    if ignore_final_measurements:
        left_gates = strip_final_measurements(left_gates)
        right_gates = strip_final_measurements(right_gates)
    if assume_zero_initial_state:
        left_gates = strip_initial_resets(left_gates)
        right_gates = strip_initial_resets(right_gates)
    normal_left = normal_form(left_gates)
    normal_right = normal_form(right_gates)
    same = normal_left == normal_right
    reason = "identical normal forms" if same else "normal forms differ"
    return EquivalenceReport(same, reason, tuple(normal_left), tuple(normal_right))


def strip_final_measurements(gates: Sequence[Gate]) -> List[Gate]:
    """Remove measurements (and barriers) with no later operation on their qubit."""
    kept = list(gates)
    blocked: set = set()
    result: List[Gate] = []
    for gate in reversed(kept):
        if gate.is_barrier():
            continue
        if gate.is_measurement() and not (set(gate.qubits) & blocked):
            continue
        blocked.update(gate.all_qubits)
        result.append(gate)
    return list(reversed(result))


def strip_initial_resets(gates: Sequence[Gate]) -> List[Gate]:
    """Remove reset operations that are the first operation on their qubit."""
    touched: set = set()
    result: List[Gate] = []
    for gate in gates:
        if gate.is_reset() and gate.qubits[0] not in touched and gate.condition is None:
            continue
        touched.update(gate.all_qubits)
        result.append(gate)
    return result


def strip_diagonal_before_measure(gates: Sequence[Gate]) -> List[Gate]:
    """Remove 1-qubit diagonal gates whose only later use is a measurement.

    This is the semantic justification of ``RemoveDiagonalGatesBeforeMeasure``:
    a Z-basis measurement is insensitive to diagonal phases.
    """
    gates = list(gates)
    removable: set = set()
    future_use: Dict[int, str] = {}
    for index in range(len(gates) - 1, -1, -1):
        gate = gates[index]
        if gate.is_barrier():
            continue
        if gate.is_measurement():
            future_use[gate.qubits[0]] = "measure"
            continue
        if (
            gate.name in _DIAGONAL_BEFORE_MEASURE
            and not gate.is_conditioned()
            and future_use.get(gate.qubits[0]) == "measure"
        ):
            removable.add(index)
            continue
        for qubit in gate.all_qubits:
            future_use[qubit] = "gate"
    return [g for i, g in enumerate(gates) if i not in removable]


def equivalent_up_to_measurement(left: Sequence[Gate], right: Sequence[Gate]) -> EquivalenceReport:
    """Equivalence where diagonal gates feeding only measurements are ignored."""
    return equivalent(strip_diagonal_before_measure(left), strip_diagonal_before_measure(right))


def remove_swaps_by_relabelling(
    gates: Sequence[Gate], num_qubits: int
) -> Tuple[List[Gate], List[int]]:
    """Eliminate swap gates by relabelling later wires (the swap rules).

    Returns the swap-free gate list (over the original logical labels) and the
    permutation ``perm`` with ``perm[logical] = final physical position``.
    """
    # mapping[physical] = logical qubit currently stored there.
    mapping = list(range(num_qubits))
    rewritten: List[Gate] = []
    for gate in gates:
        if gate.is_swap_gate() and not gate.is_conditioned():
            a, b = gate.qubits
            mapping[a], mapping[b] = mapping[b], mapping[a]
            continue
        rewritten.append(gate.remap_qubits(lambda q: mapping[q]))
    permutation = [0] * num_qubits
    for physical, logical in enumerate(mapping):
        permutation[logical] = physical
    return rewritten, permutation


def equivalent_up_to_swaps(
    original: Sequence[Gate],
    routed: Sequence[Gate],
    num_qubits: int,
    initial_layout: Optional[Sequence[int]] = None,
) -> EquivalenceReport:
    """Routing-pass obligation: ``routed`` equals ``original`` up to swaps.

    ``initial_layout``, when given, maps logical qubit ``l`` of the original
    circuit to physical qubit ``initial_layout[l]`` of the routed circuit
    (the layout-selection step of Figure 4).

    Swap gates already present in the original circuit are handled uniformly:
    both sides are brought to a swap-free form by wire relabelling, and the
    reported permutation is the *relative* permutation ``perm`` such that
    ``routed`` is equivalent to ``original`` followed by relocating the
    content of qubit ``i`` to qubit ``perm[i]``.
    """
    layout = list(initial_layout) if initial_layout is not None else list(range(num_qubits))
    # Express the original circuit on physical wires first.
    original_physical = [g.remap_qubits(lambda q: layout[q]) for g in original]
    original_rewritten, perm_original = remove_swaps_by_relabelling(
        original_physical, num_qubits
    )
    routed_rewritten, perm_routed = remove_swaps_by_relabelling(routed, num_qubits)
    report = equivalent(original_rewritten, routed_rewritten)
    # routed = P_r . routed'  and  original = P_o . original'.  When the swap
    # free forms coincide, routed = (P_r . P_o^-1) . original, i.e. the content
    # of qubit perm_original[i] moves to perm_routed[i].
    relative = [0] * num_qubits
    for logical in range(num_qubits):
        relative[perm_original[logical]] = perm_routed[logical]
    return EquivalenceReport(
        report.equivalent,
        report.reason,
        report.normal_form_left,
        report.normal_form_right,
        permutation=tuple(relative),
    )


def conforms_to_coupling(gates: Sequence[Gate], coupling) -> bool:
    """Check every 2-qubit interaction is allowed by the coupling map."""
    for gate in gates:
        if gate.is_directive():
            continue
        qubits = gate.all_qubits
        if len(qubits) == 2 and not coupling.connected(qubits[0], qubits[1]):
            return False
        if len(qubits) > 2:
            return False
    return True
