"""The rewrite-rule set for quantum circuits (Figure 7 of the paper).

Rules exist at two levels:

* :class:`CircuitRule` — a declarative description of one rewrite
  (``pattern`` circuit is equivalent to ``replacement`` circuit), grouped into
  the paper's three classes (cancellation, commutativity, swap).  These are
  the objects the soundness checker validates against the dense-matrix
  semantics and the usage-accounting benchmark (Section 8, "Reusability")
  counts.
* register-level SMT rules — quantified equations over an abstract register
  term, produced by :func:`register_rules_for` and consumed by the
  congruence-closure solver when a proof obligation mixes concrete gates with
  abstract circuit segments (exactly the shape of the CXCancellation goal in
  Section 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuit.gate import Gate
from repro.circuit.gates import is_self_inverse
from repro.smt.terms import CIRCUIT, Rule, Term, app, lit, var

#: Rule classes used for the reusability accounting of Section 8.
CANCELLATION = "cancellation"
COMMUTATIVITY = "commutativity"
SWAP = "swap"
MERGE = "merge"


@dataclass(frozen=True)
class CircuitRule:
    """One equivalence ``lhs == rhs`` between two small concrete circuits."""

    name: str
    kind: str
    lhs: Tuple[Gate, ...]
    rhs: Tuple[Gate, ...]
    num_qubits: int
    description: str = ""


def _g(name: str, *qubits: int, params: Tuple[float, ...] = ()) -> Gate:
    return Gate(name, qubits, params)


def default_circuit_rules() -> List[CircuitRule]:
    """The rule set shipped with the verifier (20 rules, as in the paper)."""
    theta = 0.731  # arbitrary sample angle used by the numeric soundness check
    rules: List[CircuitRule] = [
        # --- cancellation rules -------------------------------------------------
        CircuitRule("cx_cancel", CANCELLATION, (_g("cx", 0, 1), _g("cx", 0, 1)), (), 2,
                    "two adjacent CNOTs on the same pair cancel"),
        CircuitRule("h_cancel", CANCELLATION, (_g("h", 0), _g("h", 0)), (), 1,
                    "H is self-inverse"),
        CircuitRule("x_cancel", CANCELLATION, (_g("x", 0), _g("x", 0)), (), 1,
                    "X is self-inverse"),
        CircuitRule("z_cancel", CANCELLATION, (_g("z", 0), _g("z", 0)), (), 1,
                    "Z is self-inverse"),
        CircuitRule("y_cancel", CANCELLATION, (_g("y", 0), _g("y", 0)), (), 1,
                    "Y is self-inverse"),
        CircuitRule("cz_cancel", CANCELLATION, (_g("cz", 0, 1), _g("cz", 0, 1)), (), 2,
                    "CZ is self-inverse"),
        CircuitRule("swap_cancel", CANCELLATION, (_g("swap", 0, 1), _g("swap", 0, 1)), (), 2,
                    "SWAP is self-inverse"),
        CircuitRule("ccx_cancel", CANCELLATION, (_g("ccx", 0, 1, 2), _g("ccx", 0, 1, 2)), (), 3,
                    "Toffoli is self-inverse"),
        CircuitRule("s_sdg_cancel", CANCELLATION, (_g("s", 0), _g("sdg", 0)), (), 1,
                    "S ; Sdg is the identity"),
        CircuitRule("t_tdg_cancel", CANCELLATION, (_g("t", 0), _g("tdg", 0)), (), 1,
                    "T ; Tdg is the identity"),
        CircuitRule("ecr_cancel", CANCELLATION, (_g("ecr", 0, 1), _g("ecr", 0, 1)), (), 2,
                    "ECR is self-inverse (added for Qiskit 0.32 passes)"),
        # --- commutativity rules ------------------------------------------------
        CircuitRule("z_commutes_cx_control", COMMUTATIVITY,
                    (_g("z", 0), _g("cx", 0, 1)), (_g("cx", 0, 1), _g("z", 0)), 2,
                    "a Z-basis gate commutes through the control of a CNOT"),
        CircuitRule("rz_commutes_cx_control", COMMUTATIVITY,
                    (_g("rz", 0, params=(theta,)), _g("cx", 0, 1)),
                    (_g("cx", 0, 1), _g("rz", 0, params=(theta,))), 2,
                    "Rz commutes through the control of a CNOT"),
        CircuitRule("x_commutes_cx_target", COMMUTATIVITY,
                    (_g("x", 1), _g("cx", 0, 1)), (_g("cx", 0, 1), _g("x", 1)), 2,
                    "an X-basis gate commutes through the target of a CNOT"),
        CircuitRule("cx_same_control_commute", COMMUTATIVITY,
                    (_g("cx", 0, 1), _g("cx", 0, 2)), (_g("cx", 0, 2), _g("cx", 0, 1)), 3,
                    "CNOTs sharing only their control commute"),
        CircuitRule("cx_same_target_commute", COMMUTATIVITY,
                    (_g("cx", 0, 2), _g("cx", 1, 2)), (_g("cx", 1, 2), _g("cx", 0, 2)), 3,
                    "CNOTs sharing only their target commute"),
        CircuitRule("disjoint_commute", COMMUTATIVITY,
                    (_g("h", 0), _g("x", 1)), (_g("x", 1), _g("h", 0)), 2,
                    "gates on disjoint qubits commute"),
        CircuitRule("diagonal_commute", COMMUTATIVITY,
                    (_g("t", 0), _g("cz", 0, 1)), (_g("cz", 0, 1), _g("t", 0)), 2,
                    "diagonal gates commute with each other"),
        # --- swap rules ---------------------------------------------------------
        CircuitRule("swap_relabel_1q", SWAP,
                    (_g("swap", 0, 1), _g("h", 0)), (_g("h", 1), _g("swap", 0, 1)), 2,
                    "a SWAP relabels the qubit a later 1-qubit gate acts on"),
        CircuitRule("swap_relabel_2q", SWAP,
                    (_g("swap", 1, 2), _g("cx", 0, 1)), (_g("cx", 0, 2), _g("swap", 1, 2)), 3,
                    "a SWAP relabels the qubits a later 2-qubit gate acts on"),
        CircuitRule("swap_symmetric", SWAP,
                    (_g("swap", 0, 1),), (_g("swap", 1, 0),), 2,
                    "SWAP is symmetric in its operands"),
        # --- merge rules --------------------------------------------------------
        CircuitRule("u1_merge", MERGE,
                    (_g("u1", 0, params=(0.4,)), _g("u1", 0, params=(0.7,))),
                    (_g("u1", 0, params=(1.1,)),), 1,
                    "adjacent u1 rotations add their angles (Table 1 merge)"),
        CircuitRule("rz_merge", MERGE,
                    (_g("rz", 0, params=(0.4,)), _g("rz", 0, params=(0.7,))),
                    (_g("rz", 0, params=(1.1,)),), 1,
                    "adjacent Rz rotations add their angles"),
    ]
    return rules


#: Gate names with a cancellation rule, used for the reusability accounting.
CANCELLATION_GATES = frozenset(
    {"cx", "h", "x", "y", "z", "cz", "swap", "ccx", "ecr", "s", "sdg", "t", "tdg"}
)


# --------------------------------------------------------------------------- #
# Register-level SMT rules
# --------------------------------------------------------------------------- #
def gate_term(gate: Gate) -> Term:
    """Encode a concrete gate as a term literal (name, params, qubits)."""
    return lit(
        (gate.name, tuple(round(p, 12) for p in gate.params), gate.qubits,
         gate.condition, gate.q_controls),
        "Gate",
    )


def apply_term(gate_or_segment: Term, register: Term) -> Term:
    """``apply(g, Q)``: the register after applying a gate or opaque segment."""
    return app("apply", gate_or_segment, register, sort=CIRCUIT)


def segment_term(name: str) -> Term:
    """An opaque circuit segment (an unknown sub-circuit such as C1, C2)."""
    return lit(("segment", name), "Segment")


def apply_sequence(elements: Sequence[Term], register: Term) -> Term:
    """Fold :func:`apply_term` over a sequence of gate/segment terms."""
    state = register
    for element in elements:
        state = apply_term(element, state)
    return state


def cancellation_rule_for(gate: Gate) -> Optional[Rule]:
    """Quantified register rule ``apply(g, apply(g, Q)) = Q`` when sound."""
    if gate.is_conditioned() or not is_self_inverse(gate.name):
        return None
    register = var("Q", CIRCUIT)
    encoded = gate_term(gate)
    return Rule(
        f"cancel_{gate.name}_{'_'.join(map(str, gate.qubits))}",
        apply_term(encoded, apply_term(encoded, register)),
        register,
    )


def commutation_rule_for(first: Gate, second: Gate) -> Rule:
    """Quantified rule ``apply(b, apply(a, Q)) = apply(a, apply(b, Q))``.

    The caller is responsible for only creating this for pairs that really
    commute (e.g. justified by :func:`repro.symbolic.commutation.gates_commute`
    or by a utility-function specification such as ``next_gate``'s).
    """
    register = var("Q", CIRCUIT)
    term_a, term_b = gate_term(first), gate_term(second)
    return Rule(
        f"commute_{first.name}_{second.name}",
        apply_term(term_b, apply_term(term_a, register)),
        apply_term(term_a, apply_term(term_b, register)),
    )


def segment_commutation_rule(segment_name: str, gate: Gate) -> Rule:
    """Quantified rule: an opaque segment commutes with a specific gate.

    This is precondition ``P6`` of Section 6: the ``next_gate`` specification
    guarantees no gate inside the segment shares a qubit with ``gate``.
    """
    register = var("Q", CIRCUIT)
    segment = segment_term(segment_name)
    encoded = gate_term(gate)
    return Rule(
        f"segment_commute_{segment_name}_{gate.name}",
        apply_term(encoded, apply_term(segment, register)),
        apply_term(segment, apply_term(encoded, register)),
    )
