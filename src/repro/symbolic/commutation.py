"""Commutation relations between quantum gates.

The commutativity rewrite rules of Figure 7 are represented here as a
decision table over gate pairs: two gates commute when swapping their order
leaves the circuit semantics unchanged.  The table is deliberately
conservative (it may answer ``False`` for gates that do commute); every
``True`` answer is validated against the dense-matrix semantics by the
soundness tests, mirroring the paper's once-and-for-all Coq proofs.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.circuit.gate import Gate
from repro.circuit.gates import is_diagonal_gate, is_known_gate

#: 1-qubit gates that are diagonal in the computational (Z) basis.
_Z_BASIS_1Q = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "u1", "id"})

#: 1-qubit gates that are diagonal in the X basis (commute through CX targets).
_X_BASIS_1Q = frozenset({"x", "rx", "id", "sx", "sxdg"})

#: 2-qubit gates diagonal in the Z basis.
_Z_BASIS_2Q = frozenset({"cz", "cu1", "rzz", "crz"})


def _is_z_diagonal(gate: Gate) -> bool:
    return gate.name in _Z_BASIS_1Q or gate.name in _Z_BASIS_2Q or (
        is_known_gate(gate.name) and is_diagonal_gate(gate.name)
    )


def gates_commute(first: Gate, second: Gate) -> bool:
    """Return ``True`` when the two gates can be reordered without changing semantics.

    Conditioned gates (``c_if``/``q_if``), measurements, resets and barriers
    never commute with anything sharing a wire: this conservatism is exactly
    what protects the verifier from the Section 7.1 conditional-gate bug.
    """
    if first.is_barrier() or second.is_barrier():
        return False
    if first.is_conditioned() or second.is_conditioned():
        return not first.shares_qubit(second) and first.condition is None \
            and second.condition is None
    if not first.shares_qubit(second):
        return True
    if first.is_measurement() or second.is_measurement():
        return False
    if first.is_reset() or second.is_reset():
        return False
    # Both act on a common qubit: consult the structural rules.
    if _is_z_diagonal(first) and _is_z_diagonal(second):
        return True
    if first.name == "cx" and second.name == "cx":
        same_control = first.qubits[0] == second.qubits[0]
        same_target = first.qubits[1] == second.qubits[1]
        if same_control and same_target:
            return True
        overlap = set(first.qubits) & set(second.qubits)
        if same_control and first.qubits[1] != second.qubits[1] and len(overlap) == 1:
            return True
        if same_target and first.qubits[0] != second.qubits[0] and len(overlap) == 1:
            return True
        return False
    if first.name == "cx" or second.name == "cx":
        cx_gate, other = (first, second) if first.name == "cx" else (second, first)
        control, target = cx_gate.qubits
        other_qubits = set(other.all_qubits)
        touches_control = control in other_qubits
        touches_target = target in other_qubits
        if touches_control and touches_target:
            return False
        if touches_control:
            return _is_z_diagonal(other)
        if touches_target:
            return other.name in _X_BASIS_1Q
        return True
    if first.name == second.name and first.qubits == second.qubits and first.params == second.params:
        return True
    if first.name == "x" and second.name == "x" and first.qubits == second.qubits:
        return True
    # X-basis gates commute among themselves on the same qubit.
    if (
        first.num_qubits == 1
        and second.num_qubits == 1
        and first.qubits == second.qubits
        and first.name in _X_BASIS_1Q
        and second.name in _X_BASIS_1Q
    ):
        return True
    return False


#: The gate set on which commutation is transitive (the Section 7.2 fix).
TRANSITIVE_GATE_SET: FrozenSet[str] = frozenset(
    {"cx", "x", "z", "h", "t", "u1", "u2", "u3", "s", "sdg", "tdg", "rz", "id"}
)


def commutation_is_transitive_on(names) -> bool:
    """Check a gate-name set is within the fragment where ``~`` is transitive."""
    return set(names) <= set(TRANSITIVE_GATE_SET)
