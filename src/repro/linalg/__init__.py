"""Dense-matrix denotational semantics and rotation algebra."""

from repro.linalg.quaternion import Quaternion, compose_zyz
from repro.linalg.unitary import (
    MAX_DENSE_QUBITS,
    allclose_up_to_global_phase,
    apply_gate_to_state,
    circuit_apply,
    circuit_unitary,
    circuits_equivalent,
    circuits_equivalent_under_relabelling,
    circuits_equivalent_up_to_permutation,
    gate_unitary_on_register,
    global_phase_between,
    permutation_unitary,
    statevector,
    unitary_distance,
)

__all__ = [
    "MAX_DENSE_QUBITS",
    "Quaternion",
    "allclose_up_to_global_phase",
    "apply_gate_to_state",
    "circuit_apply",
    "circuit_unitary",
    "circuits_equivalent",
    "circuits_equivalent_under_relabelling",
    "circuits_equivalent_up_to_permutation",
    "compose_zyz",
    "gate_unitary_on_register",
    "global_phase_between",
    "permutation_unitary",
    "statevector",
    "unitary_distance",
]
