"""Unit quaternions for composing 1-qubit rotations.

The ``optimize_1q_gates`` pass merges chains of ``u1``/``u2``/``u3`` gates.
As in Qiskit (and as described in Section 7.1 of the paper), the merge is
performed by converting each gate to a rotation of the Bloch sphere expressed
as a unit quaternion, multiplying the quaternions, and converting the product
back to ZYZ Euler angles, i.e. to a single ``u3`` gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Quaternion:
    """A quaternion ``w + x i + y j + z k``."""

    w: float
    x: float
    y: float
    z: float

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def identity() -> "Quaternion":
        return Quaternion(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_axis_rotation(angle: float, axis: str) -> "Quaternion":
        """Quaternion for a rotation of ``angle`` radians about axis x, y or z."""
        half = angle / 2.0
        w = math.cos(half)
        s = math.sin(half)
        vec = {"x": (s, 0.0, 0.0), "y": (0.0, s, 0.0), "z": (0.0, 0.0, s)}[axis]
        return Quaternion(w, *vec)

    @staticmethod
    def from_euler_zyz(theta: float, phi: float, lam: float) -> "Quaternion":
        """Quaternion of ``Rz(phi) Ry(theta) Rz(lam)`` (the u3 Euler angles)."""
        return (
            Quaternion.from_axis_rotation(phi, "z")
            * Quaternion.from_axis_rotation(theta, "y")
            * Quaternion.from_axis_rotation(lam, "z")
        )

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "Quaternion") -> "Quaternion":
        w1, x1, y1, z1 = self.w, self.x, self.y, self.z
        w2, x2, y2, z2 = other.w, other.x, other.y, other.z
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def norm(self) -> float:
        return math.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2)

    def normalized(self) -> "Quaternion":
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalise the zero quaternion")
        return Quaternion(self.w / n, self.x / n, self.y / n, self.z / n)

    def conjugate(self) -> "Quaternion":
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_rotation_matrix(self) -> np.ndarray:
        """The 3x3 SO(3) rotation matrix of the (normalised) quaternion."""
        q = self.normalized()
        w, x, y, z = q.w, q.x, q.y, q.z
        return np.array(
            [
                [1 - 2 * (y * y + z * z), 2 * (x * y - z * w), 2 * (x * z + y * w)],
                [2 * (x * y + z * w), 1 - 2 * (x * x + z * z), 2 * (y * z - x * w)],
                [2 * (x * z - y * w), 2 * (y * z + x * w), 1 - 2 * (x * x + y * y)],
            ]
        )

    def to_zyz_angles(self) -> Tuple[float, float, float]:
        """Recover ``(theta, phi, lam)`` with the rotation = Rz(phi)Ry(theta)Rz(lam)."""
        mat = self.to_rotation_matrix()
        # The third column is (sin(theta)cos(phi), sin(theta)sin(phi),
        # cos(theta)); recovering theta with atan2 instead of acos keeps full
        # precision near theta = 0 / pi, where acos loses ~sqrt(eps).
        sin_theta = math.hypot(mat[0, 2], mat[1, 2])
        theta = math.atan2(sin_theta, mat[2, 2])
        if sin_theta < 1e-12:
            # Degenerate cases: theta = 0 (pure Z rotation, R = Rz(phi + lam))
            # or theta = pi (R only determines phi - lam).  Put everything
            # into lambda with phi = 0.  The cutoff is on sin(theta): while
            # the axis information in the off-diagonal entries stays above
            # floating-point noise, the general branch recovers it exactly —
            # a rotation like Ry(-1e-5) must NOT be collapsed to a Z
            # rotation (its sign lives in phi = lam = pi), and below 1e-12
            # the error of doing so is itself below 1e-12.
            phi = 0.0
            lam = math.atan2(mat[1, 0], mat[0, 0])
            if mat[2, 2] < 0:
                # R = Rz(phi) Ry(pi) Rz(lam) has R[0,0] = -cos(phi - lam) and
                # R[1,0] = -sin(phi - lam); with phi' = 0 the equivalent
                # lambda' is lam - phi.
                lam = math.atan2(mat[1, 0], -mat[0, 0])
        else:
            phi = math.atan2(mat[1, 2], mat[0, 2])
            lam = math.atan2(mat[2, 1], -mat[2, 0])
        return theta, phi, lam


def compose_zyz(first: Tuple[float, float, float], second: Tuple[float, float, float]):
    """ZYZ angles of applying ``first`` then ``second`` (circuit order).

    Both arguments and the result are ``(theta, phi, lam)`` triples as used by
    the ``u3`` gate.
    """
    q_first = Quaternion.from_euler_zyz(*first)
    q_second = Quaternion.from_euler_zyz(*second)
    # Applying `first` then `second` to a state multiplies matrices as
    # U_second @ U_first, so the composed rotation is second * first.
    return (q_second * q_first).to_zyz_angles()
