"""Denotational semantics of quantum circuits (Figure 3 of the paper).

A circuit over ``n`` qubits denotes a ``2^n x 2^n`` unitary.  The semantics of
``skip`` is the identity, a gate denotes its unitary tensored with the
identity on untouched qubits, and sequential composition denotes matrix
multiplication.  These functions are exponential in qubit count and are used
only for testing, rewrite-rule soundness checking (the role the Coq/QWire
proofs play in the paper), and counterexample validation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.circuit.circuit import QCircuit
from repro.circuit.gate import Gate
from repro.circuit.gates import gate_matrix
from repro.errors import CircuitError

#: Largest register for which we will build dense unitaries.
MAX_DENSE_QUBITS = 12


def _check_size(num_qubits: int) -> None:
    if num_qubits > MAX_DENSE_QUBITS:
        raise CircuitError(
            f"refusing to build a dense unitary on {num_qubits} qubits "
            f"(limit is {MAX_DENSE_QUBITS}); this is exactly the blow-up the "
            "symbolic rewrite rules avoid"
        )


def apply_gate_to_state(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate to a statevector of ``num_qubits`` qubits.

    The statevector uses the big-endian qubit convention: qubit 0 is the most
    significant axis after reshaping to a rank-``num_qubits`` tensor.
    """
    if gate.is_barrier():
        return state
    if gate.is_measurement() or gate.is_reset() or gate.condition is not None:
        raise CircuitError(
            f"gate {gate.name} is not a unitary operation; unitary semantics "
            "only covers the purely unitary fragment"
        )
    operands = gate.q_controls + gate.qubits
    matrix = gate_matrix(gate)
    k = len(operands)
    tensor = state.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, operands, range(k))
    tensor = tensor.reshape(2**k, -1)
    tensor = matrix @ tensor
    tensor = tensor.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, range(k), operands)
    return tensor.reshape(-1)


def gate_unitary_on_register(gate: Gate, num_qubits: int) -> np.ndarray:
    """Embed a gate's unitary into the full ``2^n``-dimensional register space."""
    _check_size(num_qubits)
    dim = 2**num_qubits
    columns = np.empty((dim, dim), dtype=complex)
    for basis_index in range(dim):
        basis_state = np.zeros(dim, dtype=complex)
        basis_state[basis_index] = 1.0
        columns[:, basis_index] = apply_gate_to_state(basis_state, gate, num_qubits)
    return columns


def circuit_apply(circuit: QCircuit, state: np.ndarray) -> np.ndarray:
    """Apply every (unitary) gate of ``circuit`` to a statevector."""
    for gate in circuit:
        state = apply_gate_to_state(state, gate, circuit.num_qubits)
    return state


def circuit_unitary(circuit: QCircuit, num_qubits: Optional[int] = None) -> np.ndarray:
    """Dense unitary of a circuit (the paper's denotational semantics)."""
    n = circuit.num_qubits if num_qubits is None else num_qubits
    _check_size(n)
    dim = 2**n
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit:
        if gate.is_barrier():
            continue
        unitary = gate_unitary_on_register(gate, n) @ unitary
    return unitary


def statevector(circuit: QCircuit) -> np.ndarray:
    """Final state of running ``circuit`` on the all-zero state."""
    _check_size(circuit.num_qubits)
    state = np.zeros(2**circuit.num_qubits, dtype=complex)
    state[0] = 1.0
    return circuit_apply(circuit, state)


def global_phase_between(a: np.ndarray, b: np.ndarray) -> Optional[complex]:
    """Return the phase ``e^{i t}`` with ``a ~= e^{i t} b``, or ``None``."""
    flat_a = a.reshape(-1)
    flat_b = b.reshape(-1)
    idx = int(np.argmax(np.abs(flat_b)))
    if abs(flat_b[idx]) < 1e-12:
        return 1.0 if np.allclose(flat_a, 0.0) else None
    phase = flat_a[idx] / flat_b[idx]
    magnitude = abs(phase)
    if abs(magnitude - 1.0) > 1e-8:
        return None
    return phase


def allclose_up_to_global_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """True when two matrices/vectors are equal up to a single global phase."""
    if a.shape != b.shape:
        return False
    phase = global_phase_between(a, b)
    if phase is None:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def _active_qubits(circuit: QCircuit) -> set:
    """Qubits touched by at least one operation of ``circuit``."""
    active: set = set()
    for gate in circuit:
        if gate.is_barrier():
            continue
        active.update(gate.all_qubits)
    return active


def _compact_onto_active(
    left: QCircuit, right: QCircuit
) -> Optional[tuple]:
    """Remap both circuits onto their joint active-qubit subset.

    Idle wires contribute an identity tensor factor to both sides, so they can
    be dropped without changing equivalence.  Returns ``None`` when the joint
    support is still too large for the dense oracle.
    """
    active = sorted(_active_qubits(left) | _active_qubits(right))
    if len(active) > MAX_DENSE_QUBITS:
        return None
    relabel = {old: new for new, old in enumerate(active)}
    compact_n = max(len(active), 1)

    def remap(circuit: QCircuit) -> QCircuit:
        compact = QCircuit(compact_n, circuit.num_clbits)
        for gate in circuit:
            if gate.is_barrier():
                continue
            compact.append(gate.remap_qubits(lambda q: relabel[q]))
        return compact

    return remap(left), remap(right), compact_n


def circuits_equivalent(
    left: QCircuit,
    right: QCircuit,
    up_to_global_phase: bool = True,
    atol: float = 1e-8,
) -> bool:
    """Dense-matrix equivalence check for two circuits.

    Both circuits are evaluated over a register large enough for either.  This
    is the ground-truth oracle the symbolic engine is validated against; it is
    exponential and only usable for small circuits.  Circuits on wide
    registers are accepted as long as their joint active-qubit support fits in
    :data:`MAX_DENSE_QUBITS` (idle wires carry the identity and are dropped).
    """
    n = max(left.num_qubits, right.num_qubits)
    if n > MAX_DENSE_QUBITS:
        compact = _compact_onto_active(left, right)
        if compact is None:
            _check_size(n)
        left, right, n = compact
    u_left = circuit_unitary(left, n)
    u_right = circuit_unitary(right, n)
    if up_to_global_phase:
        return allclose_up_to_global_phase(u_left, u_right, atol=atol)
    return bool(np.allclose(u_left, u_right, atol=atol))


def permutation_unitary(permutation: Sequence[int], num_qubits: int) -> np.ndarray:
    """Unitary that relocates the state of qubit ``i`` to qubit ``permutation[i]``."""
    _check_size(num_qubits)
    perm = list(permutation) + list(range(len(permutation), num_qubits))
    if sorted(perm) != list(range(num_qubits)):
        raise CircuitError(f"{permutation!r} is not a permutation of {num_qubits} qubits")
    dim = 2**num_qubits
    matrix = np.zeros((dim, dim), dtype=complex)
    for source in range(dim):
        bits = [(source >> (num_qubits - 1 - i)) & 1 for i in range(num_qubits)]
        new_bits = [0] * num_qubits
        for i, bit in enumerate(bits):
            new_bits[perm[i]] = bit
        target = 0
        for bit in new_bits:
            target = (target << 1) | bit
        matrix[target, source] = 1.0
    return matrix


def circuits_equivalent_up_to_permutation(
    left: QCircuit,
    right: QCircuit,
    permutation: Sequence[int],
    atol: float = 1e-8,
) -> bool:
    """Check ``right`` equals ``left`` followed by a relabelling of qubits.

    ``permutation[i] = j`` means that what the original circuit left on qubit
    ``i`` ends up on qubit ``j`` after the routed circuit (the net effect of
    the inserted swap gates).  This is the proof obligation for routing passes.
    """
    n = max(left.num_qubits, right.num_qubits, len(permutation))
    u_left = permutation_unitary(permutation, n) @ circuit_unitary(left, n)
    u_right = circuit_unitary(right, n)
    return allclose_up_to_global_phase(u_left, u_right, atol=atol)


def circuits_equivalent_under_relabelling(
    left: QCircuit,
    right: QCircuit,
    permutation: Sequence[int],
    atol: float = 1e-8,
) -> bool:
    """Check ``right`` is ``left`` with every qubit ``i`` relabelled to ``permutation[i]``.

    This is the proof obligation for layout-application passes: relabelling a
    circuit's wires conjugates its unitary by the corresponding permutation
    operator, ``U_right = P U_left P^\\dagger``.
    """
    n = max(left.num_qubits, right.num_qubits, len(permutation))
    p = permutation_unitary(permutation, n)
    u_left = circuit_unitary(left, n)
    u_right = circuit_unitary(right, n)
    return allclose_up_to_global_phase(p @ u_left @ p.conj().T, u_right, atol=atol)


def unitary_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Phase-insensitive operator distance used in counterexample reports."""
    phase = global_phase_between(a, b)
    if phase is None:
        phase = 1.0
    return float(np.linalg.norm(a - phase * b, ord="fro"))
