"""Compile QASMBench circuits with the verified pipeline (the Figure 11 flow).

Run with::

    python examples/compile_qasmbench.py [--family qft --size 10]

The example builds a benchmark circuit (one of the QASMBench-style families),
compiles it twice — once with the unverified DAG-based baseline pipeline and
once with the verified Giallar-style pipeline behind the conversion wrapper —
and reports gate counts, wall-clock times, and the relative overhead, i.e.
one row of Figure 11.
"""

from __future__ import annotations

import argparse
import time

from repro.bench.qasmbench import build_circuit, qasmbench_suite
from repro.coupling import grid_device
from repro.linalg import MAX_DENSE_QUBITS, circuits_equivalent
from repro.qasm import parse_qasm
from repro.transpiler.presets import baseline_pipeline, verified_pipeline


def compile_once(pipeline_factory, coupling, circuit):
    pipeline = pipeline_factory(coupling)
    started = time.perf_counter()
    compiled = pipeline.run(circuit.copy())
    elapsed = time.perf_counter() - started
    return compiled, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default="qft", help="benchmark family (e.g. qft, adder, qaoa)")
    parser.add_argument("--size", type=int, default=10, help="family size parameter")
    parser.add_argument("--list", action="store_true", help="list the full 48-circuit suite and exit")
    args = parser.parse_args(argv)

    if args.list:
        for entry in qasmbench_suite():
            print(f"{entry.name:24s} family={entry.family:12s} "
                  f"qubits={entry.num_qubits:3d} gates={entry.num_gates:5d}")
        return 0

    circuit = build_circuit(args.family, args.size)
    columns = 7
    rows = (circuit.num_qubits + columns - 1) // columns + 1
    coupling = grid_device(rows, columns)
    print(f"circuit : {circuit.name} ({circuit.num_qubits} qubits, {circuit.size()} gates)")
    print(f"device  : {rows}x{columns} grid ({coupling.num_qubits} qubits)")

    # The benchmark circuits round-trip through the OpenQASM 2 front-end, just
    # like a file-based QASMBench checkout would.
    circuit = parse_qasm(circuit.to_qasm())

    baseline, baseline_time = compile_once(baseline_pipeline, coupling, circuit)
    verified, verified_time = compile_once(verified_pipeline, coupling, circuit)

    print(f"baseline pipeline : {baseline.size():5d} gates in {baseline_time:.4f}s")
    print(f"verified pipeline : {verified.size():5d} gates in {verified_time:.4f}s")
    if baseline_time > 0:
        print(f"overhead          : {verified_time / baseline_time:.2f}x")

    if circuit.num_qubits <= MAX_DENSE_QUBITS:
        same = circuits_equivalent(baseline, verified)
        print(f"baseline and verified outputs equivalent (dense oracle): {same}")
    else:
        print("register too wide for the dense oracle; "
              "equivalence is guaranteed by the verified passes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
