"""Write a brand-new compiler pass and verify it push-button.

Run with::

    python examples/write_and_verify_a_pass.py

The example mirrors the workflow of Section 3 of the paper: a pass author

* subclasses one of the virtual pass classes (here :class:`GeneralPass`),
* writes ``run`` using the loop templates and the verified utility library,
* calls ``verify_pass`` — no specification, loop invariant, or proof needed.

Two versions of an "adjacent Hadamard cancellation" pass are verified: a
correct one, and a sloppy one that forgets to check that the two H gates act
on the *same* qubit.  The verifier accepts the first and rejects the second
with a confirmed counterexample.
"""

from __future__ import annotations

from repro import GeneralPass, verify_pass
from repro.circuit import QCircuit
from repro.linalg import circuits_equivalent
from repro.utility.circuit_ops import next_gate
from repro.verify.templates import while_gate_remaining


class HCancellation(GeneralPass):
    """Cancel pairs of adjacent Hadamard gates on the same qubit.

    Note the ``is_conditioned`` checks: without them the pass would merge a
    classically-conditioned H with an unconditioned one — exactly the family
    of bugs Section 7.1 of the paper reports in ``optimize_1q_gates`` — and
    the verifier would (rightly) reject it.
    """

    def run(self, circuit):
        def body(output, remain):
            gate = remain[0]
            if gate.name_is("h") and not gate.is_conditioned():
                partner = next_gate(remain, 0)
                if partner is not None:
                    other = remain[partner]
                    if other.name_is("h") and not other.is_conditioned():
                        if other.qubits == gate.qubits:
                            remain.delete(partner)
                            remain.delete(0)
                            return
            output.append(gate)
            remain.delete(0)

        return while_gate_remaining(circuit, body)


class SloppyHCancellation(GeneralPass):
    """BUGGY: cancels two "adjacent" H gates without checking their qubits.

    ``next_gate`` returns the next gate *sharing a qubit* with the front gate,
    but that is not enough to conclude the two H gates act on the same qubit —
    this version skips the ``qubits ==`` check, so it can delete an H that
    acts somewhere else entirely.
    """

    def run(self, circuit):
        def body(output, remain):
            gate = remain[0]
            if gate.name_is("h") and not gate.is_conditioned():
                partner = next_gate(remain, 0)
                if partner is not None:
                    other = remain[partner]
                    if other.name_is("h") and not other.is_conditioned():
                        # missing: other.qubits == gate.qubits
                        remain.delete(partner)
                        remain.delete(0)
                        return
            output.append(gate)
            remain.delete(0)

        return while_gate_remaining(circuit, body)


def demo_concrete_behaviour() -> None:
    """The correct pass at work on a concrete circuit."""
    circuit = QCircuit(2, name="hh")
    circuit.h(0)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.h(1)
    optimised = HCancellation()(circuit.copy())
    print(f"concrete run: {circuit.size()} gates -> {optimised.size()} gates, "
          f"equivalent: {circuits_equivalent(circuit, optimised)}")


def main() -> int:
    demo_concrete_behaviour()

    print("\nverifying the correct pass ...")
    good = verify_pass(HCancellation)
    print(f"  HCancellation: {'verified' if good.verified else 'REJECTED'} "
          f"({good.num_subgoals} subgoals, {good.time_seconds:.2f}s)")

    print("verifying the sloppy pass ...")
    bad = verify_pass(SloppyHCancellation)
    print(f"  SloppyHCancellation: {'verified' if bad.verified else 'REJECTED'}")
    if bad.counterexample is not None:
        print("  counterexample circuit (confirmed against the matrix semantics):")
        for gate in bad.counterexample.input_circuit.gates:
            print(f"    {gate}")
    return 0 if good.verified and not bad.verified else 1


if __name__ == "__main__":
    raise SystemExit(main())
