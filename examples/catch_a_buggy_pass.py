"""Rediscover the three Qiskit bugs from Section 7 of the paper.

Run with::

    python examples/catch_a_buggy_pass.py

Each case study pairs a buggy pass (faithful to the original Qiskit defect)
with the retrofitted fix that ships in :mod:`repro.passes`:

* **7.1 optimize_1q_gates** — merges runs of u1/u2/u3 gates without checking
  the ``c_if``/``q_if`` modifiers, silently changing conditioned gates.
* **7.2 commutative_cancellation** — groups gates by a commutation relation
  that is not transitive, then cancels inside groups that do not actually
  commute.
* **7.3 lookahead_swap** — can loop forever on the IBM-16 coupling map when
  no single swap improves the total distance (Figure 10).

For every pair the verifier rejects the buggy pass (with a confirmed
counterexample) and verifies the fixed pass.
"""

from __future__ import annotations

from repro.coupling import ibm_16q
from repro.passes import CommutativeCancellation, LookaheadSwap, Optimize1qGates
from repro.passes.buggy import (
    BuggyCommutativeCancellation,
    BuggyLookaheadSwap,
    BuggyOptimize1qGates,
)
from repro.verify import verify_pass

CASE_STUDIES = [
    ("Section 7.1  optimize_1q_gates (conditioned-gate merge)",
     BuggyOptimize1qGates, Optimize1qGates, None),
    ("Section 7.2  commutative_cancellation (non-transitive commutation)",
     BuggyCommutativeCancellation, CommutativeCancellation, None),
    ("Section 7.3  lookahead_swap (non-termination on IBM-16)",
     BuggyLookaheadSwap, LookaheadSwap, {"coupling": ibm_16q()}),
]


def describe(result) -> str:
    if result.verified:
        return f"verified ({result.num_subgoals} subgoals, {result.time_seconds:.2f}s)"
    reasons = "; ".join(result.failure_reasons[:1]) or "goal not provable"
    return f"REJECTED ({reasons})"


def main() -> int:
    all_as_expected = True
    for title, buggy_class, fixed_class, kwargs in CASE_STUDIES:
        print(title)
        buggy = verify_pass(buggy_class, pass_kwargs=kwargs)
        fixed = verify_pass(fixed_class, pass_kwargs=kwargs)
        print(f"  buggy  {buggy_class.__name__:32s}: {describe(buggy)}")
        if buggy.counterexample is not None:
            example = buggy.counterexample
            status = "confirmed against the dense semantics" if example.confirmed else "candidate"
            print(f"         counterexample [{example.kind}, {status}]: {example.description}")
            if example.input_circuit is not None:
                for gate in example.input_circuit.gates:
                    print(f"           {gate}")
        print(f"  fixed  {fixed_class.__name__:32s}: {describe(fixed)}")
        print()
        all_as_expected &= (not buggy.verified) and fixed.verified
    print("all three bugs rediscovered and all three fixes verified:", all_as_expected)
    return 0 if all_as_expected else 1


if __name__ == "__main__":
    raise SystemExit(main())
