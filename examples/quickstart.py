"""Quickstart: build a circuit, optimise it with a verified pass, verify the pass.

Run with::

    python examples/quickstart.py

This walks through the three things a Giallar user does most often:

1. build (or parse) a quantum circuit;
2. run a *verified* compiler pass on it and check the result concretely;
3. re-verify the pass push-button — no specifications, invariants, or proofs.
"""

from __future__ import annotations

from repro import QCircuit, verify_pass
from repro.linalg import circuits_equivalent
from repro.passes import CXCancellation, Optimize1qGates
from repro.qasm import parse_qasm


def build_example_circuit() -> QCircuit:
    """A small circuit with an obviously cancellable CX pair and a u1/u3 run."""
    circuit = QCircuit(3, name="quickstart")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 1)          # cancels with the previous CX
    circuit.u1(0.3, 2)
    circuit.u3(1.1, 0.4, 0.2, 2)  # merges with the previous u1
    circuit.cx(1, 2)
    return circuit


def main() -> int:
    circuit = build_example_circuit()
    print("input circuit (OpenQASM 2):")
    print(circuit.to_qasm())

    # --- run two verified optimisation passes --------------------------------
    optimised = CXCancellation()(circuit.copy())
    optimised = Optimize1qGates()(optimised)
    print(f"gate count: {circuit.size()} -> {optimised.size()}")
    print(f"semantics preserved (dense-matrix oracle): "
          f"{circuits_equivalent(circuit, optimised)}")

    # --- the same circuit round-trips through the OpenQASM front-end ---------
    reparsed = parse_qasm(optimised.to_qasm())
    print(f"round-trips through OpenQASM: {circuits_equivalent(optimised, reparsed)}")

    # --- push-button verification of the passes themselves -------------------
    for pass_class in (CXCancellation, Optimize1qGates):
        result = verify_pass(pass_class)
        print(f"verify {pass_class.__name__:18s}: "
              f"{'verified' if result.verified else 'REJECTED'} "
              f"({result.num_subgoals} subgoals, {result.time_seconds:.2f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
