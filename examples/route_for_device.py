"""Map and route a circuit onto a real device topology (Figure 4's workflow).

Run with::

    python examples/route_for_device.py

The example follows the layout-selection + routing flow of Section 2.3: a
logical circuit is placed onto the IBM 16-qubit device (the coupling map of
Figure 10), swaps are inserted by each of the three verified routing passes,
and for every result the example checks

* every 2-qubit gate respects the coupling map, and
* the routed circuit is equivalent to the original up to the permutation
  induced by the inserted swaps (the routing-pass proof obligation).
"""

from __future__ import annotations

from repro.bench.qasmbench import qft
from repro.circuit import QCircuit
from repro.coupling import ibm_16q
from repro.passes import ApplyLayout, BasicSwap, DenseLayout, LookaheadSwap, SabreSwap
from repro.symbolic import conforms_to_coupling, equivalent_up_to_swaps
from repro.verify import PropertySet, verify_pass


def build_logical_circuit() -> QCircuit:
    """A QFT on 6 logical qubits — plenty of non-neighbouring interactions."""
    return qft(6)


def place_on_device(circuit: QCircuit, coupling) -> QCircuit:
    """Layout selection: choose physical qubits, then relabel the circuit."""
    properties = PropertySet()
    DenseLayout(coupling=coupling, property_set=properties)(circuit)
    placed = ApplyLayout(property_set=properties)(circuit.copy())
    # Widen the register to the full device so routing may use every wire.
    placed.num_qubits = coupling.num_qubits
    return placed


def main() -> int:
    coupling = ibm_16q()
    logical = build_logical_circuit()
    placed = place_on_device(logical, coupling)
    print(f"logical circuit : {logical.num_qubits} qubits, {logical.size()} gates")
    print(f"device          : ibm_16q ({coupling.num_qubits} qubits, "
          f"{len(coupling.edges)} directed edges)")
    print(f"violations before routing: "
          f"{sum(1 for g in placed.gates if len(g.all_qubits) == 2 and not coupling.connected(*g.all_qubits))}")
    print()

    for pass_class in (BasicSwap, LookaheadSwap, SabreSwap):
        routed = pass_class(coupling=coupling)(placed.copy())
        swaps = routed.count_ops().get("swap", 0)
        conformant = conforms_to_coupling(routed.gates, coupling)
        report = equivalent_up_to_swaps(placed.gates, routed.gates, coupling.num_qubits)
        print(f"{pass_class.__name__:14s}: {routed.size():3d} gates "
              f"({swaps} swaps inserted), coupling-conformant: {conformant}, "
              f"equivalent up to swaps: {bool(report.equivalent)}")

    print()
    print("push-button verification of the routing passes themselves:")
    for pass_class in (BasicSwap, LookaheadSwap, SabreSwap):
        result = verify_pass(pass_class, pass_kwargs={"coupling": coupling})
        print(f"  {pass_class.__name__:14s}: "
              f"{'verified' if result.verified else 'REJECTED'} "
              f"({result.num_subgoals} subgoals, {result.time_seconds:.2f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
