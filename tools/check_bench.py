#!/usr/bin/env python3
"""Bench-regression checker: fresh ``repro bench`` output vs the recorded
baselines in ``benchmarks/recorded/``.

Raw wall-clock numbers do not transfer between machines, so the checker
never compares seconds against seconds.  Each bench kind instead gets two
classes of invariant:

* **Structural (noise-free).**  Facts that are deterministic on any
  machine: verdicts identical between compared modes, the proof-method
  histogram, subgoal counts, the number of trace records a warm run
  emits.  These must match the recorded baseline *exactly* — a drift here
  means the bench is measuring different work, not that the machine is
  slow.
* **Ratio (noise-tolerant).**  Dimensionless figures of merit — the
  indexed-vs-linear e-matching speedup, the tracing-on overhead
  percentage — bounded loosely enough to survive a busy shared runner
  while still catching an order-of-magnitude regression.

Run from the repository root::

    PYTHONPATH=src python -m repro.bench.telemetry --record fresh.json
    python tools/check_bench.py --kind telemetry --fresh fresh.json

Exit status is nonzero on any failed invariant; every failure is listed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORDED_DIR = REPO_ROOT / "benchmarks" / "recorded"

# CI invokes this script without PYTHONPATH=src; the ratio-bound logic it
# shares with `repro trace diff` lives in repro.telemetry.bounds, so put
# the in-repo sources on the path before importing it.
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.bounds import (  # noqa: E402
    DEFAULT_MAX_OVERHEAD_PCT,
    DEFAULT_MIN_KERNEL_SPEEDUP,
    DEFAULT_MIN_SPEEDUP,
    exceeds_ratio,
)


def _load(path: Path) -> Dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"check_bench: cannot read {path}: {exc}")


def check_solver(fresh: Dict, recorded: Dict, *,
                 min_speedup: float) -> List[str]:
    errors = []
    if fresh.get("verdicts_identical") is not True:
        errors.append("solver: verdicts differ between compared solver modes")
    indexed = float(fresh.get("indexed_wall_seconds", 0.0))
    linear = float(fresh.get("linear_wall_seconds", 0.0))
    if not indexed < linear:
        errors.append(
            f"solver: indexed e-matching ({indexed}s) did not beat the "
            f"linear scan ({linear}s)")
    speedup = float(fresh.get("speedup", 0.0))
    if speedup < min_speedup:
        errors.append(
            f"solver: e-matching speedup {speedup}x is below the "
            f"{min_speedup}x floor (recorded: {recorded.get('speedup')}x)")
    # The per-solver proof-method histograms are machine-independent: the
    # same subgoals must be discharged by the same methods as recorded.
    fresh_runs = fresh.get("runs") or {}
    for solver, baseline in (recorded.get("runs") or {}).items():
        run = fresh_runs.get(solver)
        if run is None:
            if not (fresh.get("skipped_solvers") or {}).get(solver):
                errors.append(f"solver: run for {solver!r} missing and not "
                              f"marked skipped")
            continue
        for key in ("methods", "subgoals"):
            if run.get(key) != baseline.get(key):
                errors.append(
                    f"solver: {solver} {key} drifted from the recorded "
                    f"baseline ({run.get(key)!r} != {baseline.get(key)!r})")
    return errors


def check_kernel(fresh: Dict, recorded: Dict, *,
                 min_speedup: float,
                 max_overhead_pct: float) -> List[str]:
    errors = []
    # Structural: the two kernels are two layouts of one algorithm — the
    # stressor must collapse on both, verdicts and per-method discharge
    # histograms must be identical, on any machine.
    if fresh.get("verdicts_identical") is not True:
        errors.append("kernel: arena and object kernels disagreed "
                      "(verdicts or stressor collapse)")
    stressor = fresh.get("stressor") or {}
    if stressor.get("both_collapse_chain") is not True:
        errors.append("kernel: deep-congruence stressor did not collapse "
                      "the chain on both kernels")
    suite = fresh.get("suite") or {}
    recorded_suite = recorded.get("suite") or {}
    if fresh.get("passes") != recorded.get("passes"):
        errors.append(
            f"kernel: suite size {fresh.get('passes')} != recorded "
            f"{recorded.get('passes')}")
    fresh_runs = suite.get("runs") or {}
    for kernel, baseline in (recorded_suite.get("runs") or {}).items():
        run = fresh_runs.get(kernel) or {}
        for key in ("methods", "subgoals"):
            if run.get(key) != baseline.get(key):
                errors.append(
                    f"kernel: suite/{kernel} {key} drifted from the "
                    f"recorded baseline ({run.get(key)!r} != "
                    f"{baseline.get(key)!r})")
    # Ratio: the arena must stay >= min_speedup on the stressor and must
    # not be slower than the object kernel on the suite beyond noise.
    speedup = float(stressor.get("speedup", 0.0))
    if speedup < min_speedup:
        errors.append(
            f"kernel: arena speedup {speedup}x on the stressor is below "
            f"the {min_speedup}x floor (recorded: "
            f"{(recorded.get('stressor') or {}).get('speedup')}x)")
    runs = fresh_runs
    arena_wall = float((runs.get("arena") or {}).get("wall_seconds", 0.0))
    object_wall = float((runs.get("object") or {}).get("wall_seconds", 0.0))
    if exceeds_ratio(arena_wall, object_wall, max_pct=max_overhead_pct):
        errors.append(
            f"kernel: arena suite wall {arena_wall}s exceeds the object "
            f"kernel's {object_wall}s by more than {max_overhead_pct}% "
            f"(recorded ratio: {recorded.get('suite_ratio')!r})")
    return errors


def check_telemetry(fresh: Dict, recorded: Dict, *,
                    max_overhead_pct: float) -> List[str]:
    errors = []
    if fresh.get("verdicts_identical") is not True:
        errors.append("telemetry: tracing changed verdicts")
    if fresh.get("passes") != recorded.get("passes"):
        errors.append(
            f"telemetry: suite size {fresh.get('passes')} != recorded "
            f"{recorded.get('passes')}")
    # A warm run's record count is deterministic; a change means the
    # instrumentation itself changed and the baseline must be re-recorded.
    fresh_records = fresh.get("records_per_warm_run")
    if fresh_records != recorded.get("records_per_warm_run"):
        errors.append(
            f"telemetry: records per warm run {fresh_records!r} drifted "
            f"from recorded {recorded.get('records_per_warm_run')!r}")
    overhead = float(fresh.get("overhead_pct", 0.0))
    if exceeds_ratio(100.0 + overhead, 100.0, max_pct=max_overhead_pct):
        errors.append(
            f"telemetry: tracing overhead {overhead:+.1f}% exceeds the "
            f"{max_overhead_pct}% CI bound (recorded: "
            f"{recorded.get('overhead_pct'):+.1f}%)")
    return errors


def check_stats(fresh: Dict, recorded: Dict, *,
                max_overhead_pct: float) -> List[str]:
    errors = []
    if fresh.get("verdicts_identical") is not True:
        errors.append("stats: store accounting changed verdicts")
    if fresh.get("aggregates_identical") is not True:
        errors.append("stats: canonical aggregates differed between "
                      "enabled warm runs (determinism promise broken)")
    if fresh.get("passes") != recorded.get("passes"):
        errors.append(
            f"stats: suite size {fresh.get('passes')} != recorded "
            f"{recorded.get('passes')}")
    # Warm-run tier counters are deterministic on any machine; drift means
    # the accounting itself changed and the baseline must be re-recorded.
    for key in ("pass_hits", "subgoal_hits"):
        if fresh.get(key) != recorded.get(key):
            errors.append(
                f"stats: {key} {fresh.get(key)!r} drifted from recorded "
                f"{recorded.get(key)!r}")
    overhead = float(fresh.get("overhead_pct", 0.0))
    if exceeds_ratio(100.0 + overhead, 100.0, max_pct=max_overhead_pct):
        errors.append(
            f"stats: accounting overhead {overhead:+.1f}% exceeds the "
            f"{max_overhead_pct}% CI bound (recorded: "
            f"{recorded.get('overhead_pct'):+.1f}%)")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kind", required=True,
                        choices=("solver", "kernel", "telemetry", "stats"),
                        help="which bench the fresh JSON came from")
    parser.add_argument("--fresh", required=True, metavar="PATH",
                        help="JSON written by `repro bench <kind> --record`")
    parser.add_argument("--recorded", default=None, metavar="PATH",
                        help="baseline JSON (default: "
                             "benchmarks/recorded/bench-<kind>.json)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="solver: e-matching speedup floor; kernel: "
                             "arena-vs-object stressor speedup floor")
    parser.add_argument("--max-overhead-pct", type=float,
                        default=DEFAULT_MAX_OVERHEAD_PCT,
                        help="telemetry/stats: overhead ceiling (%%)")
    args = parser.parse_args(argv)

    recorded_path = Path(args.recorded) if args.recorded else \
        RECORDED_DIR / f"bench-{args.kind}.json"
    fresh = _load(Path(args.fresh))
    recorded = _load(recorded_path)

    if args.kind == "solver":
        min_speedup = args.min_speedup if args.min_speedup is not None \
            else DEFAULT_MIN_SPEEDUP
        errors = check_solver(fresh, recorded, min_speedup=min_speedup)
    elif args.kind == "kernel":
        min_speedup = args.min_speedup if args.min_speedup is not None \
            else DEFAULT_MIN_KERNEL_SPEEDUP
        errors = check_kernel(fresh, recorded, min_speedup=min_speedup,
                              max_overhead_pct=args.max_overhead_pct)
    elif args.kind == "stats":
        errors = check_stats(fresh, recorded,
                             max_overhead_pct=args.max_overhead_pct)
    else:
        errors = check_telemetry(fresh, recorded,
                                 max_overhead_pct=args.max_overhead_pct)

    if errors:
        for error in errors:
            print(f"check_bench: {error}", file=sys.stderr)
        return 1
    print(f"check_bench: {args.kind} bench within recorded bounds "
          f"({recorded_path.relative_to(REPO_ROOT)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
