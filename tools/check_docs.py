#!/usr/bin/env python3
"""Documentation checker: executable snippets and intra-repo links.

Two checks over ``README.md`` and every ``docs/*.md``:

* **Doctests.**  Every ``>>>`` example in the Markdown is executed with
  :mod:`doctest` (``python -m doctest``-style), so the documented commands
  and outputs cannot rot.  ``ELLIPSIS`` and ``NORMALIZE_WHITESPACE`` are
  enabled, matching the repo's docstring doctests.
* **Links.**  Every relative Markdown link target must exist in the repo
  (anchors are stripped); a renamed file breaks CI instead of readers.

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py

Exit status is nonzero on any failure.  The same checks run in the tier-1
suite (``tests/docs/test_docs.py``) and in the CI ``docs`` job.
"""

from __future__ import annotations

import doctest
import os
import re
import sys
import tempfile
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren (Markdown
#: inline links; reference-style links are not used in this repo's docs).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_DOCTEST_FLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(path: Path) -> List[str]:
    """Broken relative link targets in one Markdown file."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link {target!r}")
    return errors


def run_doctests(path: Path) -> List[str]:
    """Execute the file's ``>>>`` examples; return failure descriptions."""
    results = doctest.testfile(
        str(path), module_relative=False, optionflags=_DOCTEST_FLAGS,
        verbose=False, report=True,
    )
    if results.failed:
        return [f"{path.relative_to(REPO_ROOT)}: "
                f"{results.failed}/{results.attempted} doctest(s) failed"]
    return []


def main() -> int:
    # Doc snippets exercise the real engine; keep their proof cache out of
    # the user's $HOME (mirrors the test suite's isolation fixture).
    scratch = tempfile.mkdtemp(prefix="repro-docs-")
    os.environ.setdefault("REPRO_CACHE_DIR", os.path.join(scratch, "cache"))

    errors: List[str] = []
    attempted = 0
    for path in doc_files():
        errors.extend(check_links(path))
        errors.extend(run_doctests(path))
        attempted += 1
    if not attempted:
        errors.append("no documentation files found")
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if not errors:
        print(f"docs ok: {attempted} files checked (links + doctests)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
