"""The resident daemon: wire protocol, warm serving, CLI integration."""

import json
import threading

import pytest

from repro.cli import main
from repro.passes import ALL_VERIFIED_PASSES
from repro.service.client import DaemonClient, connect
from repro.service.daemon import ProofDaemon, VerificationService
from repro.service.protocol import DaemonEndpoint, make_pass_spec, read_state


@pytest.fixture
def daemon(tmp_path):
    """A live daemon over a sqlite store in ``tmp_path``, torn down after."""
    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


def _specs(classes):
    from repro.bench.table2 import pass_kwargs_for

    return [make_pass_spec(cls, pass_kwargs_for(cls)) for cls in classes]


def test_state_file_discovery(daemon, tmp_path):
    endpoint = read_state(tmp_path)
    assert endpoint is not None
    assert endpoint.port == daemon.endpoint.port
    assert endpoint.token == daemon.endpoint.token
    client = connect(tmp_path)
    assert client is not None
    status = client.status()
    assert status["backend"] == "sqlite"
    assert status["store"]["backend"] == "sqlite"
    assert status["known_passes"] >= len(ALL_VERIFIED_PASSES)


def test_cold_then_warm_requests(daemon, tmp_path):
    client = connect(tmp_path)
    classes = ALL_VERIFIED_PASSES[:5]
    results, stats = client.verify_specs(_specs(classes))
    assert [r.pass_name for r in results] == [c.__name__ for c in classes]
    assert all(r.verified for r in results)
    assert stats.cache_misses == len(classes)
    assert stats.backend == "sqlite"
    assert stats.daemon["requests_served"] == 1

    results, stats = client.verify_specs(_specs(classes))
    assert all(r.verified and r.from_cache for r in results)
    assert stats.cache_hits == len(classes)
    assert stats.cache_misses == 0
    assert stats.daemon["requests_served"] == 2
    assert "daemon:" in stats.daemon_line()


def test_request_batching_splits_http_requests(daemon, tmp_path):
    client = connect(tmp_path)
    classes = ALL_VERIFIED_PASSES[:6]
    results, stats = client.verify_specs(_specs(classes), batch_size=2)
    assert len(results) == 6
    assert all(r.verified for r in results)
    assert stats.passes_total == 6
    assert stats.daemon["requests_served"] == 3   # 6 passes / batches of 2


def test_bad_token_is_rejected(daemon, tmp_path):
    endpoint = read_state(tmp_path)
    intruder = DaemonClient(DaemonEndpoint(
        host=endpoint.host, port=endpoint.port, token="wrong",
        pid=endpoint.pid, backend=endpoint.backend, cache_dir=endpoint.cache_dir,
    ))
    from repro.service.client import DaemonUnavailable

    with pytest.raises(DaemonUnavailable):
        intruder.status()


def test_non_ascii_token_is_rejected_not_crashed(daemon, tmp_path):
    """An attacker-controlled header must yield a clean 401, even when it is
    not ASCII (which would make a naive compare_digest raise)."""
    import http.client

    endpoint = read_state(tmp_path)
    connection = http.client.HTTPConnection(endpoint.host, endpoint.port, timeout=10)
    try:
        connection.request("GET", "/status",
                           headers={"X-Repro-Token": "\xa4\xff badtoken"})
        response = connection.getresponse()
        assert response.status == 401
        response.read()
    finally:
        connection.close()


def test_unknown_pass_is_a_protocol_error(daemon, tmp_path):
    from repro.service.protocol import ProtocolError

    client = connect(tmp_path)
    with pytest.raises(ProtocolError):
        client.verify_specs([{"name": "NotARealPass", "coupling": None}])


def test_empty_request_is_a_protocol_error(daemon, tmp_path):
    from repro.service.protocol import ProtocolError

    client = connect(tmp_path)
    with pytest.raises(ProtocolError):
        client.verify_specs([])


def test_cli_verify_daemon_round_trip(daemon, tmp_path, capsys):
    cache_dir = str(tmp_path)
    assert main(["verify", "CXCancellation", "Width", "--daemon",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["engine"]["daemon"]["requests_served"] == 1
    assert cold["engine"]["backend"] == "sqlite"
    assert main(["verify", "CXCancellation", "Width", "--daemon",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["engine"]["cache_hits"] == 2
    assert warm["engine"]["cache_misses"] == 0
    assert warm["summary"]["all_verified"] is True


def test_cli_text_report_shows_daemon_line(daemon, tmp_path, capsys):
    assert main(["verify", "Width", "--daemon", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "engine:" in out
    assert "daemon: 127.0.0.1:" in out


def test_cli_status_against_live_daemon(daemon, tmp_path, capsys):
    assert main(["status", "--cache-dir", str(tmp_path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backend"] == "sqlite"
    assert payload["store"]["schema_version"] >= 1


def test_warm_daemon_hit_rate_matches_warm_jsonl(daemon, tmp_path, capsys):
    """Acceptance: ``verify --all`` against a warm daemon serves at least the
    hit rate of the in-process warm JSONL path."""
    jsonl_dir = str(tmp_path / "jsonl-tier")
    for _ in range(2):
        assert main(["verify", "--all", "--cache-dir", jsonl_dir,
                     "--format", "json"]) == 0
        jsonl_warm = json.loads(capsys.readouterr().out)
    assert jsonl_warm["engine"]["backend"] == "jsonl"
    jsonl_rate = jsonl_warm["engine"]["cache_hits"] / jsonl_warm["engine"]["passes_total"]

    for _ in range(2):
        assert main(["verify", "--all", "--daemon", "--cache-dir", str(tmp_path),
                     "--format", "json"]) == 0
        daemon_warm = json.loads(capsys.readouterr().out)
    assert daemon_warm["engine"]["daemon"] is not None
    daemon_rate = daemon_warm["engine"]["cache_hits"] / daemon_warm["engine"]["passes_total"]

    assert jsonl_rate == 1.0               # the PR 1 baseline is fully warm
    assert daemon_rate >= jsonl_rate       # the shared tier is no colder
    # And identical verdicts on both tiers.
    jsonl_verdicts = [(r["pass"], r["verified"]) for r in jsonl_warm["results"]]
    daemon_verdicts = [(r["pass"], r["verified"]) for r in daemon_warm["results"]]
    assert jsonl_verdicts == daemon_verdicts


def test_no_cache_never_goes_to_the_daemon(daemon, tmp_path, capsys):
    """--no-cache demands a stateless re-proof; the daemon exists to serve
    its cache, so such runs stay in-process."""
    cache_dir = str(tmp_path)
    assert main(["verify", "Width", "--daemon", "--cache-dir", cache_dir,
                 "--format", "json"]) == 0
    capsys.readouterr()                  # warm the shared store
    assert main(["verify", "Width", "--daemon", "--no-cache",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["engine"]["daemon"] is None
    assert payload["engine"]["cache_hits"] == 0
    assert payload["engine"]["cache_misses"] == 1
    assert payload["engine"]["cache_dir"] is None


def test_rolling_restart_keeps_the_newer_state_file(tmp_path):
    """Closing an old daemon must not erase a newer daemon's discovery file."""
    old_service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    old_server = ProofDaemon(old_service)
    new_service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    new_server = ProofDaemon(new_service)   # overwrites daemon.json
    try:
        old_server.close()                  # must leave the new file alone
        state = read_state(tmp_path)
        assert state is not None
        assert state.token == new_server.token
    finally:
        new_server.close()
    assert read_state(tmp_path) is None     # the owner's close does remove it


def test_sigterm_cleans_up_the_state_file(tmp_path):
    """`kill <pid>` — the documented stop — must remove daemon.json."""
    import os
    import signal
    import subprocess
    import sys
    import time
    from pathlib import Path

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--cache-dir", str(tmp_path)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )
    try:
        for _ in range(100):
            if read_state(tmp_path) is not None:
                break
            time.sleep(0.2)
        assert read_state(tmp_path) is not None
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
        assert read_state(tmp_path) is None
    finally:
        if process.poll() is None:
            process.kill()


def test_shutdown_endpoint_stops_the_server(tmp_path):
    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    client = connect(tmp_path)
    assert client.shutdown() == {"ok": True}
    thread.join(timeout=10)
    assert not thread.is_alive()
    server.close()
    assert read_state(tmp_path) is None
