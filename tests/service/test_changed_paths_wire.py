"""``changed_paths`` over the daemon wire: incremental remote requests."""

import os
import sys
import textwrap
import threading
import time
import uuid

import pytest

from repro.bench.table2 import pass_kwargs_for
from repro.passes import ALL_VERIFIED_PASSES
from repro.service.client import connect, verify_with_fallback
from repro.service.daemon import ProofDaemon, VerificationService
from repro.service.protocol import ProtocolError, make_pass_spec


@pytest.fixture
def daemon(tmp_path):
    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


def _specs(classes):
    return [make_pass_spec(cls, pass_kwargs_for(cls)) for cls in classes]


_GOOD_WIDTH = '''
from repro.verify.passes import AnalysisPass


class TempWidth(AnalysisPass):
    """Store the register width."""

    def run(self, circuit):
        self.property_set["width"] = circuit.num_qubits
        return circuit
'''

_GOOD_WIDTH_EDITED = '''
from repro.verify.passes import AnalysisPass


class TempWidth(AnalysisPass):
    """Store the register width (including clbits)."""

    def run(self, circuit):
        self.property_set["width"] = circuit.num_qubits + circuit.num_clbits
        return circuit
'''


class _TempPackage:
    """A throwaway importable package with an editable pass module."""

    GOOD_WIDTH = _GOOD_WIDTH
    GOOD_WIDTH_EDITED = _GOOD_WIDTH_EDITED

    def __init__(self, root):
        self.name = f"wirepkg_{uuid.uuid4().hex[:10]}"
        self.root = str(root)
        self.package_dir = os.path.join(self.root, self.name)
        self._bumps = 0
        os.makedirs(self.package_dir)
        self.write("__init__.py", "")
        sys.path.insert(0, self.root)

    def write(self, filename, body):
        path = os.path.join(self.package_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(textwrap.dedent(body))
        self._bumps += 1
        bump = time.time() + self._bumps
        os.utime(path, (bump, bump))
        return os.path.realpath(path)

    def load(self, module, attribute):
        import importlib

        return getattr(importlib.import_module(f"{self.name}.{module}"), attribute)

    def cleanup(self):
        sys.path.remove(self.root)
        for name in list(sys.modules):
            if name == self.name or name.startswith(self.name + "."):
                del sys.modules[name]


@pytest.fixture
def pass_package(tmp_path):
    package = _TempPackage(tmp_path / "pkgroot")
    try:
        yield package
    finally:
        package.cleanup()


def test_empty_change_set_serves_everything_incrementally(daemon, tmp_path):
    client = connect(tmp_path)
    classes = ALL_VERIFIED_PASSES[:5]
    # Cold request records the dependency index daemon-side.
    client.verify_specs(_specs(classes))
    results, stats = client.verify_specs(_specs(classes), changed_paths=[])
    assert all(r.verified for r in results)
    assert stats.stale_passes == 0
    assert stats.cache_hits == len(classes)
    assert stats.cache_misses == 0


def test_changed_unrelated_path_keeps_everything_warm(daemon, tmp_path):
    client = connect(tmp_path)
    classes = ALL_VERIFIED_PASSES[:4]
    client.verify_specs(_specs(classes))
    bogus = str(tmp_path / "not-a-dependency.py")
    results, stats = client.verify_specs(_specs(classes), changed_paths=[bogus])
    assert all(r.verified for r in results)
    assert stats.stale_passes == 0
    assert stats.cache_misses == 0


def test_changed_dependency_path_restales_only_its_passes(daemon, tmp_path):
    client = connect(tmp_path)
    classes = ALL_VERIFIED_PASSES[:6]
    client.verify_specs(_specs(classes))
    # The module the first class lives in is certainly in its dependency
    # set; its content did not actually change, so the re-derived keys all
    # still hit the store.
    touched = sys.modules[classes[0].__module__].__file__
    results, stats = client.verify_specs(_specs(classes),
                                         changed_paths=[touched])
    assert all(r.verified for r in results)
    # Only the passes whose dependency set includes the file were
    # re-fingerprinted; the file content did not actually change, so every
    # re-derived key still hits the store.
    assert stats.stale_passes is not None and 0 < stats.stale_passes <= len(classes)
    assert stats.cache_misses == 0


def test_malformed_changed_paths_is_a_protocol_error(daemon, tmp_path):
    client = connect(tmp_path)
    with pytest.raises(ProtocolError):
        client.verify_specs(_specs(ALL_VERIFIED_PASSES[:1]),
                            changed_paths="not-a-list")


def test_daemon_absorbs_edit_and_reproves_new_code(daemon, tmp_path, pass_package):
    """A non-watching daemon given changed_paths reloads before proving.

    The temp pass is injected into the daemon's registry (it is not a
    shipped pass); after the edit, the request carrying the changed path
    must be verified against the *new* source — the absorbed reload — not
    the class object the daemon resolved at injection time.
    """
    path = pass_package.write("width_mod.py", pass_package.GOOD_WIDTH)
    temp_class = pass_package.load("width_mod", "TempWidth")
    daemon.service.registry["TempWidth"] = temp_class

    client = connect(tmp_path)
    spec = [{"name": "TempWidth", "coupling": None}]
    results, stats = client.verify_specs(spec)
    assert results[0].verified
    assert stats.cache_misses == 1

    pass_package.write("width_mod.py", pass_package.GOOD_WIDTH_EDITED)
    results, stats = client.verify_specs(spec, changed_paths=[path])
    assert results[0].verified
    # The edit moved the key: the daemon re-proved rather than serving the
    # stale verdict, which is only possible if it reloaded the module.
    assert stats.cache_misses == 1
    assert stats.stale_passes == 1


def test_fallback_path_honours_changed_paths(tmp_path):
    """No daemon at all: verify_with_fallback runs incrementally in-process."""
    classes = ALL_VERIFIED_PASSES[:3]
    verify_with_fallback(classes, cache_dir=str(tmp_path),
                         pass_kwargs_fn=pass_kwargs_for)
    report = verify_with_fallback(classes, cache_dir=str(tmp_path),
                                  pass_kwargs_fn=pass_kwargs_for,
                                  changed_paths=[])
    assert report.stats.daemon is None
    assert report.stats.stale_passes == 0
    assert report.stats.cache_hits == len(classes)
