"""The sqlite proof-cache tier: persistence, invalidation, eviction, migration."""

import json
import sqlite3

from repro.engine.cache import ProofCache
from repro.engine.fingerprint import toolchain_fingerprint
from repro.service.store import (
    SCHEMA_VERSION,
    SqliteProofCache,
    migrate_jsonl,
    sqlite_cache_path,
)

FP = "a" * 64  # explicit fingerprint: store tests never need the real prover


def _subgoal(n=0):
    return {"proved": True, "method": "identical", "reason": "", "rules_used": [f"r{n}"]}


def test_in_memory_round_trip():
    cache = SqliteProofCache(None, active_fingerprint=FP)
    assert cache.get_pass("k") is None
    cache.put_pass("k", {"verified": True})
    assert cache.get_pass("k") == {"verified": True}
    assert cache.stats.pass_hits == 1
    assert cache.stats.pass_misses == 1
    assert cache.path is None
    cache.close()


def test_persistence_across_instances(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("pk", {"verified": True})
        cache.put_subgoal("sk", _subgoal())
    reopened = SqliteProofCache(tmp_path, active_fingerprint=FP)
    assert reopened.get_pass("pk") == {"verified": True}
    assert reopened.get_subgoal("sk")["proved"] is True
    assert reopened.has_subgoal("sk")
    assert len(reopened) == 2
    assert "pk" in reopened
    assert sorted(kind for kind, _, _ in reopened.entries()) == ["pass", "subgoal"]
    reopened.close()


def test_last_write_wins(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        for round_number in range(5):
            cache.put_pass("pk", {"round": round_number})
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        assert cache.get_pass("pk") == {"round": 4}
        assert len(cache) == 1


def test_entries_from_other_toolchains_are_invisible(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("pk", {"verified": True})
    other = SqliteProofCache(tmp_path, active_fingerprint="b" * 64)
    assert other.get_pass("pk") is None
    assert other.stats.invalidated == 1
    assert other.stats.pass_misses == 1
    assert len(other) == 0
    assert other.subgoal_snapshot() == {}
    other.close()


def test_default_fingerprint_is_the_toolchain(tmp_path):
    with SqliteProofCache(tmp_path) as cache:
        assert cache.active_fingerprint == toolchain_fingerprint()


def test_subgoal_snapshot_only_live_entries(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_subgoal("s1", _subgoal(1))
        cache.put_subgoal("s2", _subgoal(2))
    with SqliteProofCache(tmp_path, active_fingerprint="b" * 64) as stale:
        stale.put_subgoal("s3", _subgoal(3))
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        snapshot = cache.subgoal_snapshot()
    assert sorted(snapshot) == ["s1", "s2"]


def test_hit_counts_accumulate_in_the_database(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("pk", {"verified": True})
        cache.get_pass("pk")
        cache.get_pass("pk")
    # A second client's hits land on the same counter.
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.get_pass("pk")
        assert cache.hit_count("pass", "pk") == 3


def test_reproving_under_new_toolchain_resets_hits(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("pk", {"verified": True})
        cache.get_pass("pk")
        cache.get_pass("pk")
        assert cache.hit_count("pass", "pk") == 2
        cache.put_pass("pk", {"verified": True})      # same fp: tally survives
        assert cache.hit_count("pass", "pk") == 2
    with SqliteProofCache(tmp_path, active_fingerprint="b" * 64) as newer:
        newer.put_pass("pk", {"verified": True})      # new fp: tally resets
        assert newer.hit_count("pass", "pk") == 0


def test_touch_subgoals_refreshes_recency_and_hits(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_subgoal("hot", _subgoal())
        cache.put_pass("p1", {"verified": True})
        cache.put_pass("p2", {"verified": True})
        cache.touch_subgoals(["hot", "unknown-key"])
        assert cache.hit_count("subgoal", "hot") == 1
        assert cache.prune(1) == 2
        assert cache.has_subgoal("hot")


def test_prune_is_least_recently_used(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        for index in range(5):
            cache.put_pass(f"p{index}", {"index": index})
        # Refresh p0 so p1 becomes the eviction victim.
        cache.get_pass("p0")
        evicted = cache.prune(3)
        assert evicted == 2
        assert cache.stats.evicted == 2
        assert cache.get_pass("p0") is not None
        assert cache.get_pass("p4") is not None
        assert cache.get_pass("p1") is None
        assert cache.get_pass("p2") is None


def test_prune_reaps_stale_fingerprints_first(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint="b" * 64) as old:
        old.put_pass("old", {"verified": True})
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("new", {"verified": True})
        assert cache.prune(10) == 1       # only the stale row goes
        assert cache.get_pass("new") is not None


def test_max_entries_prunes_on_close(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP, max_entries=2) as cache:
        for index in range(6):
            cache.put_pass(f"p{index}", {"index": index})
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        assert len(cache) == 2


def test_transient_errors_do_not_trigger_rebuild():
    from repro.service.store import _looks_corrupt

    assert _looks_corrupt(sqlite3.DatabaseError("file is not a database"))
    assert _looks_corrupt(sqlite3.OperationalError("file is not a database"))
    assert _looks_corrupt(sqlite3.DatabaseError("database disk image is malformed"))
    assert not _looks_corrupt(sqlite3.OperationalError("database is locked"))
    assert not _looks_corrupt(sqlite3.OperationalError("unable to open database file"))


def test_corrupt_database_file_is_rebuilt(tmp_path):
    sqlite_cache_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
    sqlite_cache_path(tmp_path).write_text("this is not a database")
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        assert cache.stats.corrupt_lines == 1
        cache.put_pass("pk", {"verified": True})
        assert cache.get_pass("pk") == {"verified": True}


def test_incompatible_schema_is_rebuilt(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("pk", {"verified": True})
    connection = sqlite3.connect(sqlite_cache_path(tmp_path))
    connection.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
    connection.commit()
    connection.close()
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        assert len(cache) == 0            # rebuilt, not misread
        assert cache.summary()["schema_version"] == SCHEMA_VERSION


def test_summary_counts(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("pk", {"verified": True})
        cache.put_subgoal("sk", _subgoal())
        cache.get_pass("pk")
        summary = cache.summary()
    assert summary["backend"] == "sqlite"
    assert summary["entries_live"] == 2
    assert summary["pass_entries"] == 1
    assert summary["subgoal_entries"] == 1
    assert summary["accumulated_hits"] == 1


# --------------------------------------------------------------------------- #
# JSONL migration
# --------------------------------------------------------------------------- #
def test_migrate_jsonl_one_shot(tmp_path):
    with ProofCache(tmp_path, active_fingerprint=FP) as jsonl:
        jsonl.put_pass("pk", {"verified": True})
        jsonl.put_subgoal("sk", _subgoal())
    assert migrate_jsonl(tmp_path) == 2
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as store:
        assert store.get_pass("pk") == {"verified": True}
        assert store.get_subgoal("sk")["proved"] is True
    # The JSONL file survives (migration does not destroy the old tier).
    assert (tmp_path / "proofs.jsonl").exists()
    # Re-running migrates nothing new.
    assert migrate_jsonl(tmp_path) == 0


def test_migrate_jsonl_last_write_wins(tmp_path):
    with ProofCache(tmp_path, active_fingerprint=FP) as jsonl:
        jsonl.put_pass("pk", {"round": 1})
        jsonl.put_pass("pk", {"round": 2})
    assert migrate_jsonl(tmp_path) == 1
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as store:
        assert store.get_pass("pk") == {"round": 2}


def test_migrate_jsonl_preserves_recorded_fingerprints(tmp_path):
    stale = {"kind": "pass", "key": "old", "fp": "0" * 64, "value": {"verified": False}}
    (tmp_path / "proofs.jsonl").write_text(json.dumps(stale) + "\n")
    assert migrate_jsonl(tmp_path) == 1
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as store:
        assert store.get_pass("old") is None          # stale stays stale
        assert store.summary()["entries_stale"] == 1


def test_migrate_jsonl_replays_touch_records(tmp_path):
    """A warm session's touch records carry recency into the sqlite store —
    they are order metadata, not corruption."""
    with ProofCache(tmp_path, active_fingerprint=FP) as jsonl:
        jsonl.put_pass("a", {"n": 0})
        jsonl.put_pass("b", {"n": 1})
    with ProofCache(tmp_path, active_fingerprint=FP) as jsonl:
        jsonl.get_pass("a")               # appends a touch record for "a"
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as store:
        assert migrate_jsonl(tmp_path, store=store) == 2
        assert store.stats.corrupt_lines == 0     # touches are not corruption
        assert store.prune(1) == 1
        assert store.get_pass("a") is not None    # the hot entry survived
        assert store.get_pass("b") is None


def test_migrate_jsonl_skips_corrupt_lines(tmp_path):
    with ProofCache(tmp_path, active_fingerprint=FP) as jsonl:
        jsonl.put_pass("good", {"verified": True})
    with open(tmp_path / "proofs.jsonl", "a", encoding="utf-8") as handle:
        handle.write("not json\n")
    assert migrate_jsonl(tmp_path) == 1


def test_migrate_jsonl_without_file(tmp_path):
    assert migrate_jsonl(tmp_path) == 0


def test_existing_sqlite_rows_win_over_migrated(tmp_path):
    with ProofCache(tmp_path, active_fingerprint=FP) as jsonl:
        jsonl.put_pass("pk", {"source": "jsonl"})
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as store:
        store.put_pass("pk", {"source": "sqlite"})
        assert migrate_jsonl(tmp_path, store=store) == 0
        assert store.get_pass("pk") == {"source": "sqlite"}


def test_prune_reports_reclaimed_bytes_per_tier(tmp_path):
    from repro.telemetry.stats import load_evictions

    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        for index in range(4):
            cache.put_pass(f"p{index}", {"payload": "x" * 50, "i": index})
        evicted = cache.prune(2)
        assert evicted == 2
        assert cache.stats.proof_bytes_reclaimed > 100
        journaled = load_evictions(tmp_path)
        assert {entry["key"] for entry in journaled} == {"p0", "p1"}


def test_summary_measures_payload_bytes(tmp_path):
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        cache.put_pass("pk", {"payload": "x" * 100})
        cache.put_certificate("ck", {"cert": "y" * 50})
        summary = cache.summary()
        assert summary["payload_bytes"] > 100
        assert summary["cert_payload_bytes"] > 50


def test_migrate_carries_hit_counters_over(tmp_path):
    """The JSONL tier's accumulated hit counts must survive the one-shot
    import — LRU decisions after a migration would otherwise treat every
    hot key as never used."""
    with ProofCache(tmp_path) as cache:
        cache.put_pass("hot", {"verified": True})
        cache.put_pass("cold", {"verified": True})
    with ProofCache(tmp_path) as cache:
        cache.get_pass("hot")
        cache.get_pass("hot")
    migrated = migrate_jsonl(tmp_path)
    assert migrated == 2
    with SqliteProofCache(tmp_path) as store:
        assert store.hit_count("pass", "hot") == 2
        assert store.hit_count("pass", "cold") == 0
