"""Client-side behaviour: discovery, fallback, and the wire pass specs."""

import pytest

from repro.coupling.devices import linear_device
from repro.passes import ALL_VERIFIED_PASSES
from repro.service.client import connect, verify_with_fallback
from repro.service.protocol import (
    DaemonEndpoint,
    ProtocolError,
    make_pass_spec,
    pass_registry,
    read_state,
    resolve_pass_spec,
    write_state,
)


def test_connect_without_state_file(tmp_path):
    assert connect(tmp_path) is None


def test_connect_with_stale_state_file(tmp_path):
    # A daemon that died without cleanup: state file points at a dead port.
    write_state(tmp_path, DaemonEndpoint(
        host="127.0.0.1", port=1, token="t", pid=999999,
        backend="sqlite", cache_dir=str(tmp_path),
    ))
    assert connect(tmp_path) is None


def test_connect_with_non_http_responder(tmp_path):
    """A stale endpoint whose port got reused by a non-HTTP service must read
    as "no daemon", not crash the client."""
    import socket
    import threading

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def garbage_server():
        conn, _ = listener.accept()
        conn.recv(1024)
        conn.sendall(b"definitely not http\n")
        conn.close()

    thread = threading.Thread(target=garbage_server, daemon=True)
    thread.start()
    write_state(tmp_path, DaemonEndpoint(
        host="127.0.0.1", port=port, token="t", pid=1,
        backend="sqlite", cache_dir=str(tmp_path),
    ))
    try:
        assert connect(tmp_path, timeout=5) is None
    finally:
        listener.close()


def test_fallback_runs_in_process(tmp_path):
    classes = ALL_VERIFIED_PASSES[:2]
    report = verify_with_fallback(classes, cache_dir=str(tmp_path / "cache"),
                                  backend="sqlite")
    assert [r.pass_name for r in report.results] == [c.__name__ for c in classes]
    assert all(r.verified for r in report.results)
    assert report.stats.daemon is None             # nobody served it remotely
    assert report.stats.backend == "sqlite"
    # The fallback still warmed the shared store.
    warm = verify_with_fallback(classes, cache_dir=str(tmp_path / "cache"),
                                backend="sqlite")
    assert warm.stats.cache_hits == len(classes)


def test_cli_daemon_flag_falls_back_silently(tmp_path, capsys):
    from repro.cli import main

    import json

    assert main(["verify", "Width", "--daemon", "--backend", "sqlite",
                 "--cache-dir", str(tmp_path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["all_verified"] is True
    assert payload["engine"]["daemon"] is None


# --------------------------------------------------------------------------- #
# Pass specs
# --------------------------------------------------------------------------- #
def test_pass_spec_round_trip_plain():
    registry = pass_registry()
    cls = registry["CXCancellation"]
    spec = make_pass_spec(cls, None)
    assert spec == {"name": "CXCancellation", "coupling": None}
    resolved_cls, kwargs = resolve_pass_spec(spec, registry)
    assert resolved_cls is cls
    assert kwargs is None


def test_pass_spec_round_trip_coupling():
    registry = pass_registry()
    cls = registry["BasicSwap"]
    coupling = linear_device(4)
    spec = make_pass_spec(cls, {"coupling": coupling})
    resolved_cls, kwargs = resolve_pass_spec(spec, registry)
    assert resolved_cls is cls
    rebuilt = kwargs["coupling"]
    assert rebuilt.num_qubits == coupling.num_qubits
    assert sorted(rebuilt.edges) == sorted(coupling.edges)


def test_fallback_after_daemon_death_keeps_the_sqlite_store_warm(tmp_path):
    """A dead daemon's clients must inherit its warm sqlite store, not
    silently re-prove everything against the cold jsonl tier."""
    from repro.service.store import SqliteProofCache

    classes = ALL_VERIFIED_PASSES[:2]
    with SqliteProofCache(tmp_path) as store:     # the store the daemon banked
        pass
    # State file of a daemon that died without cleanup (kill -9).
    write_state(tmp_path, DaemonEndpoint(
        host="127.0.0.1", port=1, token="t", pid=999999,
        backend="sqlite", cache_dir=str(tmp_path),
    ))
    cold = verify_with_fallback(classes, cache_dir=str(tmp_path))
    assert cold.stats.backend == "sqlite"         # not the jsonl default
    warm = verify_with_fallback(classes, cache_dir=str(tmp_path))
    assert warm.stats.cache_hits == len(classes)
    assert warm.stats.daemon is None


def test_pass_spec_rejects_coupling_pass_without_coupling():
    """The daemon must never silently substitute its default device for a
    coupling pass the caller configured with kwargs=None."""
    registry = pass_registry()
    with pytest.raises(ProtocolError):
        make_pass_spec(registry["BasicSwap"], None)


def test_pass_spec_rejects_unshippable_kwargs():
    registry = pass_registry()
    with pytest.raises(ProtocolError):
        make_pass_spec(registry["CXCancellation"], {"mystery": object()})


def test_resolve_rejects_unknown_pass():
    with pytest.raises(ProtocolError):
        resolve_pass_spec({"name": "Nope", "coupling": None}, pass_registry())


def test_state_file_round_trip(tmp_path):
    endpoint = DaemonEndpoint(host="127.0.0.1", port=4242, token="secret",
                              pid=123, backend="sqlite", cache_dir=str(tmp_path))
    write_state(tmp_path, endpoint)
    loaded = read_state(tmp_path)
    assert loaded == endpoint
    state = (tmp_path / "daemon.json")
    assert state.stat().st_mode & 0o777 == 0o600


def test_state_file_version_mismatch_is_ignored(tmp_path):
    import json

    endpoint = DaemonEndpoint(host="127.0.0.1", port=4242, token="secret",
                              pid=123, backend="sqlite", cache_dir=str(tmp_path))
    write_state(tmp_path, endpoint)
    payload = json.loads((tmp_path / "daemon.json").read_text())
    payload["protocol_version"] = 999
    (tmp_path / "daemon.json").write_text(json.dumps(payload))
    assert read_state(tmp_path) is None


# --------------------------------------------------------------------------- #
# PassManager integration
# --------------------------------------------------------------------------- #
def test_passmanager_verify_daemon_without_daemon(tmp_path):
    """verify_daemon=True with no daemon running quietly verifies locally."""
    from repro.passes import CXCancellation
    from repro.qasm import parse_qasm
    from repro.transpiler.passmanager import PassManager

    manager = PassManager(
        [CXCancellation()], verify_first=True, verify_daemon=True,
        verify_backend="sqlite", verify_cache_dir=str(tmp_path),
    )
    circuit = parse_qasm(
        'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\n'
        "cx q[0],q[1];\ncx q[0],q[1];\n"
    )
    compiled = manager.run(circuit)
    assert compiled.size() == 0            # the pair cancelled
    # The local fallback populated the shared sqlite store.
    from repro.service.store import SqliteProofCache

    with SqliteProofCache(tmp_path) as store:
        assert store.summary()["pass_entries"] >= 1
