"""The solver choice travels the daemon wire (protocol v3)."""

import threading

import pytest

from repro.passes import CXCancellation, Depth
from repro.service.client import DaemonClient, verify_with_fallback
from repro.service.daemon import ProofDaemon, VerificationService
from repro.service.protocol import ProtocolError, make_pass_spec


@pytest.fixture()
def daemon(tmp_path):
    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.close()


def test_daemon_discharges_with_the_requested_solver(daemon):
    client = DaemonClient(daemon.endpoint)
    specs = [make_pass_spec(cls, None) for cls in (CXCancellation, Depth)]
    results, stats = client.verify_specs(specs, solver="bounded")
    assert stats.solver == "bounded"
    assert all(result.verified for result in results)
    # Same passes under the default solver: separate cache keys, same verdicts.
    results_builtin, stats_builtin = client.verify_specs(specs)
    assert stats_builtin.solver == "builtin"
    assert stats_builtin.cache_misses == 2
    # And a warm repeat per solver is served from the shared store.
    _, warm = client.verify_specs(specs, solver="bounded")
    assert warm.cache_hits == 2


def test_unusable_solver_is_a_protocol_error(daemon):
    client = DaemonClient(daemon.endpoint)
    specs = [make_pass_spec(Depth, None)]
    with pytest.raises(ProtocolError):
        client.verify_specs(specs, solver="no-such-backend")


def test_verify_with_fallback_threads_the_solver(daemon, tmp_path):
    report = verify_with_fallback([Depth], cache_dir=str(tmp_path),
                                  solver="bounded")
    assert report.stats.daemon is not None
    assert report.stats.solver == "bounded"
    # No daemon (fresh dir): the in-process fallback keeps the choice.
    fallback = verify_with_fallback([Depth], cache_dir=str(tmp_path / "none"),
                                    solver="bounded")
    assert fallback.stats.daemon is None
    assert fallback.stats.solver == "bounded"
