"""Concurrent access to the shared sqlite store.

Two shapes of concurrency, both from genuinely separate processes:

* raw store clients hammering one database (writes interleave, hit counters
  accumulate exactly, nothing corrupts);
* two full ``repro verify`` CLI clients sharing one store (the ISSUE's
  acceptance scenario: both complete with correct verdicts).
"""

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

from repro.service.store import SqliteProofCache

FP = "a" * 64
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _writer(directory, worker_id, entries, reads):
    cache = SqliteProofCache(directory, active_fingerprint=FP)
    try:
        for index in range(entries):
            cache.put_pass(f"w{worker_id}-p{index}", {"worker": worker_id, "index": index})
        cache.put_pass("shared", {"worker": worker_id})
        for _ in range(reads):
            assert cache.get_pass("shared") is not None
    finally:
        cache.close()


def test_many_processes_share_one_store(tmp_path):
    workers, entries, reads = 4, 25, 10
    processes = [
        multiprocessing.Process(target=_writer, args=(tmp_path, worker_id, entries, reads))
        for worker_id in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    with SqliteProofCache(tmp_path, active_fingerprint=FP) as cache:
        # Every private entry survived, plus the contended shared key.
        assert len(cache) == workers * entries + 1
        for worker_id in range(workers):
            for index in range(entries):
                assert cache.get_pass(f"w{worker_id}-p{index}") == {
                    "worker": worker_id, "index": index,
                }
        # Hit counters accumulated in the database are exact: every read by
        # every process after its own put was a hit.
        assert cache.hit_count("pass", "shared") == workers * reads


def _run_verify(cache_dir, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "verify",
         "CXCancellation", "Width", "RemoveBarriers", "CommutationAnalysis",
         "--backend", "sqlite", "--cache-dir", str(cache_dir),
         "--format", "json", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
    )


def test_two_concurrent_cli_clients_share_one_sqlite_store(tmp_path):
    """The acceptance scenario: concurrent verifiers, one store, correct verdicts."""
    first = _run_verify(tmp_path)
    second = _run_verify(tmp_path)
    outputs = []
    for process in (first, second):
        stdout, stderr = process.communicate(timeout=180)
        assert process.returncode == 0, stderr.decode()
        outputs.append(json.loads(stdout.decode()))
    for payload in outputs:
        assert payload["summary"]["total"] == 4
        assert payload["summary"]["all_verified"] is True
        assert payload["engine"]["backend"] == "sqlite"
    # Whatever the interleaving, the union of work covers the suite and a
    # third client is then served entirely warm.
    third = _run_verify(tmp_path)
    stdout, _ = third.communicate(timeout=180)
    warm = json.loads(stdout.decode())
    assert warm["summary"]["all_verified"] is True
    assert warm["engine"]["cache_hits"] == 4
    assert warm["engine"]["cache_misses"] == 0
