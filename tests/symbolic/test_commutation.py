"""The commutation relation used by the commutation passes (Section 7.2)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QCircuit
from repro.circuit.gates import TRANSITIVE_COMMUTATION_GATE_SET, gate_spec
from repro.linalg import circuits_equivalent
from repro.symbolic import commutation_is_transitive_on, gates_commute

#: A pool of gates (name, params) used for exhaustive commutation checks.
_POOL = [
    ("x", ()), ("y", ()), ("z", ()), ("h", ()), ("s", ()), ("t", ()),
    ("rz", (0.37,)), ("rx", (0.59,)), ("u1", (1.21,)),
    ("cx", ()), ("cz", ()), ("swap", ()),
]


def _placements(name, params, num_qubits=3):
    arity = gate_spec(name).num_qubits
    for qubits in itertools.permutations(range(num_qubits), arity):
        yield Gate(name, qubits, params)


def _dense_commute(first: Gate, second: Gate, num_qubits: int = 3) -> bool:
    forward = QCircuit(num_qubits, gates=[first, second])
    backward = QCircuit(num_qubits, gates=[second, first])
    return circuits_equivalent(forward, backward)


def test_gates_commute_is_sound_against_the_dense_oracle():
    """Whenever gates_commute says yes, swapping the pair preserves semantics."""
    gates = [g for name, params in _POOL for g in _placements(name, params)]
    positives = 0
    for first, second in itertools.combinations(gates, 2):
        if gates_commute(first, second):
            positives += 1
            assert _dense_commute(first, second), (first, second)
    assert positives > 100


def test_disjoint_gates_always_commute():
    assert gates_commute(Gate("h", (0,)), Gate("x", (1,)))
    assert gates_commute(Gate("cx", (0, 1)), Gate("cz", (2, 3)))


def test_diagonal_gates_commute_with_each_other():
    assert gates_commute(Gate("z", (0,)), Gate("cz", (0, 1)))
    assert gates_commute(Gate("t", (0,)), Gate("u1", (0,), (0.4,)))
    assert gates_commute(Gate("rz", (0,), (0.3,)), Gate("z", (0,)))


def test_cx_commutes_through_control_and_target_appropriately():
    cx = Gate("cx", (0, 1))
    assert gates_commute(Gate("z", (0,)), cx)        # Z on the control
    assert gates_commute(Gate("x", (1,)), cx)        # X on the target
    assert not gates_commute(Gate("x", (0,)), cx)    # X on the control
    assert not gates_commute(Gate("z", (1,)), cx)    # Z on the target
    assert not gates_commute(Gate("h", (0,)), cx)


def test_commutation_is_symmetric():
    pairs = [
        (Gate("z", (0,)), Gate("cx", (0, 1))),
        (Gate("h", (0,)), Gate("cx", (0, 1))),
        (Gate("x", (1,)), Gate("cz", (0, 1))),
    ]
    for first, second in pairs:
        assert gates_commute(first, second) == gates_commute(second, first)


def test_conditioned_gates_do_not_commute_freely():
    conditioned = Gate("z", (0,)).c_if(0, 1)
    assert not gates_commute(conditioned, Gate("cx", (0, 1)))


def test_measurements_and_resets_block_commutation():
    measure = Gate("measure", (0,), clbits=(0,))
    assert not gates_commute(measure, Gate("z", (0,)))
    assert not gates_commute(Gate("reset", (0,)), Gate("x", (0,)))


def test_the_restricted_gate_set_is_transitive():
    """The Section 7.2 fix: commutation is transitive on the restricted set."""
    assert commutation_is_transitive_on(TRANSITIVE_COMMUTATION_GATE_SET)


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(_POOL),
    st.sampled_from(_POOL),
    st.integers(min_value=0, max_value=5),
)
def test_commutation_never_claims_a_false_positive(first_entry, second_entry, seed):
    """Property: gates_commute(a, b) implies the dense matrices commute."""
    import random

    rng = random.Random(seed)
    first = rng.choice(list(_placements(*first_entry)))
    second = rng.choice(list(_placements(*second_entry)))
    if gates_commute(first, second):
        assert _dense_commute(first, second)
