"""Tests for the rewrite rules, commutation table, and equivalence engine."""

import math

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QCircuit, random_circuit
from repro.linalg import circuits_equivalent, circuits_equivalent_up_to_permutation
from repro.symbolic import (
    cancels_with,
    check_commutation_table,
    check_rules,
    circuits_equivalent_symbolically,
    conforms_to_coupling,
    default_circuit_rules,
    equivalent,
    equivalent_up_to_swaps,
    gates_commute,
    merge_rotations,
    normal_form,
    rewrite_qubit_term,
    strip_diagonal_before_measure,
    strip_final_measurements,
    strip_initial_resets,
)
from repro.symbolic.qubit_semantics import app2q, apply_circuit, initial_register

from tests.conftest import circuit_strategy


# --------------------------------------------------------------------------- #
# Rule soundness (the role of the paper's Coq proofs)
# --------------------------------------------------------------------------- #
def test_all_default_rules_are_sound():
    report = check_rules()
    assert report.all_sound, report.failures
    assert report.checked >= 20


def test_rule_set_covers_the_three_paper_classes():
    kinds = {rule.kind for rule in default_circuit_rules()}
    assert {"cancellation", "commutativity", "swap"} <= kinds


def test_commutation_table_is_sound():
    report = check_commutation_table()
    assert report.all_sound, report.failures[:5]
    assert report.checked > 500


def test_commutation_conservative_on_conditioned_gates():
    conditioned = Gate("z", (0,)).c_if(0, 1)
    assert not gates_commute(conditioned, Gate("cx", (0, 1)))
    assert not gates_commute(Gate("measure", (0,), clbits=(0,)), Gate("z", (0,)))


# --------------------------------------------------------------------------- #
# Local rewrites
# --------------------------------------------------------------------------- #
def test_cancels_with_pairs():
    assert cancels_with(Gate("cx", (0, 1)), Gate("cx", (0, 1)))
    assert cancels_with(Gate("s", (0,)), Gate("sdg", (0,)))
    assert cancels_with(Gate("rz", (0,), (0.4,)), Gate("rz", (0,), (-0.4,)))
    assert not cancels_with(Gate("cx", (0, 1)), Gate("cx", (1, 0)))
    assert not cancels_with(Gate("h", (0,)), Gate("h", (1,)))
    assert not cancels_with(Gate("x", (0,)).c_if(0, 1), Gate("x", (0,)))


def test_merge_rotations():
    merged = merge_rotations(Gate("rz", (0,), (0.3,)), Gate("rz", (0,), (0.5,)))
    assert merged is not None and merged.params[0] == pytest.approx(0.8)
    assert merge_rotations(Gate("rz", (0,), (0.3,)), Gate("rx", (0,), (0.5,))) is None


def test_normal_form_cancels_and_merges():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.z(0)          # commutes through the CX control
    circuit.cx(0, 1)
    circuit.rz(0.4, 1)
    circuit.rz(-0.4, 1)
    result = normal_form(circuit.gates)
    assert [g.name for g in result] == ["h", "z"]


@settings(max_examples=30, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=12))
def test_normal_form_preserves_semantics(circuit):
    """Every rewrite the normaliser performs is semantics-preserving."""
    reduced = QCircuit(circuit.num_qubits, gates=normal_form(circuit.gates))
    assert circuits_equivalent(circuit, reduced)


@settings(max_examples=25, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=8))
def test_equivalence_engine_never_claims_false_positives(circuit):
    """If the engine says two random circuits are equivalent, the oracle agrees."""
    other = random_circuit(3, 6, seed=circuit.size())
    if equivalent(circuit.gates, other.gates):
        assert circuits_equivalent(circuit, other)


def test_equivalent_detects_inserted_cancelling_pair():
    base = random_circuit(3, 10, seed=1)
    padded = QCircuit(3)
    for index, gate in enumerate(base):
        padded.append(gate)
        if index == 4:
            padded.cx(0, 2)
            padded.cx(0, 2)
    assert equivalent(base.gates, padded.gates)


def test_equivalent_rejects_real_difference():
    a = QCircuit(2)
    a.h(0)
    b = QCircuit(2)
    b.x(0)
    assert not equivalent(a.gates, b.gates)


# --------------------------------------------------------------------------- #
# Measurement / reset aware helpers
# --------------------------------------------------------------------------- #
def test_strip_final_measurements():
    circuit = QCircuit(2, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.x(1)
    circuit.measure(1, 1)
    stripped = strip_final_measurements(circuit.gates)
    assert [g.name for g in stripped] == ["h", "x"]
    # A measurement followed by more gates on the same qubit is kept.
    circuit2 = QCircuit(1, 1)
    circuit2.measure(0, 0)
    circuit2.x(0)
    assert [g.name for g in strip_final_measurements(circuit2.gates)] == ["measure", "x"]


def test_strip_initial_resets():
    circuit = QCircuit(2)
    circuit.reset(0)
    circuit.h(0)
    circuit.reset(0)
    stripped = strip_initial_resets(circuit.gates)
    assert [g.name for g in stripped] == ["h", "reset"]


def test_strip_diagonal_before_measure():
    circuit = QCircuit(1, 1)
    circuit.t(0)
    circuit.rz(0.3, 0)
    circuit.measure(0, 0)
    stripped = strip_diagonal_before_measure(circuit.gates)
    assert [g.name for g in stripped] == ["measure"]
    # An H before the measurement is not removable.
    circuit2 = QCircuit(1, 1)
    circuit2.h(0)
    circuit2.measure(0, 0)
    assert [g.name for g in strip_diagonal_before_measure(circuit2.gates)] == ["h", "measure"]


# --------------------------------------------------------------------------- #
# Swap handling (routing obligations)
# --------------------------------------------------------------------------- #
def test_equivalent_up_to_swaps_and_oracle_agree():
    original = QCircuit(3)
    original.h(0)
    original.cx(0, 2)
    original.cx(0, 1)
    routed = QCircuit(3)
    routed.h(0)
    routed.swap(1, 2)
    routed.cx(0, 1)
    routed.cx(0, 2)
    report = equivalent_up_to_swaps(original.gates, routed.gates, 3)
    assert report.equivalent
    assert circuits_equivalent_up_to_permutation(original, routed, report.permutation)


def test_equivalent_up_to_swaps_with_initial_layout():
    original = QCircuit(2)
    original.cx(0, 1)
    routed = QCircuit(3)
    routed.cx(2, 1)
    report = equivalent_up_to_swaps(original.gates, routed.gates, 3, initial_layout=[2, 1])
    assert report.equivalent


def test_conforms_to_coupling():
    from repro.coupling import linear_device

    cm = linear_device(3)
    good = QCircuit(3)
    good.cx(0, 1)
    good.cx(2, 1)
    bad = QCircuit(3)
    bad.cx(0, 2)
    assert conforms_to_coupling(good.gates, cm)
    assert not conforms_to_coupling(bad.gates, cm)


# --------------------------------------------------------------------------- #
# Qubit-term symbolic execution (Section 5)
# --------------------------------------------------------------------------- #
def test_symbolic_register_execution_builds_app_terms():
    register = initial_register(3)
    final = apply_circuit(QCircuit(3, gates=[Gate("h", (0,)), Gate("cx", (0, 1))]).gates, register)
    assert final[2] is register[2]
    assert final[0].op == "app2q"
    assert final[1].op == "app2q"


def test_swap_rule_rewrites_to_operand_exchange():
    register = initial_register(2)
    final = apply_circuit([Gate("swap", (0, 1))], register)
    assert rewrite_qubit_term(final[0]) is register[1]
    assert rewrite_qubit_term(final[1]) is register[0]


def test_qubit_level_cx_cancellation():
    assert circuits_equivalent_symbolically(
        [Gate("cx", (0, 1)), Gate("cx", (0, 1))], [], 2
    )
    assert not circuits_equivalent_symbolically([Gate("cx", (0, 1))], [], 2)


def test_qubit_level_mixed_cancellations():
    circuit = [
        Gate("h", (0,)), Gate("h", (0,)),
        Gate("s", (1,)), Gate("sdg", (1,)),
        Gate("swap", (1, 2)), Gate("swap", (1, 2)),
    ]
    assert circuits_equivalent_symbolically(circuit, [], 3)
