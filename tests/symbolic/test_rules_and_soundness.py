"""The rewrite-rule set (Section 5) and its numeric soundness checks."""

import pytest

from repro.circuit import Gate, QCircuit
from repro.linalg import circuits_equivalent
from repro.symbolic import (
    CANCELLATION,
    CANCELLATION_GATES,
    COMMUTATIVITY,
    MERGE,
    SWAP,
    CircuitRule,
    check_commutation_table,
    check_rule,
    check_rules,
    default_circuit_rules,
)


def test_the_default_rule_set_has_about_twenty_rules():
    rules = default_circuit_rules()
    assert 20 <= len(rules) <= 25
    names = [rule.name for rule in rules]
    assert len(names) == len(set(names)), "rule names must be unique"


def test_rule_set_covers_all_four_families():
    kinds = {rule.kind for rule in default_circuit_rules()}
    assert kinds == {CANCELLATION, COMMUTATIVITY, SWAP, MERGE}


def test_every_default_rule_is_sound_on_its_own_register():
    for rule in default_circuit_rules():
        assert check_rule(rule, embed_qubits=0), rule.name


def test_every_default_rule_is_sound_when_embedded():
    """The paper's lemma: local equivalence extends to larger registers."""
    for rule in default_circuit_rules():
        assert check_rule(rule, embed_qubits=2), rule.name


def test_check_rules_reports_no_failures():
    report = check_rules(embed_qubits=1)
    assert report.all_sound
    assert report.checked == len(default_circuit_rules())
    assert report.failures == []


def test_an_unsound_rule_is_detected():
    bogus = CircuitRule(
        "h_equals_x", CANCELLATION, (Gate("h", (0,)),), (Gate("x", (0,)),), 1,
        "deliberately wrong",
    )
    assert not check_rule(bogus)
    report = check_rules([bogus])
    assert not report.all_sound
    assert any("h_equals_x" in failure for failure in report.failures)


def test_an_unsound_embedding_is_detected():
    """A rule can only hold locally if it also holds on wider registers."""
    # cx(0,1);cx(1,0) is NOT the identity -- make sure the checker notices.
    bogus = CircuitRule(
        "cx_reversed_cancel", CANCELLATION,
        (Gate("cx", (0, 1)), Gate("cx", (1, 0))), (), 2, "wrong",
    )
    assert not check_rule(bogus)


def test_cancellation_gates_really_cancel():
    """Every name advertised in CANCELLATION_GATES has an inverse partner rule."""
    from repro.circuit.gates import gate_spec, inverse_gate, is_self_inverse

    for name in sorted(CANCELLATION_GATES):
        spec = gate_spec(name)
        qubits = tuple(range(spec.num_qubits))
        gate = Gate(name, qubits)
        circuit = QCircuit(spec.num_qubits)
        circuit.append(gate)
        circuit.append(inverse_gate(gate))
        empty = QCircuit(spec.num_qubits)
        assert circuits_equivalent(circuit, empty), name
        if is_self_inverse(name):
            doubled = QCircuit(spec.num_qubits, gates=[gate, gate])
            assert circuits_equivalent(doubled, empty), name


def test_commutation_table_is_sound():
    report = check_commutation_table()
    assert report.all_sound
    assert report.checked > 100


def test_commutation_table_with_custom_gate_set():
    report = check_commutation_table(gate_names=("x", "z", "cx"), num_qubits=2)
    assert report.all_sound
    assert report.checked > 0


@pytest.mark.parametrize("kind,minimum", [
    (CANCELLATION, 8),
    (COMMUTATIVITY, 5),
    (SWAP, 2),
    (MERGE, 2),
])
def test_each_family_has_enough_rules(kind, minimum):
    rules = [rule for rule in default_circuit_rules() if rule.kind == kind]
    assert len(rules) >= minimum


def test_swap_rules_express_relabelling():
    """The swap rules of Figure 7: a swap moves later gates to the other wire."""
    swap_rules = [rule for rule in default_circuit_rules() if rule.kind == SWAP]
    for rule in swap_rules:
        left = QCircuit(rule.num_qubits, gates=list(rule.lhs))
        right = QCircuit(rule.num_qubits, gates=list(rule.rhs))
        assert circuits_equivalent(left, right), rule.name
