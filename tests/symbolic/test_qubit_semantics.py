"""Symbolic execution of quantum circuits (the app/app1q/app2q layer)."""

from repro.circuit import Gate
from repro.symbolic import (
    app1q,
    app2q,
    apply_circuit,
    apply_gate,
    circuits_equivalent_symbolically,
    initial_register,
    registers_equal,
    rewrite_qubit_term,
)


def test_initial_register_is_fresh_variables():
    register = initial_register(3)
    assert len(register) == 3
    assert len(set(register)) == 3


def test_apply_1q_gate_only_touches_its_operand():
    register = initial_register(3)
    h = Gate("h", (1,))
    result = apply_gate(h, register)
    assert result[0] is register[0]
    assert result[2] is register[2]
    assert result[1] is app1q(h, register[1])
    assert result[1] is not register[1]


def test_apply_2q_gate_touches_both_operands():
    register = initial_register(3)
    cx = Gate("cx", (0, 2))
    result = apply_gate(cx, register)
    assert result[1] is register[1]
    assert result[0] is app2q(cx, register[0], register[2], 1)
    assert result[2] is app2q(cx, register[0], register[2], 2)


def test_ghz_symbolic_execution_matches_the_papers_example():
    """The Section 5 GHZ example: nested app1q/app2q terms."""
    register = initial_register(3)
    gates = [Gate("h", (0,)), Gate("cx", (0, 1)), Gate("cx", (1, 2))]
    q0, q1, q2 = apply_circuit(gates, register)
    h_q0 = app1q(gates[0], register[0])
    first_cx_1 = app2q(gates[1], h_q0, register[1], 1)
    first_cx_2 = app2q(gates[1], h_q0, register[1], 2)
    assert q0 is first_cx_1
    assert q1 is app2q(gates[2], first_cx_2, register[2], 1)
    assert q2 is app2q(gates[2], first_cx_2, register[2], 2)


def test_cx_cancellation_rewrites_to_the_identity():
    register = initial_register(2)
    gates = [Gate("cx", (0, 1)), Gate("cx", (0, 1))]
    result = apply_circuit(gates, register)
    assert rewrite_qubit_term(result[0]) is register[0]
    assert rewrite_qubit_term(result[1]) is register[1]
    assert registers_equal(result, register)


def test_h_pair_and_s_sdg_pair_cancel():
    register = initial_register(1)
    for pair in ([Gate("h", (0,)), Gate("h", (0,))],
                 [Gate("s", (0,)), Gate("sdg", (0,))]):
        result = apply_circuit(pair, register)
        assert registers_equal(result, register)


def test_swap_rule_relabels_the_register():
    """app2q(SWAP, q1, q2, 1) == q2 and ... 2) == q1 (the Figure 7 swap rules)."""
    register = initial_register(2)
    swapped = apply_gate(Gate("swap", (0, 1)), register)
    assert rewrite_qubit_term(swapped[0]) is register[1]
    assert rewrite_qubit_term(swapped[1]) is register[0]


def test_double_swap_is_the_identity_symbolically():
    register = initial_register(3)
    gates = [Gate("swap", (0, 2)), Gate("swap", (0, 2))]
    assert registers_equal(apply_circuit(gates, register), register)


def test_circuits_equivalent_symbolically_positive():
    original = [Gate("h", (0,)), Gate("cx", (0, 1)), Gate("cx", (0, 1)), Gate("x", (1,))]
    optimised = [Gate("h", (0,)), Gate("x", (1,))]
    assert circuits_equivalent_symbolically(original, optimised, 2)


def test_circuits_equivalent_symbolically_negative():
    left = [Gate("h", (0,))]
    right = [Gate("x", (0,))]
    assert not circuits_equivalent_symbolically(left, right, 1)


def test_symbolic_equivalence_scales_to_wide_registers():
    """No exponential blow-up: 64 qubits with a cancelling CX ladder."""
    num_qubits = 64
    original = []
    for q in range(num_qubits - 1):
        original.append(Gate("cx", (q, q + 1)))
        original.append(Gate("cx", (q, q + 1)))
    assert circuits_equivalent_symbolically(original, [], num_qubits)


def test_routed_circuit_equivalence_via_swap_rules():
    """Routing's swap insertions are invisible after the swap rules fire."""
    original = [Gate("cx", (0, 2))]
    routed = [Gate("swap", (1, 2)), Gate("cx", (0, 1)), Gate("swap", (1, 2))]
    assert circuits_equivalent_symbolically(original, routed, 3)
