"""Tests for the mini-SMT substrate: terms, congruence closure, contexts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.smt import (
    CongruenceClosure,
    Context,
    Rule,
    app,
    eq,
    instantiate_rules,
    lit,
    match_pattern,
    ne,
    var,
)


# --------------------------------------------------------------------------- #
# Terms
# --------------------------------------------------------------------------- #
def test_terms_are_hash_consed():
    a1 = app("f", app("a"), sort="Qubit")
    a2 = app("f", app("a"), sort="Qubit")
    assert a1 is a2
    assert a1 is not app("f", app("b"))


def test_variables_and_substitution():
    x = var("x")
    term = app("f", x, app("g", x))
    assert term.variables() == [x]
    ground = term.substitute({x: app("a")})
    assert ground.variables() == []
    assert repr(ground) == "f(a, g(a))"


def test_rule_rejects_unbound_rhs_variables():
    with pytest.raises(SolverError):
        Rule("bad", app("f", var("x")), var("y"))


# --------------------------------------------------------------------------- #
# Congruence closure
# --------------------------------------------------------------------------- #
def test_congruence_propagates_through_functions():
    closure = CongruenceClosure()
    a, b, c = app("a"), app("b"), app("c")
    closure.merge(a, b)
    assert closure.equal(app("f", a), app("f", b))
    assert not closure.equal(app("f", a), app("f", c))
    closure.merge(b, c)
    assert closure.equal(app("f", a), app("f", c))


def test_transitivity_chain():
    closure = CongruenceClosure()
    terms = [app(f"t{i}") for i in range(10)]
    for first, second in zip(terms, terms[1:]):
        closure.merge(first, second)
    assert closure.equal(terms[0], terms[-1])


def test_nested_congruence():
    closure = CongruenceClosure()
    a, b = app("a"), app("b")
    closure.merge(a, b)
    assert closure.equal(app("f", app("g", a)), app("f", app("g", b)))


def test_inconsistency_detection():
    closure = CongruenceClosure()
    a, b = app("a"), app("b")
    closure.assert_disequal(a, b)
    assert not closure.inconsistent()
    closure.merge(a, b)
    assert closure.inconsistent()


def test_distinct_literals_conflict():
    closure = CongruenceClosure()
    closure.merge(lit(1), lit(2))
    assert closure.inconsistent()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=12))
def test_closure_matches_naive_union_find(pairs):
    """Congruence closure on constants behaves like plain union-find."""
    closure = CongruenceClosure()
    parent = list(range(9))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    constants = [app(f"c{i}") for i in range(9)]
    for a, b in pairs:
        closure.merge(constants[a], constants[b])
        parent[find(a)] = find(b)
    for i in range(9):
        for j in range(9):
            assert closure.equal(constants[i], constants[j]) == (find(i) == find(j))


# --------------------------------------------------------------------------- #
# E-matching and the context
# --------------------------------------------------------------------------- #
def test_match_pattern_binds_variables():
    closure = CongruenceClosure()
    target = app("f", app("a"), app("b"))
    closure.add_term(target)
    x, y = var("x"), var("y")
    matches = list(match_pattern(app("f", x, y), target, closure))
    assert len(matches) == 1
    assert matches[0][x] is app("a")


def test_instantiate_rules_reaches_fixed_point():
    closure = CongruenceClosure()
    q = var("Q")
    rule = Rule("collapse", app("f", app("f", q)), q)
    start = app("f", app("f", app("f", app("f", app("c")))))
    closure.add_term(start)
    instantiate_rules([rule], closure)
    assert closure.equal(start, app("c"))


def test_context_paper_example_p6_p7_imply_g3():
    """The Section 6 derivation: P6 and P7 imply G3."""
    q = var("Q", "Circuit")
    p6 = Rule("P6", app("CX", app("C1", q)), app("C1", app("CX", q)))
    p7 = Rule("P7", app("CX", app("CX", q)), q)
    context = Context(rules=[p6, p7])
    q_prime = app("Qprime", sort="Circuit")
    goal = eq(app("CX", app("C1", app("CX", q_prime))), app("C1", q_prime))
    assert context.check(goal).proved
    # Without the cancellation rule the goal must not be provable.
    assert not Context(rules=[p6]).check(goal).proved


def test_context_assumptions_and_push_pop():
    context = Context()
    a, b, c = app("a"), app("b"), app("c")
    context.assume_equal(app("f", a), b)
    context.assume_equal(a, c)
    assert context.check(eq(app("f", c), b)).proved
    context.push()
    context.assume_equal(b, c)
    assert context.check(eq(app("f", c), c)).proved
    context.pop()
    assert not context.check(eq(b, c)).proved
    with pytest.raises(SolverError):
        context.pop()


def test_context_contradictory_assumptions_prove_anything():
    context = Context()
    context.assume(ne(app("a"), app("a")))
    context.assume_equal(app("a"), app("a"))
    # a != a together with a == a is inconsistent, so any goal follows.
    assert context.check(eq(app("x"), app("y"))).proved


def test_check_reports_failed_atom():
    context = Context()
    result = context.check(eq(app("a"), app("b")))
    assert not result.proved
    assert result.failed_atom is not None
