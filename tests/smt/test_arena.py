"""The slot-arena term store: interning, stats, reset hooks, pickling."""

import pickle
import sys

import pytest

from repro.smt.arena import (
    ArenaCongruenceClosure,
    TermArena,
    global_arena,
    kernel_stats,
    reset_kernel_counters,
)
from repro.smt.congruence import CongruenceClosure
from repro.smt.terms import QUBIT, app, lit, reset_interning, var


# --------------------------------------------------------------------------- #
# Interning
# --------------------------------------------------------------------------- #
def test_interning_is_hash_consed_and_counted():
    arena = TermArena()
    term = app("f", var("x", QUBIT), lit(1, QUBIT), sort=QUBIT)
    first = arena.intern_term(term)
    assert arena.stats["misses"] == 3  # f-node, variable, literal
    assert arena.stats["hits"] == 0
    # Same term again: the term_id memo answers without touching _node.
    assert arena.intern_term(term) == first
    # A structurally overlapping term re-conses only the new node.
    wrapped = app("g", term, sort=QUBIT)
    arena.intern_term(wrapped)
    assert arena.stats["misses"] == 4
    assert len(arena) == 4


def test_interned_columns_describe_the_node():
    arena = TermArena()
    one = lit(1, QUBIT)
    term = app("f", var("x", QUBIT), one, sort=QUBIT)
    nid = arena.intern_term(term)
    assert arena.terms[nid] is term
    assert not arena.is_literal(nid)
    assert arena.is_literal(arena.intern_term(one))
    children = list(arena.args_of(nid))
    assert [arena.terms[child] for child in children] == list(term.args)


def test_postorder_lists_children_before_parents():
    arena = TermArena()
    x = var("x", QUBIT)
    inner = app("g", x, sort=QUBIT)
    outer = app("f", inner, inner, sort=QUBIT)
    nid = arena.intern_term(outer)
    order = arena.postorder(nid)
    positions = {node: index for index, node in enumerate(order)}
    assert len(order) == 3  # shared subterm appears once
    assert positions[arena.intern_term(x)] < positions[arena.intern_term(inner)]
    assert positions[arena.intern_term(inner)] < positions[nid]


# --------------------------------------------------------------------------- #
# Reset hooks and kernel counters
# --------------------------------------------------------------------------- #
def test_reset_interning_clears_the_global_arena():
    term = app("f", var("x", QUBIT), sort=QUBIT)
    arena = global_arena()
    arena.intern_term(term)
    assert len(arena) > 0
    before = kernel_stats()["resets"]
    reset_interning()
    assert len(global_arena()) == 0
    assert kernel_stats()["interned_nodes"] == 0
    assert kernel_stats()["resets"] == before + 1


def test_closure_ops_fold_into_kernel_counters():
    reset_kernel_counters()
    closure = ArenaCongruenceClosure()
    a, b = var("a", QUBIT), var("b", QUBIT)
    closure.merge(a, b)
    assert closure.equal(a, b)
    assert closure.union_ops >= 1
    assert closure.find_ops >= 2
    closure.fold_counters()
    stats = kernel_stats()
    assert stats["union_ops"] >= 1
    assert stats["find_ops"] >= 2
    assert stats["closures"] == 1
    # Folding is idempotent: the instance counters were consumed.
    closure.fold_counters()
    assert kernel_stats()["closures"] == 1


def test_kernel_stats_shape():
    stats = kernel_stats()
    assert set(stats) == {"interned_nodes", "intern_hits", "intern_misses",
                          "find_ops", "union_ops", "closures", "resets"}
    assert all(isinstance(value, int) for value in stats.values())


# --------------------------------------------------------------------------- #
# Pickling round-trips
# --------------------------------------------------------------------------- #
def test_terms_pickle_through_the_arena_boundary():
    term = app("f", var("x", QUBIT), lit(1, QUBIT), sort=QUBIT)
    nid = global_arena().intern_term(term)
    clone = pickle.loads(pickle.dumps(term))
    # Unpickling re-interns: same object, same arena node.
    assert clone is term
    assert global_arena().intern_term(clone) == nid


def test_closure_equalities_survive_worker_style_pickling():
    """Rules/terms ship to workers by pickle; a closure rebuilt from the
    pickled terms must reach the same conclusions."""
    x, y = var("x", QUBIT), var("y", QUBIT)
    fx, fy = app("f", x, sort=QUBIT), app("f", y, sort=QUBIT)
    shipped = pickle.loads(pickle.dumps((x, y, fx, fy)))
    closure = ArenaCongruenceClosure()
    closure.add_term(shipped[2])
    closure.add_term(shipped[3])
    closure.merge(shipped[0], shipped[1])
    assert closure.equal(shipped[2], shipped[3])  # congruence fired
    assert closure.equal(fx, fy)  # the originals are the same objects


# --------------------------------------------------------------------------- #
# Drop-in behaviour vs the object kernel
# --------------------------------------------------------------------------- #
def _kernels():
    return [CongruenceClosure(), ArenaCongruenceClosure()]


@pytest.mark.parametrize("closure", _kernels(),
                         ids=["object", "arena"])
def test_deep_chain_beyond_the_recursion_limit(closure):
    """Registration and the merge cascade are iterative in both kernels."""
    depth = sys.getrecursionlimit() + 500
    x = var("x", QUBIT)
    term = x
    for _ in range(depth):
        term = app("f", term, sort=QUBIT)
    closure.add_term(term)
    closure.merge(x, app("f", x, sort=QUBIT))
    assert closure.equal(x, term)


def test_find_and_classes_mirror_the_object_kernel():
    x, y, z = (var(name, QUBIT) for name in "xyz")
    pairs = [(x, y)]
    banks = []
    for closure in _kernels():
        for term in (x, y, z, app("f", x, sort=QUBIT), app("f", y, sort=QUBIT)):
            closure.add_term(term)
        for left, right in pairs:
            closure.merge(left, right)
        banks.append((closure.terms(), closure.find(x), closure.classes()))
    assert banks[0][0] == banks[1][0]
    assert banks[0][1] is banks[1][1]
    assert banks[0][2] == banks[1][2]
