"""Term interning: observability, bounded reset, reload regression."""

import sys
import textwrap

from repro.smt.terms import (
    Term,
    app,
    interning_stats,
    lit,
    on_reset_interning,
    reset_interning,
    var,
)


def test_interning_stats_track_hits_and_misses():
    before = interning_stats()
    fresh = app("stats_probe", lit(("unique", before["misses"])))
    after_miss = interning_stats()
    assert after_miss["misses"] > before["misses"]
    again = app("stats_probe", lit(("unique", before["misses"])))
    assert again is fresh
    assert interning_stats()["hits"] > after_miss["hits"]
    assert interning_stats()["terms"] >= 1


def test_reset_interning_clears_the_table_and_keeps_ids_monotonic():
    old = app("reset_probe", var("x"))
    old_id = old.term_id
    dropped = reset_interning()
    assert dropped > 0
    assert interning_stats()["terms"] == 0
    assert interning_stats()["resets"] >= 1
    # A structurally equal term is a *fresh* object after the reset (the
    # stale one is no longer canonical) with a strictly newer id — the
    # eq()-normalisation order can never collide with survivors.
    fresh = app("reset_probe", var("x"))
    assert fresh is not old
    assert fresh.term_id > old_id


def test_reset_hooks_run_and_clear_solver_memos():
    calls = []
    on_reset_interning(lambda: calls.append("hook"))
    from repro.prover import resolve_solver
    from repro.smt.terms import eq

    backend = resolve_solver("builtin")
    goal = eq(app("memo_probe"), app("memo_probe"))
    backend.check(goal, [])
    assert backend._memo
    reset_interning()
    assert calls == ["hook"]
    assert not backend._memo


def test_watch_reload_resets_interning(tmp_path):
    """The regression: module reload through the watcher must not leak
    stale hash-consed terms for the watcher's lifetime."""
    from repro.incremental.watch import refresh_source_state

    module_path = tmp_path / "interning_reload_probe.py"
    module_path.write_text(textwrap.dedent("""
        VALUE = 1
    """))
    sys.path.insert(0, str(tmp_path))
    try:
        import interning_reload_probe  # noqa: F401

        app("leak_probe", lit("pre-reload"))
        table_before = len(Term._interned)
        assert table_before > 0
        resets_before = interning_stats()["resets"]
        module_path.write_text("VALUE = 2\n")
        reloaded = refresh_source_state([str(module_path)])
        assert reloaded == ["interning_reload_probe"]
        assert interning_stats()["resets"] == resets_before + 1
        assert len(Term._interned) < table_before
    finally:
        sys.path.remove(str(tmp_path))
        sys.modules.pop("interning_reload_probe", None)
