"""Differential harness: the arena kernel vs the object kernel.

The arena closure promises *operation-for-operation* determinism parity
with :class:`~repro.smt.congruence.CongruenceClosure` — not merely equal
verdicts but identical representatives, identical term banks, and
identical fired-rule certificates.  This harness drives both kernels
through hundreds of seeded random workloads (the same per-case seeding
scheme the fuzz campaign uses, :func:`repro.fuzz.generate.case_seed`) and
demands byte-identical answers everywhere.
"""

import random

import pytest

from repro.fuzz.generate import case_seed
from repro.smt.arena import ArenaCongruenceClosure
from repro.smt.congruence import CongruenceClosure
from repro.smt.solver import Context
from repro.smt.terms import QUBIT, Rule, app, eq, lit, var

BASE_SEED = 20220613  # the paper's conference date; any constant works
NUM_CLOSURE_CASES = 200
NUM_CONTEXT_CASES = 40


def _random_bank(rng: random.Random, size: int = 50):
    """A random DAG of applications over a small pool of leaves."""
    pool = [var(f"v{i}", QUBIT) for i in range(4)]
    pool += [lit(str(i), QUBIT) for i in range(3)]
    for _ in range(size):
        op = rng.choice(["f", "g", "h"])
        arity = rng.randint(1, 3)
        args = [rng.choice(pool) for _ in range(arity)]
        pool.append(app(op, *args, sort=QUBIT))
    return pool


def _drive(closure, rng: random.Random, pool):
    """One seeded workload: registrations, merges, disequalities."""
    for term in pool:
        closure.add_term(term)
    for _ in range(20):
        closure.merge(rng.choice(pool), rng.choice(pool))
    for _ in range(4):
        closure.assert_disequal(rng.choice(pool), rng.choice(pool))


@pytest.mark.parametrize("index", range(NUM_CLOSURE_CASES))
def test_closure_answers_are_identical(index):
    seed = case_seed(BASE_SEED, index)
    pool = _random_bank(random.Random(seed))
    object_kernel, arena_kernel = CongruenceClosure(), ArenaCongruenceClosure()
    _drive(object_kernel, random.Random(seed), pool)
    _drive(arena_kernel, random.Random(seed), pool)

    # Same bank, same order — the E-matching surface is unchanged.
    assert object_kernel.terms() == arena_kernel.terms()
    # Same verdict on inconsistency (asserted disequalities + literals).
    assert object_kernel.inconsistent() == arena_kernel.inconsistent()
    # Identical representatives (object identity, not mere equality)...
    for term in pool:
        assert object_kernel.find(term) is arena_kernel.find(term)
    # ...hence an identical equality matrix on a sample of pairs.
    probe = random.Random(seed ^ 0x5F5E100)
    for _ in range(60):
        left, right = probe.choice(pool), probe.choice(pool)
        assert object_kernel.equal(left, right) \
            == arena_kernel.equal(left, right)


def _random_rules_and_goal(rng: random.Random):
    """A small rewrite system plus a goal its closure may or may not reach."""
    x = var("X", QUBIT)
    rules = []
    ops = ["f", "g", "h", "k"]
    for index in range(rng.randint(2, 5)):
        lhs_op, rhs_op = rng.sample(ops, 2)
        lhs = app(lhs_op, x, sort=QUBIT)
        rhs = app(rhs_op, x, sort=QUBIT) if rng.random() < 0.7 else x
        rules.append(Rule(f"r{index}-{lhs_op}-{rhs_op}", lhs, rhs))
    leaf = var("q", QUBIT)
    left = leaf
    for _ in range(rng.randint(1, 4)):
        left = app(rng.choice(ops), left, sort=QUBIT)
    right = leaf
    for _ in range(rng.randint(0, 3)):
        right = app(rng.choice(ops), right, sort=QUBIT)
    return rules, eq(left, right)


@pytest.mark.parametrize("index", range(NUM_CONTEXT_CASES))
def test_context_certificates_are_byte_identical(index):
    """Full solver contexts agree on verdict, reason, and fired rules."""
    seed = case_seed(BASE_SEED + 1, index)
    rules, goal = _random_rules_and_goal(random.Random(seed))
    results = {}
    for kernel in ("object", "arena"):
        result = Context(rules, kernel=kernel).check(goal)
        results[kernel] = (result.proved, result.reason,
                           result.instantiations, result.rules_fired,
                           repr(result.failed_atom))
    assert repr(results["object"]) == repr(results["arena"])


def test_harness_is_not_vacuous():
    """At least some seeded contexts actually prove their goal (and some
    fail), so the byte-identity above compares real work."""
    proved = 0
    for index in range(NUM_CONTEXT_CASES):
        seed = case_seed(BASE_SEED + 1, index)
        rules, goal = _random_rules_and_goal(random.Random(seed))
        if Context(rules, kernel="arena").check(goal).proved:
            proved += 1
    assert 0 < proved < NUM_CONTEXT_CASES
