"""The mini-SMT substrate: terms, congruence closure, E-matching, contexts."""

import pytest

from repro.smt.congruence import CongruenceClosure
from repro.smt.ematch import instantiate_rules, match_pattern
from repro.smt.solver import Context
from repro.smt.terms import CIRCUIT, QUBIT, Rule, Term, app, conj, eq, lit, ne, var


# --------------------------------------------------------------------------- #
# Terms
# --------------------------------------------------------------------------- #
def test_terms_are_hash_consed():
    a1 = app("f", var("x"), lit(1))
    a2 = app("f", var("x"), lit(1))
    assert a1 is a2
    assert hash(a1) == hash(a2)


def test_distinct_terms_are_distinct_objects():
    assert app("f", var("x")) is not app("f", var("y"))
    assert lit(1) is not lit(2)
    assert var("x", QUBIT) is not var("x", CIRCUIT)


def test_variables_and_literals_classify():
    x = var("x")
    one = lit(1)
    assert x.is_var() and not x.is_literal()
    assert one.is_literal() and not one.is_var()
    assert not app("f", x).is_var()


def test_subterms_and_variables():
    x, y = var("x"), var("y")
    term = app("f", app("g", x), y)
    subterm_ops = [t.op for t in term.subterms()]
    assert subterm_ops.count("f") == 1
    assert subterm_ops.count("g") == 1
    assert set(term.variables()) == {x, y}


def test_substitute_replaces_variables():
    x, y = var("x"), var("y")
    term = app("f", x, app("g", y))
    result = term.substitute({x: lit(3), y: lit(4)})
    assert result is app("f", lit(3), app("g", lit(4)))


# --------------------------------------------------------------------------- #
# Congruence closure
# --------------------------------------------------------------------------- #
def test_congruence_closure_merges_and_finds():
    closure = CongruenceClosure()
    a, b, c = lit("a"), lit("b"), lit("c")
    for term in (a, b, c):
        closure.add_term(term)
    closure.merge(a, b)
    assert closure.equal(a, b)
    assert not closure.equal(a, c)
    closure.merge(b, c)
    assert closure.equal(a, c)


def test_congruence_propagates_through_function_symbols():
    closure = CongruenceClosure()
    a, b = lit("a"), lit("b")
    fa, fb = app("f", a), app("f", b)
    for term in (fa, fb):
        closure.add_term(term)
    assert not closure.equal(fa, fb)
    closure.merge(a, b)
    assert closure.equal(fa, fb)


def test_congruence_is_transitive_through_nested_terms():
    closure = CongruenceClosure()
    a, b, c = lit("a"), lit("b"), lit("c")
    ffa = app("f", app("f", a))
    ffc = app("f", app("f", c))
    closure.add_term(ffa)
    closure.add_term(ffc)
    closure.merge(a, b)
    closure.merge(b, c)
    assert closure.equal(ffa, ffc)


def test_disequalities_make_the_closure_inconsistent():
    closure = CongruenceClosure()
    a, b = lit("a"), lit("b")
    closure.add_term(a)
    closure.add_term(b)
    closure.assert_disequal(a, b)
    assert not closure.inconsistent()
    closure.merge(a, b)
    assert closure.inconsistent()


def test_classes_partition_the_term_bank():
    closure = CongruenceClosure()
    a, b, c = lit("a"), lit("b"), lit("c")
    for term in (a, b, c):
        closure.add_term(term)
    closure.merge(a, b)
    classes = closure.classes()
    sizes = sorted(len(members) for members in classes.values())
    assert sizes == [1, 2]


# --------------------------------------------------------------------------- #
# E-matching
# --------------------------------------------------------------------------- #
def test_match_pattern_binds_variables():
    closure = CongruenceClosure()
    target = app("f", lit(1), app("g", lit(2)))
    closure.add_term(target)
    pattern = app("f", var("X"), app("g", var("Y")))
    matches = list(match_pattern(pattern, target, closure))
    assert len(matches) == 1
    bindings = matches[0]
    assert bindings[var("X")] is lit(1)
    assert bindings[var("Y")] is lit(2)


def test_match_pattern_fails_on_mismatched_heads():
    closure = CongruenceClosure()
    target = app("h", lit(1))
    closure.add_term(target)
    assert list(match_pattern(app("f", var("X")), target, closure)) == []


def test_match_modulo_congruence():
    """Matching sees through equalities already asserted in the closure."""
    closure = CongruenceClosure()
    a, b = lit("a"), lit("b")
    target = app("f", a)
    closure.add_term(target)
    closure.add_term(app("g", b))
    closure.merge(a, app("g", b))
    pattern = app("f", app("g", var("X")))
    matches = list(match_pattern(pattern, target, closure))
    assert any(bindings[var("X")] is b for bindings in matches)


def test_instantiate_rules_reaches_a_fixed_point():
    closure = CongruenceClosure()
    x = var("X")
    # f(f(X)) -> X  (a cancellation-shaped rule)
    rule = Rule("ff_cancel", app("f", app("f", x)), x)
    start = lit("q")
    nested = app("f", app("f", app("f", app("f", start))))
    closure.add_term(nested)
    performed = instantiate_rules([rule], closure, max_rounds=6)
    # Congruence propagation may finish the job after a single explicit
    # instantiation, so only the end state is deterministic.
    assert performed >= 1
    assert closure.equal(nested, start)
    assert closure.equal(app("f", app("f", start)), start)


# --------------------------------------------------------------------------- #
# Contexts (assume / check, push / pop)
# --------------------------------------------------------------------------- #
def test_context_proves_a_ground_equality():
    # Uninterpreted constants are 0-ary applications; distinct *literals* are
    # implicitly disequal, so merging those would make the context trivial.
    context = Context()
    a, b, c, d = app("a"), app("b"), app("c"), app("d")
    context.assume_equal(a, b)
    context.assume_equal(b, c)
    assert context.check(eq(a, c)).proved
    assert not context.check(eq(a, d)).proved


def test_context_uses_quantified_rules():
    x = var("X")
    rule = Rule("ff_cancel", app("f", app("f", x)), x)
    context = Context(rules=[rule])
    q = lit("q")
    goal = eq(app("f", app("f", q)), q)
    assert context.check(goal).proved


def test_context_conjunction_goals():
    context = Context()
    a, b, c = app("a"), app("b"), app("c")
    context.assume_equal(a, b)
    assert context.check(conj(eq(a, b), eq(b, a))).proved
    assert not context.check(conj(eq(a, b), eq(a, c))).proved


def test_context_push_pop_scopes_assumptions():
    context = Context()
    a, b = app("a"), app("b")
    context.push()
    context.assume_equal(a, b)
    assert context.check(eq(a, b)).proved
    context.pop()
    assert not context.check(eq(a, b)).proved


def test_context_disequality_goals():
    # Distinct literal values are provably different without any assumptions;
    # for uninterpreted constants the solver stays conservative and refuses to
    # derive either the equality or the disequality.
    context = Context()
    assert context.check(ne(lit(1), lit(2))).proved
    a, b = app("a"), app("b")
    context.assume(ne(a, b))
    assert not context.check(eq(a, b)).proved
    assert not context.check(ne(a, b)).proved


def test_distinct_literals_are_implicitly_disequal():
    """Merging two distinct literal values makes the closure inconsistent."""
    closure = CongruenceClosure()
    one, two = lit(1), lit(2)
    closure.add_term(one)
    closure.add_term(two)
    closure.merge(one, two)
    assert closure.inconsistent()
