"""DAG circuit structure and the list<->DAG converters (property-based)."""

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QCircuit, random_circuit
from repro.dag import DAGCircuit, circuit_to_dag, dag_to_circuit
from repro.linalg import circuits_equivalent

from tests.conftest import circuit_strategy


@pytest.fixture
def diamond_circuit():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    circuit.cx(1, 2)
    circuit.t(2)
    return circuit


# --------------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(circuit_strategy(num_qubits=4, max_gates=12))
def test_roundtrip_preserves_per_qubit_gate_order(circuit):
    """circuit -> DAG -> circuit keeps every wire's gate sequence intact."""
    back = dag_to_circuit(circuit_to_dag(circuit))
    assert back.size() == circuit.size()
    for qubit in range(circuit.num_qubits):
        original_wire = [g for g in circuit if qubit in g.all_qubits]
        rebuilt_wire = [g for g in back if qubit in g.all_qubits]
        assert original_wire == rebuilt_wire


@settings(max_examples=25, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=10))
def test_roundtrip_preserves_semantics(circuit):
    back = dag_to_circuit(circuit_to_dag(circuit))
    assert circuits_equivalent(circuit, back)


# --------------------------------------------------------------------------- #
# Structure
# --------------------------------------------------------------------------- #
def test_dag_dependencies_follow_shared_qubits(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    nodes = dag.topological_nodes()
    names = [node.name for node in nodes]
    # The Hadamard must come before both CNOTs that consume qubit 0.
    assert names.index("h") < names.index("cx")
    assert dag.size() == diamond_circuit.size()
    assert dag.depth() == diamond_circuit.depth()


def test_front_layer_contains_only_independent_gates(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    front = dag.front_layer()
    assert len(front) == 1
    assert front[0].name == "h"


def test_layers_partition_the_nodes(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    layers = list(dag.layers())
    assert sum(len(layer) for layer in layers) == dag.size()
    assert len(layers) == dag.depth()


def test_successors_and_predecessors(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    h_node = next(node for node in dag.nodes() if node.name == "h")
    following = dag.descendants(h_node)
    assert all(node.name in {"cx", "t"} for node in following)
    assert dag.predecessors(h_node) == []
    assert len(dag.successors(h_node)) >= 1


def test_remove_node_shrinks_the_dag(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    size_before = dag.size()
    target = next(node for node in dag.nodes() if node.name == "t")
    dag.remove_node(target)
    assert dag.size() == size_before - 1
    assert "t" not in [node.name for node in dag.nodes()]


def test_substitute_node_replaces_with_equivalent_gates(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    h_node = next(node for node in dag.nodes() if node.name == "h")
    replacements = [
        Gate("u2", (0,), (0.0, 3.141592653589793)),
    ]
    dag.substitute_node(h_node, replacements)
    rebuilt = dag_to_circuit(dag)
    assert circuits_equivalent(diamond_circuit, rebuilt)


def test_count_ops_and_two_qubit_ops(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    assert dag.count_ops() == {"h": 1, "cx": 3, "t": 1}
    assert len(dag.two_qubit_ops()) == 3


def test_dag_copy_is_independent(diamond_circuit):
    dag = circuit_to_dag(diamond_circuit)
    clone = dag.copy()
    target = next(node for node in clone.nodes() if node.name == "t")
    clone.remove_node(target)
    assert dag.size() == diamond_circuit.size()
    assert clone.size() == diamond_circuit.size() - 1


def test_longest_path_matches_depth():
    circuit = random_circuit(4, 25, seed=5)
    dag = circuit_to_dag(circuit)
    assert len(dag.longest_path()) == dag.depth()
