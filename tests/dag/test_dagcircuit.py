"""Tests for the DAG circuit representation and converters."""

import pytest

from repro.circuit import Gate, QCircuit, ghz_circuit, random_circuit
from repro.dag import DAGCircuit, circuit_to_dag, dag_to_circuit
from repro.errors import DAGError
from repro.linalg import circuits_equivalent


def test_roundtrip_preserves_gate_order(ghz3):
    dag = circuit_to_dag(ghz3)
    back = dag_to_circuit(dag)
    assert list(back.gates) == list(ghz3.gates)


def test_roundtrip_random_circuits_semantically():
    for seed in range(3):
        circuit = random_circuit(4, 20, seed=seed)
        assert circuits_equivalent(circuit, dag_to_circuit(circuit_to_dag(circuit)))


def test_front_layer_and_layers():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.x(2)
    circuit.cx(0, 1)
    dag = circuit_to_dag(circuit)
    front_names = sorted(node.name for node in dag.front_layer())
    assert front_names == ["h", "x"]
    layers = list(dag.layers())
    assert [sorted(n.name for n in layer) for layer in layers] == [["h", "x"], ["cx"]]


def test_depth_and_size(ghz3):
    dag = circuit_to_dag(ghz3)
    assert dag.size() == 3
    assert dag.depth() == 3
    assert dag.width() == 3


def test_successors_and_predecessors():
    dag = circuit_to_dag(ghz_circuit(3))
    nodes = dag.topological_nodes()
    h_node, cx1, cx2 = nodes
    assert dag.successors(h_node) == [cx1]
    assert dag.predecessors(cx2) == [cx1]
    assert cx2 in dag.descendants(h_node)


def test_remove_node_reconnects_wires():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.x(0)
    circuit.cx(0, 1)
    dag = circuit_to_dag(circuit)
    x_node = dag.topological_nodes()[1]
    dag.remove_node(x_node)
    assert [g.name for g in dag.gates()] == ["h", "cx"]
    with pytest.raises(DAGError):
        dag.remove_node(x_node)


def test_substitute_node_replaces_with_sequence():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.swap(0, 1)
    dag = circuit_to_dag(circuit)
    swap_node = dag.topological_nodes()[1]
    dag.substitute_node(swap_node, [Gate("cx", (0, 1)), Gate("cx", (1, 0)), Gate("cx", (0, 1))])
    assert [g.name for g in dag.gates()] == ["h", "cx", "cx", "cx"]
    assert circuits_equivalent(dag_to_circuit(dag), circuit)


def test_substitute_rejects_new_qubits():
    dag = circuit_to_dag(ghz_circuit(2))
    node = dag.topological_nodes()[0]
    with pytest.raises(DAGError):
        dag.substitute_node(node, [Gate("cx", (0, 5))])


def test_conditioned_gate_orders_after_measure():
    circuit = QCircuit(2, 1)
    circuit.measure(0, 0)
    circuit.append(Gate("x", (1,), condition=(0, 1)))
    dag = circuit_to_dag(circuit)
    names = [node.name for node in dag.topological_nodes()]
    assert names == ["measure", "x"]
    # The classical wire forces the dependency even though qubits differ.
    assert dag.successors(dag.topological_nodes()[0]) == [dag.topological_nodes()[1]]


def test_count_ops_and_two_qubit_ops(ghz3):
    dag = circuit_to_dag(ghz3)
    assert dag.count_ops() == {"h": 1, "cx": 2}
    assert len(dag.two_qubit_ops()) == 2


def test_longest_path_length(ghz3):
    dag = circuit_to_dag(ghz3)
    assert len(dag.longest_path()) == 3
    assert DAGCircuit(2).longest_path() == []


def test_copy_and_equality(ghz3):
    dag = circuit_to_dag(ghz3)
    clone = dag.copy()
    assert clone == dag
    clone.apply_gate(Gate("x", (0,)))
    assert clone != dag
