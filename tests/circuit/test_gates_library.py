"""Tests for the standard gate library: matrices, inverses, decompositions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Gate,
    QCircuit,
    decompose_to_basis,
    gate_matrix,
    gate_spec,
    inverse_gate,
    is_known_gate,
    known_gate_names,
)
from repro.errors import CircuitError
from repro.linalg import circuits_equivalent


def test_registry_contains_standard_gates():
    names = known_gate_names()
    for expected in ["x", "y", "z", "h", "cx", "cz", "swap", "ccx", "u1", "u2", "u3", "ecr"]:
        assert expected in names
    assert is_known_gate("cnot")  # alias
    assert gate_spec("cnot").name == "cx"


@pytest.mark.parametrize("name", [n for n in known_gate_names()])
def test_every_gate_matrix_is_unitary(name):
    spec = gate_spec(name)
    params = tuple(0.3 + 0.2 * i for i in range(spec.num_params))
    matrix = spec.matrix(params)
    dim = 2**spec.num_qubits
    assert matrix.shape == (dim, dim)
    assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


@pytest.mark.parametrize("name", [n for n in known_gate_names()])
def test_inverse_gate_is_really_the_inverse(name):
    spec = gate_spec(name)
    params = tuple(0.4 + 0.1 * i for i in range(spec.num_params))
    gate = Gate(name, tuple(range(spec.num_qubits)), params)
    inverse = inverse_gate(gate)
    product = gate_matrix(inverse) @ gate_matrix(gate)
    assert np.allclose(product, np.eye(product.shape[0]), atol=1e-10)


@pytest.mark.parametrize(
    "name",
    ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "cz", "cy", "ch", "swap", "ccx",
     "cswap", "iswap", "crz", "cu1", "rzz", "rxx", "rx", "ry", "rz"],
)
def test_basis_decompositions_preserve_semantics(name):
    spec = gate_spec(name)
    params = tuple(0.7 + 0.3 * i for i in range(spec.num_params))
    gate = Gate(name, tuple(range(spec.num_qubits)), params)
    decomposed = decompose_to_basis(gate)
    original = QCircuit(spec.num_qubits, gates=[gate])
    expanded = QCircuit(spec.num_qubits, gates=decomposed)
    assert circuits_equivalent(original, expanded)
    for sub in decomposed:
        assert sub.name in ("u1", "u2", "u3", "cx", "id") or sub.is_directive()


def test_gate_matrix_rejects_conditioned_gates():
    with pytest.raises(CircuitError):
        gate_matrix(Gate("x", (0,)).c_if(0, 1))


def test_gate_matrix_with_q_controls_builds_controlled_unitary():
    controlled = gate_matrix(Gate("x", (1,), q_controls=(0,)))
    plain_cx = gate_matrix(Gate("cx", (0, 1)))
    assert np.allclose(controlled, plain_cx)


def test_unknown_gate_raises():
    with pytest.raises(CircuitError):
        gate_spec("frobnicate")


def test_table1_u_gate_matrices():
    """The u1/u2/u3 matrices of Table 1."""
    lam, phi, theta = 0.37, 1.1, 0.8
    u1 = gate_matrix(Gate("u1", (0,), (lam,)))
    assert np.allclose(u1, np.diag([1.0, np.exp(1j * lam)]))
    u2 = gate_matrix(Gate("u2", (0,), (phi, lam)))
    expected_u2 = (1 / math.sqrt(2)) * np.array(
        [[1, -np.exp(1j * lam)], [np.exp(1j * phi), np.exp(1j * (phi + lam))]]
    )
    assert np.allclose(u2, expected_u2)
    u3 = gate_matrix(Gate("u3", (0,), (theta, phi, lam)))
    assert np.allclose(u3[0, 0], math.cos(theta / 2))
    assert np.allclose(u3[1, 1], np.exp(1j * (phi + lam)) * math.cos(theta / 2))


@settings(max_examples=30, deadline=None)
@given(st.floats(0.01, 6.0), st.floats(0.01, 6.0), st.floats(0.01, 6.0))
def test_u3_special_cases_match_u1_u2(theta, phi, lam):
    """u1(l) == u3(0,0,l) and u2(p,l) == u3(pi/2,p,l) up to global phase."""
    from repro.linalg import allclose_up_to_global_phase

    u1 = gate_matrix(Gate("u1", (0,), (lam,)))
    u3_for_u1 = gate_matrix(Gate("u3", (0,), (0.0, 0.0, lam)))
    assert allclose_up_to_global_phase(u1, u3_for_u1)
    u2 = gate_matrix(Gate("u2", (0,), (phi, lam)))
    u3_for_u2 = gate_matrix(Gate("u3", (0,), (math.pi / 2, phi, lam)))
    assert allclose_up_to_global_phase(u2, u3_for_u2)
