"""Property-based tests for the seeded random circuit generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QCircuit
from repro.circuit.random import (
    DEFAULT_GATE_POOL,
    random_circuit,
    random_clifford_circuit,
)

_seeds = st.integers(min_value=0, max_value=2**32 - 1)
_sizes = st.tuples(st.integers(min_value=1, max_value=5),
                   st.integers(min_value=0, max_value=15))


@settings(max_examples=40, deadline=None)
@given(_seeds, _sizes)
def test_seeded_generation_is_byte_identical(seed, sizes):
    num_qubits, num_gates = sizes
    first = random_circuit(num_qubits, num_gates, seed=seed,
                           measure=True, num_clbits=2, p_conditioned=0.3)
    second = random_circuit(num_qubits, num_gates, seed=seed,
                            measure=True, num_clbits=2, p_conditioned=0.3)
    assert first.gates == second.gates
    assert first.name == second.name


@settings(max_examples=40, deadline=None)
@given(_seeds, _sizes, st.floats(min_value=0.0, max_value=1.0))
def test_generated_circuits_are_always_valid(seed, sizes, p_conditioned):
    num_qubits, num_gates = sizes
    circuit = random_circuit(num_qubits, num_gates, seed=seed,
                             measure=True, num_clbits=2,
                             p_conditioned=p_conditioned)
    assert isinstance(circuit, QCircuit)
    circuit.validate()  # raises on any out-of-range qubit/clbit/condition
    assert circuit.num_qubits == num_qubits
    body = [g for g in circuit.gates if not g.is_measurement()]
    assert len(body) == num_gates
    for gate in body:
        assert gate.name in {entry[0] for entry in DEFAULT_GATE_POOL}
        assert len(set(gate.qubits)) == len(gate.qubits)  # distinct operands


@settings(max_examples=30, deadline=None)
@given(_seeds)
def test_conditions_only_appear_when_asked(seed):
    plain = random_circuit(4, 10, seed=seed)
    assert not any(g.is_conditioned() for g in plain.gates)
    assert not any(g.is_measurement() for g in plain.gates)
    conditioned = random_circuit(4, 10, seed=seed, num_clbits=2,
                                 p_conditioned=1.0)
    assert all(g.is_conditioned() for g in conditioned.gates
               if not g.is_measurement())
    for gate in conditioned.gates:
        if gate.condition is not None:
            clbit, value = gate.condition
            assert 0 <= clbit < 2 and value in (0, 1)


@settings(max_examples=30, deadline=None)
@given(_seeds)
def test_condition_stream_compatibility(seed):
    """``p_conditioned=0.0`` must reproduce the legacy rng stream exactly."""
    legacy = random_circuit(3, 9, seed=seed)
    extended = random_circuit(3, 9, seed=seed, num_clbits=3, p_conditioned=0.0)
    assert legacy.gates == extended.gates


@settings(max_examples=20, deadline=None)
@given(_seeds)
def test_clifford_pool_is_respected(seed):
    circuit = random_clifford_circuit(3, 12, seed=seed)
    assert {g.name for g in circuit.gates} <= \
        {"h", "s", "sdg", "x", "z", "cx", "cz", "swap"}


def test_measure_all_covers_every_qubit():
    circuit = random_circuit(4, 5, seed=0, measure=True)
    measured = {g.qubits[0] for g in circuit.gates if g.is_measurement()}
    assert measured == set(range(4))
    assert circuit.num_clbits >= 4
