"""Unit tests for the Gate value object."""

import math

import pytest

from repro.circuit import Gate, gates_commute_trivially, normalize_angle, total_qubits
from repro.errors import CircuitError


def test_gate_basic_fields():
    gate = Gate("cx", (0, 1))
    assert gate.name == "cx"
    assert gate.qubits == (0, 1)
    assert gate.num_qubits == 2
    assert gate.params == ()
    assert not gate.is_conditioned()


def test_gate_is_cx_only_when_unconditioned():
    assert Gate("cx", (0, 1)).is_cx_gate()
    assert not Gate("cx", (0, 1)).c_if(0, 1).is_cx_gate()
    assert not Gate("cx", (0, 1)).q_if(2).is_cx_gate()
    assert not Gate("h", (0,)).is_cx_gate()


def test_gate_directives():
    assert Gate("barrier", (0, 1)).is_barrier()
    assert Gate("measure", (0,), clbits=(0,)).is_measurement()
    assert Gate("reset", (0,)).is_reset()
    assert Gate("barrier", (0,)).is_directive()
    assert not Gate("x", (0,)).is_directive()


def test_duplicate_qubits_rejected():
    with pytest.raises(CircuitError):
        Gate("cx", (1, 1))


def test_q_if_overlap_rejected():
    with pytest.raises(CircuitError):
        Gate("x", (0,), q_controls=(0,))


def test_replace_and_remap():
    gate = Gate("cx", (0, 1))
    remapped = gate.remap_qubits({0: 3, 1: 2})
    assert remapped.qubits == (3, 2)
    renamed = gate.replace(name="cz")
    assert renamed.name == "cz" and renamed.qubits == (0, 1)


def test_c_if_and_q_if_builders():
    gate = Gate("x", (0,)).c_if(2, 1)
    assert gate.condition == (2, 1)
    controlled = Gate("x", (0,)).q_if(1, 2)
    assert controlled.q_controls == (1, 2)
    assert controlled.all_qubits == (0, 1, 2)


def test_equality_and_hash():
    a = Gate("rz", (0,), (0.5,))
    b = Gate("rz", (0,), (0.5,))
    assert a == b
    assert hash(a) == hash(b)
    assert a != Gate("rz", (0,), (0.6,))


def test_shares_qubit_and_trivial_commutation():
    a = Gate("h", (0,))
    b = Gate("x", (1,))
    c = Gate("cx", (0, 1))
    assert not a.shares_qubit(b)
    assert a.shares_qubit(c)
    assert gates_commute_trivially(a, b)
    assert not gates_commute_trivially(a, c)


def test_classification_helpers():
    assert Gate("h", (0,)).is_self_inverse()
    assert not Gate("s", (0,)).is_self_inverse()
    assert Gate("rz", (0,), (0.2,)).is_diagonal()
    assert not Gate("h", (0,)).is_diagonal()
    assert Gate("cx", (0, 1)).is_two_qubit()
    assert Gate("x", (0,)).name_in({"x", "y"})
    assert Gate("u1", (0,), (0.1,)).in_basis(("u1", "u2", "u3", "cx"))
    assert Gate("cx", (0, 1)).same_qubits_as(Gate("cz", (0, 1)))
    assert Gate("z", (0,)).commutes_with(Gate("cx", (0, 1)))


def test_normalize_angle():
    assert abs(normalize_angle(2 * math.pi)) < 1e-12
    assert abs(normalize_angle(3 * math.pi) - math.pi) < 1e-12
    assert abs(normalize_angle(-0.1) + 0.1) < 1e-12


def test_total_qubits():
    gates = [Gate("cx", (0, 5)), Gate("h", (2,))]
    assert total_qubits(gates) == 6
    assert total_qubits([]) == 0
