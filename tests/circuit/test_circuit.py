"""Tests for the QCircuit gate-list IR."""

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QCircuit, ghz_circuit, random_circuit
from repro.errors import CircuitError
from repro.linalg import circuits_equivalent

from tests.conftest import circuit_strategy


def test_builder_methods_grow_registers():
    circuit = QCircuit()
    circuit.h(0).cx(0, 3)
    assert circuit.num_qubits == 4
    assert circuit.size() == 2
    circuit.measure(3, 1)
    assert circuit.num_clbits == 2


def test_append_requires_gate():
    with pytest.raises(CircuitError):
        QCircuit(1).append("h")  # type: ignore[arg-type]


def test_copy_is_independent(bell_circuit):
    clone = bell_circuit.copy()
    clone.x(0)
    assert clone.size() == bell_circuit.size() + 1


def test_indexing_slicing_and_iteration(ghz3):
    assert ghz3[0].name == "h"
    tail = ghz3[1:]
    assert isinstance(tail, QCircuit)
    assert tail.size() == 2
    assert [g.name for g in ghz3] == ["h", "cx", "cx"]


def test_insert_and_delete():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.insert(1, Gate("x", (1,)))
    assert [g.name for g in circuit] == ["h", "x", "cx"]
    removed = circuit.delete(1)
    assert removed.name == "x"
    with pytest.raises(CircuitError):
        circuit.delete(10)


def test_compose_and_add(bell_circuit):
    combined = bell_circuit + bell_circuit
    assert combined.size() == 4
    assert combined.num_qubits == 2


def test_inverse_undoes_the_circuit():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.t(0)
    circuit.cx(0, 1)
    circuit.rz(0.3, 1)
    roundtrip = circuit + circuit.inverse()
    assert circuits_equivalent(roundtrip, QCircuit(2))


def test_depth_and_width():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.h(1)
    circuit.cx(0, 1)
    circuit.x(2)
    assert circuit.depth() == 2
    assert circuit.width() == 3
    circuit.barrier()
    assert circuit.depth() == 2  # barriers do not add depth


def test_count_ops_and_tensor_factors():
    circuit = QCircuit(4)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    counts = circuit.count_ops()
    assert counts == {"h": 1, "cx": 2}
    assert circuit.num_tensor_factors() == 2


def test_num_tensor_factors_counts_idle_qubits():
    circuit = QCircuit(5)
    circuit.cx(0, 1)
    assert circuit.num_tensor_factors() == 4


def test_remap_qubits_relabels_gates(ghz3):
    remapped = ghz3.remap_qubits({0: 2, 1: 1, 2: 0})
    assert remapped[0].qubits == (2,)
    assert remapped[1].qubits == (2, 1)


def test_validate_catches_bad_circuits():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.validate()
    bad = QCircuit(2)
    bad._gates.append(Gate("h", (5,)))
    with pytest.raises(CircuitError):
        bad.validate()


def test_measure_all_and_active_qubits():
    circuit = QCircuit(3)
    circuit.h(1)
    circuit.measure_all()
    assert circuit.num_clbits == 3
    assert circuit.count_ops()["measure"] == 3
    assert circuit.active_qubits() == [0, 1, 2]


def test_ghz_circuit_shape():
    circuit = ghz_circuit(5)
    assert circuit.size() == 5
    assert circuit.count_ops() == {"h": 1, "cx": 4}
    with pytest.raises(CircuitError):
        ghz_circuit(0)


def test_random_circuit_is_deterministic_per_seed():
    a = random_circuit(4, 20, seed=3)
    b = random_circuit(4, 20, seed=3)
    assert list(a.gates) == list(b.gates)
    assert random_circuit(4, 20, seed=4).gates != a.gates


def test_two_qubit_gates_helper():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.barrier()
    assert [g.name for g in circuit.two_qubit_gates()] == ["cx"]


@settings(max_examples=25, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=8))
def test_inverse_is_involutive_semantically(circuit):
    assert circuits_equivalent(circuit.inverse().inverse(), circuit)


@settings(max_examples=25, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=8))
def test_depth_bounded_by_size(circuit):
    assert 0 <= circuit.depth() <= circuit.size()
