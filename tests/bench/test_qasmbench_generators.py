"""The QASMBench-style workload generators behind Figure 11."""

import pytest

from repro.bench.qasmbench import (
    DEFAULT_SUITE,
    adder,
    bell,
    bernstein_vazirani,
    build_circuit,
    cat_state,
    deutsch,
    dnn,
    ghz_state,
    grover,
    hidden_shift,
    ising,
    qaoa,
    qasmbench_suite,
    qft,
    small_suite,
    variational,
    wstate,
)
from repro.linalg import MAX_DENSE_QUBITS, circuits_equivalent, statevector
from repro.qasm import parse_qasm


def test_suite_has_48_circuits_up_to_27_qubits(full_suite=None):
    suite = qasmbench_suite()
    assert len(suite) == 48
    assert len(DEFAULT_SUITE) == 48
    assert 2 <= min(entry.num_qubits for entry in suite)
    assert max(entry.num_qubits for entry in suite) <= 27
    assert max(entry.num_gates for entry in suite) >= 300


def test_suite_entries_roundtrip_through_openqasm():
    for entry in small_suite(max_qubits=10, max_gates=120):
        circuit = entry.circuit()
        assert circuit.num_qubits == entry.num_qubits
        assert circuit.size() == entry.num_gates
        reparsed = parse_qasm(circuit.to_qasm())
        assert reparsed.size() == circuit.size()


def test_small_suite_respects_the_filters():
    trimmed = small_suite(max_qubits=8, max_gates=60)
    assert trimmed
    assert all(entry.num_qubits <= 8 and entry.num_gates <= 60 for entry in trimmed)


def test_every_family_is_buildable():
    for family, size in DEFAULT_SUITE:
        circuit = build_circuit(family, size)
        assert circuit.size() > 0
        assert circuit.num_qubits > 0


# --------------------------------------------------------------------------- #
# Family-specific structure
# --------------------------------------------------------------------------- #
def test_bell_and_ghz_prepare_cat_states():
    import numpy as np

    state = statevector(bell())
    assert abs(state[0]) == pytest.approx(1 / np.sqrt(2))
    assert abs(state[-1]) == pytest.approx(1 / np.sqrt(2))

    ghz = ghz_state(4)
    state = statevector(ghz)
    assert abs(state[0]) == pytest.approx(1 / np.sqrt(2))
    assert abs(state[-1]) == pytest.approx(1 / np.sqrt(2))
    assert sum(abs(a) > 1e-9 for a in state) == 2


def test_cat_state_is_ghz_plus_measurements():
    circuit = cat_state(5)
    ops = circuit.count_ops()
    assert ops["measure"] == 5
    assert ops["cx"] == 4


def test_wstate_generator_structure_and_normalisation():
    import numpy as np

    n = 5
    circuit = wstate(n)
    ops = circuit.count_ops()
    assert ops["cx"] == 2 * (n - 1)
    assert ops["ry"] == 2 * (n - 1) + 1
    state = statevector(circuit)
    assert np.linalg.norm(state) == pytest.approx(1.0)


def test_bernstein_vazirani_width_tracks_the_secret():
    circuit = bernstein_vazirani(6)
    assert circuit.num_qubits == 7
    assert circuit.count_ops()["cx"] == bin(0b1011011 & 0b111111).count("1")


def test_qft_gate_count_is_quadratic():
    n = 7
    circuit = qft(n)
    ops = circuit.count_ops()
    assert ops["h"] == n
    assert ops["cu1"] == n * (n - 1) // 2
    assert ops["swap"] == n // 2


def test_adder_produces_the_expected_register_width():
    circuit = adder(3)
    assert circuit.num_qubits == 2 * 3 + 2


@pytest.mark.parametrize("family,builder", [
    ("ising", ising), ("qaoa", qaoa), ("dnn", dnn),
    ("variational", variational), ("hidden_shift", hidden_shift),
    ("grover", grover), ("deutsch", deutsch),
])
def test_parametric_families_scale_with_size(family, builder):
    small = builder(4)
    assert small.num_qubits >= 2
    assert small.size() > 0
    if family in ("ising", "qaoa", "dnn", "variational"):
        large = builder(8)
        assert large.size() > small.size()


def test_generators_are_deterministic():
    first = dnn(6).to_qasm()
    second = dnn(6).to_qasm()
    assert first == second
    assert qaoa(6).to_qasm() == qaoa(6).to_qasm()


def test_small_circuits_survive_a_parse_and_compare():
    for family, size in [("bell", 2), ("ghz_state", 3), ("qft", 4), ("adder", 2)]:
        circuit = build_circuit(family, size)
        if circuit.num_qubits <= MAX_DENSE_QUBITS and not any(
            g.is_measurement() for g in circuit
        ):
            assert circuits_equivalent(circuit, parse_qasm(circuit.to_qasm()))
