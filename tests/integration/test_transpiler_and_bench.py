"""Integration tests: pipelines, the wrapper, and the benchmark harnesses."""

import pytest

from repro.bench import (
    build_circuit,
    pass_kwargs_for,
    qasmbench_suite,
    rule_usage_report,
    run_case_studies,
    run_figure11,
    run_table2,
    small_suite,
)
from repro.bench.figure11 import default_device
from repro.bench.table2 import format_table
from repro.circuit import QCircuit, random_circuit
from repro.coupling import grid_device, linear_device
from repro.linalg import circuits_equivalent_up_to_permutation
from repro.passes import CXCancellation, Optimize1qGates
from repro.symbolic import conforms_to_coupling, equivalent_up_to_swaps
from repro.transpiler import (
    PassManager,
    VerifiedPassWrapper,
    baseline_pipeline,
    verified_pipeline,
)


# --------------------------------------------------------------------------- #
# Pass manager and wrapper
# --------------------------------------------------------------------------- #
def test_pass_manager_runs_verified_passes_via_wrapper():
    circuit = QCircuit(2)
    circuit.u1(0.3, 0)
    circuit.u1(0.4, 0)
    circuit.cx(0, 1)
    circuit.cx(0, 1)
    manager = PassManager([
        VerifiedPassWrapper(Optimize1qGates()),
        VerifiedPassWrapper(CXCancellation()),
    ])
    output = manager.run(circuit)
    assert output.count_ops().get("cx", 0) == 0
    assert len(manager.records) == 2
    assert manager.total_time() >= 0.0


def test_property_set_is_shared_across_the_pipeline():
    from repro.passes import TrivialLayout, ApplyLayout

    circuit = QCircuit(3)
    circuit.cx(0, 2)
    manager = PassManager([
        VerifiedPassWrapper(TrivialLayout()),
        VerifiedPassWrapper(ApplyLayout()),
    ])
    manager.run(circuit)
    assert manager.property_set["layout"] is not None


@pytest.mark.parametrize("factory", [baseline_pipeline, verified_pipeline])
def test_preset_pipelines_produce_coupling_conformant_circuits(factory):
    coupling = linear_device(5)
    circuit = random_circuit(5, 25, seed=11)
    pipeline = factory(coupling)
    output = pipeline.run(circuit)
    assert conforms_to_coupling(output.gates, coupling)
    assert set(output.count_ops()) <= {"u1", "u2", "u3", "cx", "id", "swap", "barrier", "measure"}


def test_both_pipelines_preserve_semantics_up_to_routing_permutation():
    coupling = linear_device(4)
    circuit = random_circuit(4, 15, seed=3)
    for factory in (baseline_pipeline, verified_pipeline):
        output = factory(coupling).run(circuit)
        report = equivalent_up_to_swaps(circuit.gates, output.gates, max(4, output.num_qubits))
        # The pipelines unroll to u1/u2/u3, so compare with the matrix oracle.
        assert circuits_equivalent_up_to_permutation(circuit, output, list(report.permutation))


# --------------------------------------------------------------------------- #
# QASMBench suite
# --------------------------------------------------------------------------- #
def test_qasmbench_suite_shape():
    suite = qasmbench_suite()
    assert len(suite) == 48
    assert max(entry.num_qubits for entry in suite) >= 24
    assert max(entry.num_gates for entry in suite) >= 300
    families = {entry.family for entry in suite}
    assert {"ghz_state", "qft", "adder", "ising", "qaoa", "dnn"} <= families


def test_qasmbench_entries_roundtrip_through_qasm():
    for entry in small_suite(max_qubits=8, max_gates=120)[:8]:
        circuit = entry.circuit()
        assert circuit.num_qubits == entry.num_qubits
        assert circuit.size() == entry.num_gates


def test_build_circuit_families_are_well_formed():
    for family, size in [("qft", 5), ("adder", 3), ("grover", 4), ("wstate", 5)]:
        circuit = build_circuit(family, size)
        circuit.validate()


# --------------------------------------------------------------------------- #
# Benchmark drivers (small configurations)
# --------------------------------------------------------------------------- #
def test_table2_driver_reports_all_passes_verified():
    rows = run_table2()
    assert len(rows) == 44
    assert all(row.verified for row in rows)
    table_text = format_table(rows)
    assert "44 / 44" in table_text
    assert "12 passes are outside" in table_text


def test_rule_usage_report_shows_reuse_across_passes():
    from repro.passes import CXCancellation, CommutativeCancellation, Unroller, BasicSwap

    usage = rule_usage_report([CXCancellation, CommutativeCancellation, Unroller, BasicSwap])
    assert "cancellation" in usage["CXCancellation"]
    assert "cancellation" in usage["CommutativeCancellation"]
    assert "utility specification" in usage["Unroller"]
    assert "swap" in usage["BasicSwap"]


def test_figure11_driver_runs_on_a_small_suite():
    suite = small_suite(max_qubits=8, max_gates=120)[:5]
    rows = run_figure11(suite, coupling=default_device(suite))
    assert len(rows) == 5
    assert all(row.baseline_seconds is not None for row in rows)
    assert all(row.verified_seconds is not None for row in rows)


def test_case_study_driver_matches_the_paper_story():
    results = run_case_studies()
    assert len(results) == 3
    assert all(result.buggy_rejected for result in results)
    assert all(result.fixed_verified for result in results)
    assert all(result.counterexample_kind is not None for result in results)
