"""Path-forking symbolic execution (the branch expansion of Section 4)."""

import pytest

from repro.errors import VerificationError
from repro.verify import PathExplorer, VerificationSession


def _explore(branches: int, max_paths: int = None):
    session = VerificationSession()
    explorer = PathExplorer(session)
    if max_paths is not None:
        explorer.max_paths = max_paths
    outcomes = []

    def runner():
        taken = []
        for index in range(branches):
            gate = session.fresh_gate(f"g{index}")
            if gate.is_cx_gate():
                taken.append(True)
            else:
                taken.append(False)
        outcomes.append(tuple(taken))
        return tuple(taken)

    records = explorer.explore(runner)
    return records, outcomes


def test_a_single_branch_forks_into_two_paths():
    records, outcomes = _explore(1)
    assert len(records) == 2
    assert set(outcomes) == {(True,), (False,)}


def test_two_branches_fork_into_four_paths():
    records, outcomes = _explore(2)
    assert len(records) == 4
    assert set(outcomes) == {(True, True), (True, False), (False, True), (False, False)}


def test_every_path_is_explored_exactly_once():
    records, outcomes = _explore(3)
    assert len(records) == 8
    assert len(set(outcomes)) == 8


def test_path_explosion_is_reported():
    with pytest.raises(VerificationError):
        _explore(6, max_paths=16)


def test_straight_line_code_is_a_single_path():
    session = VerificationSession()
    explorer = PathExplorer(session)
    records = explorer.explore(lambda: 42)
    assert len(records) == 1


def test_decisions_are_recorded_as_path_facts():
    session = VerificationSession()
    explorer = PathExplorer(session)

    def runner():
        gate = session.fresh_gate("g")
        if gate.is_barrier():
            return "barrier"
        return "not barrier"

    records = explorer.explore(runner)
    assert len(records) == 2
    # Each record carries the decision made on its path.
    fact_kinds = [
        {fact.kind for fact, _value in record.fact_decisions} for record in records
    ]
    assert all("is_barrier" in kinds for kinds in fact_kinds)
    assert {record.result for record in records} == {"barrier", "not barrier"}
