"""Loop templates on concrete circuits and the symbolic value classes."""

import pytest

from repro.circuit import Gate, QCircuit
from repro.coupling import Layout, linear_device
from repro.errors import TranspilerError, VerificationError
from repro.linalg import circuits_equivalent
from repro.symbolic import conforms_to_coupling, equivalent_up_to_swaps
from repro.verify import SymBool, SymCircuit, SymGate, SymInt, VerificationSession
from repro.verify.templates import (
    collect_runs,
    iterate_all_gates,
    route_each_gate,
    while_gate_remaining,
)


@pytest.fixture
def sample_circuit():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 1)
    circuit.u1(0.3, 2)
    circuit.u1(0.4, 2)
    circuit.t(1)
    return circuit


# --------------------------------------------------------------------------- #
# Templates on concrete circuits
# --------------------------------------------------------------------------- #
def test_iterate_all_gates_copies_when_the_body_copies(sample_circuit):
    output = iterate_all_gates(sample_circuit, lambda out, gate: out.append(gate))
    assert list(output.gates) == list(sample_circuit.gates)
    assert output is not sample_circuit


def test_iterate_all_gates_body_can_expand_gates(sample_circuit):
    def body(out, gate):
        out.append(gate)
        if gate.name_is("t"):
            out.append(Gate("tdg", gate.qubits))
            out.append(Gate("t", gate.qubits))

    output = iterate_all_gates(sample_circuit, body)
    assert output.size() == sample_circuit.size() + 2
    assert circuits_equivalent(sample_circuit, output)


def test_while_gate_remaining_processes_every_gate(sample_circuit):
    seen = []

    def body(output, remain):
        gate = remain[0]
        seen.append(gate.name)
        output.append(gate)
        remain.delete(0)

    output = while_gate_remaining(sample_circuit, body)
    assert len(seen) == sample_circuit.size()
    assert list(output.gates) == list(sample_circuit.gates)


def test_while_gate_remaining_detects_missing_progress(sample_circuit):
    def body(output, remain):
        output.append(remain[0])  # forgets to delete

    with pytest.raises(TranspilerError):
        while_gate_remaining(sample_circuit, body)


def test_while_gate_remaining_iteration_bound(sample_circuit):
    def body(output, remain):
        output.append(remain[0])
        remain.delete(0)

    # The circuit needs six iterations; a bound of three must be reported
    # (this is how the non-terminating lookahead_swap of Section 7.3 is
    # surfaced instead of hanging the verifier).
    with pytest.raises(TranspilerError):
        while_gate_remaining(sample_circuit, body, max_iterations=3)


def test_collect_runs_merges_each_run(sample_circuit):
    def transform(run):
        if len(run) == 2:
            merged = run[0].params[0] + run[1].params[0]
            return [Gate("u1", run[0].qubits, (merged,))]
        return list(run)

    output = collect_runs(sample_circuit, ("u1",), transform)
    assert output.count_ops().get("u1", 0) == 1
    assert circuits_equivalent(sample_circuit, output)


def test_route_each_gate_produces_a_conformant_circuit():
    coupling = linear_device(4)
    circuit = QCircuit(4)
    circuit.h(0)
    circuit.cx(0, 3)
    circuit.cx(1, 3)

    def choose_swaps(coupling_map, layout, gate, upcoming):
        a, b = gate.all_qubits
        path = coupling_map.shortest_path(layout.physical(a), layout.physical(b))
        return [(path[0], path[1])]

    routed, final_layout = route_each_gate(circuit, coupling, choose_swaps)
    assert conforms_to_coupling(routed.gates, coupling)
    assert isinstance(final_layout, Layout)
    report = equivalent_up_to_swaps(circuit.gates, routed.gates, 4)
    assert report.equivalent


# --------------------------------------------------------------------------- #
# Symbolic values
# --------------------------------------------------------------------------- #
@pytest.fixture
def session():
    return VerificationSession()


def test_symbolic_gate_queries_return_symbolic_booleans(session):
    gate = session.fresh_gate("g")
    assert isinstance(gate, SymGate)
    assert isinstance(gate.is_cx_gate(), SymBool)
    assert isinstance(gate.is_barrier(), SymBool)
    assert isinstance(gate.qubits == gate.qubits, SymBool)


def test_symbolic_gate_name_is_not_a_string(session):
    gate = session.fresh_gate("g")
    with pytest.raises(VerificationError):
        _ = gate.name


def test_symbolic_circuit_cannot_be_iterated_directly(session):
    circuit = session.fresh_circuit([session.fresh_segment("body")])
    assert isinstance(circuit, SymCircuit)
    with pytest.raises(VerificationError):
        list(circuit)


def test_symbolic_circuit_append_and_delete_are_tracked(session):
    circuit = session.fresh_circuit([])
    gate = session.fresh_gate("g")
    circuit.append(gate)
    assert circuit.appended == [gate]
    assert len(circuit) == 1


def test_symint_arithmetic_and_comparisons(session):
    width = SymInt(session, uid="width")
    clbits = SymInt(session, uid="clbits")
    total = width + clbits
    assert isinstance(total, SymInt)
    assert total.uid != width.uid
    assert isinstance(width + 3, SymInt)
    assert isinstance(width - 1, SymInt)
    assert isinstance(width * 2, SymInt)
    assert isinstance(width < clbits, SymBool)
    assert isinstance(width >= 0, SymBool)
    assert isinstance(width == clbits, SymBool)


def test_symint_is_hashable_and_stable(session):
    value = SymInt(session, uid="n")
    assert hash(value) == hash(value)
    assert {value: "ok"}[value] == "ok"
