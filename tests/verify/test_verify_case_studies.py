"""The three Section 7 case studies: buggy passes rejected, fixed passes verified."""

import pytest

from repro.circuit import QCircuit
from repro.coupling import ibm_16q
from repro.errors import TranspilerError
from repro.linalg import circuits_equivalent
from repro.passes import (
    BuggyCommutativeCancellation,
    BuggyLookaheadSwap,
    BuggyOptimize1qGates,
    CommutativeCancellation,
    LookaheadSwap,
    Optimize1qGates,
)
from repro.symbolic import conforms_to_coupling, equivalent_up_to_swaps
from repro.verify import conditional_circuits_equivalent, verify_pass


# --------------------------------------------------------------------------- #
# Case study 1: optimize_1q_gates and conditioned gates (Section 7.1)
# --------------------------------------------------------------------------- #
class TestOptimize1qConditionBug:
    def test_buggy_pass_is_rejected_with_confirmed_counterexample(self):
        result = verify_pass(BuggyOptimize1qGates)
        assert result.supported and not result.verified
        assert result.counterexample is not None
        assert result.counterexample.confirmed
        assert result.counterexample.kind == "semantics"

    def test_fixed_pass_verifies(self):
        assert verify_pass(Optimize1qGates).verified

    def test_buggy_pass_really_changes_semantics_of_the_figure8_circuit(self):
        circuit = BuggyOptimize1qGates.counterexample_hint()
        output = BuggyOptimize1qGates()(circuit.copy())
        assert not conditional_circuits_equivalent(circuit, output)

    def test_fixed_pass_preserves_semantics_on_the_same_circuit(self):
        circuit = BuggyOptimize1qGates.counterexample_hint()
        output = Optimize1qGates()(circuit.copy())
        assert conditional_circuits_equivalent(circuit, output)

    def test_fixed_pass_still_merges_unconditioned_runs(self):
        circuit = QCircuit(1)
        circuit.u1(0.3, 0)
        circuit.u3(0.2, 0.4, 0.6, 0)
        output = Optimize1qGates()(circuit.copy())
        assert output.size() == 1
        assert circuits_equivalent(circuit, output)


# --------------------------------------------------------------------------- #
# Case study 2: commutation transitivity (Section 7.2)
# --------------------------------------------------------------------------- #
class TestCommutationTransitivityBug:
    def test_buggy_pass_is_rejected_with_confirmed_counterexample(self):
        result = verify_pass(BuggyCommutativeCancellation)
        assert result.supported and not result.verified
        assert result.counterexample is not None and result.counterexample.confirmed

    def test_fixed_pass_verifies(self):
        assert verify_pass(CommutativeCancellation).verified

    def test_buggy_pass_breaks_the_figure9_circuit(self):
        circuit = BuggyCommutativeCancellation.counterexample_hint()
        output = BuggyCommutativeCancellation()(circuit.copy())
        assert output.size() < circuit.size()
        assert not circuits_equivalent(circuit, output)

    def test_fixed_pass_is_safe_on_the_same_circuit(self):
        circuit = BuggyCommutativeCancellation.counterexample_hint()
        output = CommutativeCancellation()(circuit.copy())
        assert circuits_equivalent(circuit, output)

    def test_fixed_pass_still_cancels_legitimate_pairs(self):
        circuit = QCircuit(2)
        circuit.z(0)
        circuit.x(1)          # disjoint, commutes with z(0)
        circuit.cx(0, 1)      # z commutes through the control
        circuit.z(0)
        output = CommutativeCancellation()(circuit.copy())
        assert output.count_ops().get("z", 0) == 0
        assert circuits_equivalent(circuit, output)


# --------------------------------------------------------------------------- #
# Case study 3: lookahead_swap non-termination (Section 7.3)
# --------------------------------------------------------------------------- #
class TestLookaheadSwapTermination:
    def test_buggy_pass_fails_the_termination_subgoal(self):
        result = verify_pass(BuggyLookaheadSwap, pass_kwargs={"coupling": ibm_16q()})
        assert result.supported and not result.verified
        assert any("termination" in reason for reason in result.failure_reasons)

    def test_counterexample_reports_non_termination(self):
        result = verify_pass(BuggyLookaheadSwap, pass_kwargs={"coupling": ibm_16q()})
        assert result.counterexample is not None
        assert result.counterexample.kind == "non_termination"
        assert result.counterexample.confirmed

    def test_buggy_pass_livelocks_on_the_figure10_circuit(self):
        circuit = BuggyLookaheadSwap.counterexample_hint()
        with pytest.raises(TranspilerError):
            BuggyLookaheadSwap(coupling=ibm_16q())(circuit.copy())

    def test_fixed_pass_verifies_and_routes_the_same_circuit(self):
        assert verify_pass(LookaheadSwap, pass_kwargs={"coupling": ibm_16q()}).verified
        coupling = ibm_16q()
        circuit = BuggyLookaheadSwap.counterexample_hint()
        routed = LookaheadSwap(coupling=coupling)(circuit.copy())
        assert conforms_to_coupling(routed.gates, coupling)
        report = equivalent_up_to_swaps(circuit.gates, routed.gates, 16)
        assert report.equivalent
