"""Unit tests for the subgoal discharge engine (Section 6's back end)."""

import pytest

from repro.circuit import Gate
from repro.verify import Fact, Subgoal, VerificationSession, discharge
from repro.verify import facts as F


@pytest.fixture
def session():
    return VerificationSession()


def _subgoal(kind, lhs=(), rhs=(), path_facts=(), metadata=None, description="test"):
    return Subgoal(
        kind=kind,
        description=description,
        lhs=tuple(lhs),
        rhs=tuple(rhs),
        path_facts=tuple(path_facts),
        metadata=dict(metadata or {}),
    )


# --------------------------------------------------------------------------- #
# Structural subgoal kinds
# --------------------------------------------------------------------------- #
def test_unchanged_subgoal_requires_syntactic_identity(session):
    segment = session.fresh_segment("input")
    same = _subgoal("unchanged", lhs=(segment,), rhs=(segment,))
    assert discharge(same).proved
    extra = _subgoal("unchanged", lhs=(segment, Gate("x", (0,))), rhs=(segment,))
    result = discharge(extra)
    assert not result.proved
    assert result.method == "identical"


def test_termination_subgoal_accepts_deletions_and_progress_arguments():
    assert discharge(_subgoal("termination", metadata={"deleted": 1})).proved
    assert discharge(_subgoal("termination", metadata={"deleted": 3})).proved
    assert discharge(
        _subgoal("termination", metadata={"progress_argument": "total distance decreases"})
    ).proved
    assert not discharge(_subgoal("termination", metadata={"deleted": 0})).proved
    assert not discharge(_subgoal("termination")).proved


def test_coupling_subgoal_relies_on_the_routing_template():
    assert discharge(
        _subgoal("coupling", metadata={"adjacency_enforced_by_template": True})
    ).proved
    assert not discharge(_subgoal("coupling")).proved


def test_routing_equivalence_subgoal_relies_on_the_template_structure():
    assert discharge(
        _subgoal("equivalence_up_to_swaps", metadata={"template": "route_each_gate"})
    ).proved
    assert not discharge(_subgoal("equivalence_up_to_swaps")).proved


def test_layout_permutation_subgoal_is_a_library_lemma():
    assert discharge(_subgoal("layout_permutation")).proved


def test_unknown_subgoal_kinds_are_never_proved():
    result = discharge(_subgoal("frobnicate"))
    assert not result.proved
    assert result.method == "unknown"


# --------------------------------------------------------------------------- #
# Equivalence over concrete gate sequences (the sequence engine)
# --------------------------------------------------------------------------- #
def test_identical_sequences_are_trivially_equivalent():
    gates = (Gate("h", (0,)), Gate("cx", (0, 1)))
    result = discharge(_subgoal("equivalence", lhs=gates, rhs=gates))
    assert result.proved
    assert result.method == "identical"


def test_concrete_cancellation_is_proved_by_the_sequence_engine():
    result = discharge(
        _subgoal("equivalence", lhs=(Gate("cx", (0, 1)), Gate("cx", (0, 1))), rhs=())
    )
    assert result.proved
    assert result.method == "sequence engine"


def test_concrete_difference_is_rejected():
    result = discharge(_subgoal("equivalence", lhs=(Gate("h", (0,)),), rhs=(Gate("x", (0,)),)))
    assert not result.proved


def test_final_measurements_can_be_ignored_when_the_obligation_says_so():
    lhs = (Gate("h", (0,)), Gate("measure", (0,), clbits=(0,)))
    rhs = (Gate("h", (0,)),)
    strict = _subgoal("equivalence", lhs=lhs, rhs=rhs)
    relaxed = _subgoal("equivalence", lhs=lhs, rhs=rhs,
                       metadata={"ignore_final_measurements": True})
    assert not discharge(strict).proved
    assert discharge(relaxed).proved


def test_initial_resets_can_be_dropped_under_the_zero_state_assumption():
    lhs = (Gate("reset", (0,)), Gate("h", (0,)))
    rhs = (Gate("h", (0,)),)
    relaxed = _subgoal("equivalence", lhs=lhs, rhs=rhs,
                       metadata={"assume_zero_initial_state": True})
    assert discharge(relaxed).proved


# --------------------------------------------------------------------------- #
# Equivalence over symbolic gates (facts -> rewrite rules -> congruence)
# --------------------------------------------------------------------------- #
def test_symbolic_cx_pair_cancels_when_the_facts_support_it(session):
    first, second = session.fresh_gate("a"), session.fresh_gate("b")
    facts = [
        (Fact(F.IS_CX, (first.uid,)), True),
        (Fact(F.IS_CX, (second.uid,)), True),
        (Fact(F.SAME_QUBITS, (first.uid, second.uid)), True),
    ]
    proved = discharge(_subgoal("equivalence", lhs=(first, second), rhs=(), path_facts=facts))
    assert proved.proved
    assert proved.method == "congruence closure"
    assert any("cancel" in rule for rule in proved.rules_used)


def test_symbolic_cx_pair_does_not_cancel_without_same_qubits(session):
    first, second = session.fresh_gate("a"), session.fresh_gate("b")
    facts = [
        (Fact(F.IS_CX, (first.uid,)), True),
        (Fact(F.IS_CX, (second.uid,)), True),
    ]
    assert not discharge(
        _subgoal("equivalence", lhs=(first, second), rhs=(), path_facts=facts)
    ).proved


def test_symbolic_hadamard_pair_needs_the_unconditioned_fact(session):
    first, second = session.fresh_gate("a"), session.fresh_gate("b")
    base_facts = [
        (Fact(F.NAME_IS, (first.uid, "h")), True),
        (Fact(F.NAME_IS, (second.uid, "h")), True),
        (Fact(F.SAME_QUBITS, (first.uid, second.uid)), True),
    ]
    without_condition_checks = discharge(
        _subgoal("equivalence", lhs=(first, second), rhs=(), path_facts=base_facts)
    )
    assert not without_condition_checks.proved

    facts = base_facts + [
        (Fact(F.IS_CONDITIONED, (first.uid,)), False),
        (Fact(F.IS_CONDITIONED, (second.uid,)), False),
    ]
    assert discharge(
        _subgoal("equivalence", lhs=(first, second), rhs=(), path_facts=facts)
    ).proved


def test_symbolic_barriers_are_ignored_in_equivalence_goals(session):
    barrier = session.fresh_gate("b")
    facts = [(Fact(F.IS_BARRIER, (barrier.uid,)), True)]
    assert discharge(
        _subgoal("equivalence", lhs=(barrier,), rhs=(), path_facts=facts)
    ).proved


def test_segment_equivalence_assumptions_are_usable_as_rewrites(session):
    original = session.fresh_segment("original tail")
    refined = session.fresh_segment("refined tail")
    facts = [(Fact(F.SEGMENT_EQUIVALENT_TO, ((original,), (refined,))), True)]
    assert discharge(
        _subgoal("equivalence", lhs=(original,), rhs=(refined,), path_facts=facts)
    ).proved
