"""Failure injection: deliberately wrong passes must be rejected, not verified.

The value of a verifier is measured by what it refuses.  Every pass in this
file contains a seeded bug (dropping gates, duplicating gates, cancelling the
wrong pair, forgetting a side condition, making no loop progress, touching
the circuit inside an analysis pass) and the expectation is always the same:
``verify_pass`` must not report it verified.
"""

import pytest

from repro.circuit import Gate
from repro.utility.circuit_ops import next_gate
from repro.verify import AnalysisPass, GeneralPass, verify_pass
from repro.verify.templates import iterate_all_gates, while_gate_remaining


# --------------------------------------------------------------------------- #
# The wrong passes
# --------------------------------------------------------------------------- #
class DropEveryGate(GeneralPass):
    """BUG: produces an empty circuit."""

    def run(self, circuit):
        def body(output, gate):
            return

        return iterate_all_gates(circuit, body)


class DuplicateEveryGate(GeneralPass):
    """BUG: emits every gate twice."""

    def run(self, circuit):
        def body(output, gate):
            output.append(gate)
            output.append(gate)

        return iterate_all_gates(circuit, body)


class DropHadamards(GeneralPass):
    """BUG: silently removes every Hadamard gate."""

    def run(self, circuit):
        def body(output, gate):
            if gate.name_is("h"):
                return
            output.append(gate)

        return iterate_all_gates(circuit, body)


class ReplaceHWithX(GeneralPass):
    """BUG: rewrites Hadamards into X gates."""

    def run(self, circuit):
        def body(output, gate):
            if gate.name_is("h"):
                output.append(Gate("x", (0,)))
            else:
                output.append(gate)

        return iterate_all_gates(circuit, body)


class CancelCXWithoutSameQubits(GeneralPass):
    """BUG: cancels two CX gates that merely share a qubit (Section 3's check, dropped)."""

    def run(self, circuit):
        def body(output, remain):
            gate = remain[0]
            if gate.is_cx_gate():
                partner = next_gate(remain, 0)
                if partner is not None:
                    other = remain[partner]
                    if other.is_cx_gate():           # missing: qubits == check
                        remain.delete(partner)
                        remain.delete(0)
                        return
            output.append(gate)
            remain.delete(0)

        return while_gate_remaining(circuit, body)


class CancelAnySharingGate(GeneralPass):
    """BUG: cancels the front gate with *any* later gate sharing a qubit."""

    def run(self, circuit):
        def body(output, remain):
            gate = remain[0]
            partner = next_gate(remain, 0)
            if partner is not None:
                remain.delete(partner)
                remain.delete(0)
                return
            output.append(gate)
            remain.delete(0)

        return while_gate_remaining(circuit, body)


class CancelConditionedHadamards(GeneralPass):
    """BUG: cancels H pairs without checking the c_if modifier (the 7.1 pattern)."""

    def run(self, circuit):
        def body(output, remain):
            gate = remain[0]
            if gate.name_is("h"):
                partner = next_gate(remain, 0)
                if partner is not None:
                    other = remain[partner]
                    if other.name_is("h") and other.qubits == gate.qubits:
                        remain.delete(partner)
                        remain.delete(0)
                        return
            output.append(gate)
            remain.delete(0)

        return while_gate_remaining(circuit, body)


class NoProgressLoop(GeneralPass):
    """BUG: the loop body never shrinks the remaining gate list (non-termination)."""

    def run(self, circuit):
        def body(output, remain):
            gate = remain[0]
            output.append(gate)
            # missing: remain.delete(0)

        return while_gate_remaining(circuit, body)


class MeddlingAnalysis(AnalysisPass):
    """BUG: an analysis pass that edits the circuit it is supposed to observe."""

    def run(self, circuit):
        circuit.append(Gate("x", (0,)))
        return circuit


class RawLoopPass(GeneralPass):
    """Out of scope: a hand-rolled unbounded loop instead of a template."""

    def run(self, circuit):
        index = 0
        while index < 1000:
            index += 1
        return circuit


WRONG_PASSES = [
    DropEveryGate,
    DuplicateEveryGate,
    DropHadamards,
    ReplaceHWithX,
    CancelCXWithoutSameQubits,
    CancelAnySharingGate,
    CancelConditionedHadamards,
    NoProgressLoop,
    MeddlingAnalysis,
]


# --------------------------------------------------------------------------- #
# Expectations
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("pass_class", WRONG_PASSES,
                         ids=[p.__name__ for p in WRONG_PASSES])
def test_wrong_pass_is_not_verified(pass_class):
    result = verify_pass(pass_class)
    assert not result.verified, f"{pass_class.__name__} must be rejected"
    assert result.failure_reasons or result.counterexample is not None


def test_no_progress_loop_fails_the_termination_subgoal():
    result = verify_pass(NoProgressLoop)
    assert not result.verified
    termination_failures = [
        outcome for outcome in result.subgoals
        if outcome.subgoal.kind == "termination" and not outcome.result.proved
    ]
    assert termination_failures


def test_raw_loops_are_reported_as_unsupported():
    result = verify_pass(RawLoopPass)
    assert not result.verified
    assert not result.supported


def test_the_correct_counterparts_still_verify():
    """Sanity: the verifier does not reject everything."""
    from repro.passes import CXCancellation, CommutationAnalysis

    assert verify_pass(CXCancellation).verified
    assert verify_pass(CommutationAnalysis).verified
