"""The static pass analyser (the preprocessor of Section 4)."""

import pytest

from repro.errors import UnsupportedPassError
from repro.passes import (
    ALL_VERIFIED_PASSES,
    BasicSwap,
    CommutativeCancellation,
    CXCancellation,
    Optimize1qGates,
    RemoveDiagonalGatesBeforeMeasure,
    UNSUPPORTED_PASSES,
    Width,
)
from repro.passes.unsupported import (
    BIPMapping,
    CrosstalkAdaptiveSchedule,
    StochasticSwap,
    UnitarySynthesis,
)
from repro.verify import GeneralPass, analyze_pass


def test_loc_counts_are_positive_and_small():
    for pass_class in ALL_VERIFIED_PASSES:
        analysis = analyze_pass(pass_class)
        assert analysis.supported
        assert 0 < analysis.lines_of_code < 200


def test_template_detection_per_pass():
    assert "while_gate_remaining" in analyze_pass(CXCancellation).templates_used
    assert "while_gate_remaining" in analyze_pass(CommutativeCancellation).templates_used
    assert "collect_runs" in analyze_pass(Optimize1qGates).templates_used
    assert "route_each_gate" in analyze_pass(BasicSwap).templates_used
    assert analyze_pass(Width).templates_used == ()


def test_utility_detection_per_pass():
    assert "next_gate" in analyze_pass(CXCancellation).utilities_used
    assert "next_gate" in analyze_pass(RemoveDiagonalGatesBeforeMeasure).utilities_used
    assert "merge_1q_gates" in analyze_pass(Optimize1qGates).utilities_used


def test_branch_counts_reflect_the_implementation():
    assert analyze_pass(Width).branch_count == 0
    assert analyze_pass(CXCancellation).branch_count >= 2
    # The paper's observation: branch expansion stays small for real passes.
    for pass_class in ALL_VERIFIED_PASSES:
        assert analyze_pass(pass_class).branch_count <= 9


@pytest.mark.parametrize("pass_class", UNSUPPORTED_PASSES,
                         ids=[p.__name__ for p in UNSUPPORTED_PASSES])
def test_unsupported_passes_report_a_reason(pass_class):
    analysis = analyze_pass(pass_class)
    assert not analysis.supported
    assert analysis.unsupported_reason


def test_unsupported_reasons_match_the_papers_taxonomy():
    reasons = {
        cls.__name__: analyze_pass(cls).unsupported_reason for cls in
        (StochasticSwap, CrosstalkAdaptiveSchedule, BIPMapping, UnitarySynthesis)
    }
    assert "random" in reasons["StochasticSwap"].lower()
    assert "solver" in reasons["CrosstalkAdaptiveSchedule"].lower()
    assert "solver" in reasons["BIPMapping"].lower()
    assert "approximat" in reasons["UnitarySynthesis"].lower()
    pulse_level = [
        cls for cls in UNSUPPORTED_PASSES
        if "pulse" in analyze_pass(cls).unsupported_reason.lower()
    ]
    assert len(pulse_level) == 8


def test_raw_loops_are_flagged_unless_declared_bounded():
    class Unbounded(GeneralPass):
        def run(self, circuit):
            total = 0
            while total < 5:
                total += 1
            return circuit

    class Bounded(GeneralPass):
        raw_loops_are_bounded = True

        def run(self, circuit):
            for _ in range(3):
                pass
            return circuit

    assert not analyze_pass(Unbounded).supported
    assert analyze_pass(Bounded).supported


def test_class_without_run_or_reason_is_an_error():
    class NotAPass:
        pass

    with pytest.raises(UnsupportedPassError):
        analyze_pass(NotAPass)
