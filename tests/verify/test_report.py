"""Verification report rendering (repro.verify.report)."""

import json

from repro.bench.table2 import pass_kwargs_for
from repro.passes import BasicSwap, CXCancellation, Width
from repro.passes.buggy import BuggyCommutativeCancellation
from repro.verify import verify_pass
from repro.verify.report import (
    result_to_dict,
    summarize,
    to_json,
    to_markdown,
    to_text,
)


def _results():
    results = [
        verify_pass(CXCancellation),
        verify_pass(Width),
        verify_pass(BasicSwap, pass_kwargs=pass_kwargs_for(BasicSwap)),
        verify_pass(BuggyCommutativeCancellation),
    ]
    return results


def test_summary_counts_verified_and_rejected():
    results = _results()
    summary = summarize(results)
    assert summary.total == 4
    assert summary.verified == 3
    assert summary.rejected == 1
    assert summary.unsupported == 0
    assert not summary.all_verified
    assert summary.total_subgoals >= 4
    assert summary.slowest_pass in {r.pass_name for r in results}
    assert "BuggyCommutativeCancellation" in summary.counterexamples


def test_result_to_dict_is_json_serialisable():
    results = _results()
    for result in results:
        payload = result_to_dict(result)
        json.dumps(payload)
        assert payload["pass"] == result.pass_name
        assert payload["verified"] == result.verified
        assert payload["subgoals"] == result.num_subgoals
    rejected = result_to_dict(results[-1])
    assert rejected["counterexample"] is not None
    assert rejected["counterexample"]["kind"] in ("semantics", "non_termination", "crash")


def test_to_json_includes_summary_and_rows():
    payload = json.loads(to_json(_results()))
    assert payload["summary"]["total"] == 4
    assert payload["summary"]["verified"] == 3
    assert len(payload["results"]) == 4


def test_to_text_mentions_every_pass_and_the_counterexample():
    text = to_text(_results(), title="report")
    assert "report" in text
    assert "CXCancellation" in text
    assert "Width" in text
    assert "REJECTED" in text
    assert "counterexample produced for BuggyCommutativeCancellation" in text


def test_to_markdown_renders_a_table():
    markdown = to_markdown(_results(), title="Verification report")
    assert markdown.startswith("## Verification report")
    assert "| pass | status |" in markdown
    assert "`CXCancellation`" in markdown
    assert "3 / 4 verified" in markdown
