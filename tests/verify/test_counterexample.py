"""Counterexample search, confirmation, and conditioned-circuit equivalence."""

import pytest

from repro.circuit import Gate, QCircuit
from repro.coupling import ibm_16q
from repro.passes import CXCancellation
from repro.passes.buggy import BuggyLookaheadSwap, BuggyOptimize1qGates
from repro.verify import (
    conditional_circuits_equivalent,
    confirm_counterexample,
    verify_pass,
)


# --------------------------------------------------------------------------- #
# conditional_circuits_equivalent
# --------------------------------------------------------------------------- #
def test_conditioned_equivalence_requires_agreement_for_every_bit_value():
    left = QCircuit(1, 1)
    left.append(Gate("x", (0,)).c_if(0, 1))
    right_same = QCircuit(1, 1)
    right_same.append(Gate("x", (0,)).c_if(0, 1))
    right_unconditional = QCircuit(1, 1)
    right_unconditional.x(0)
    assert conditional_circuits_equivalent(left, right_same)
    assert not conditional_circuits_equivalent(left, right_unconditional)


def test_conditioned_equivalence_reduces_to_plain_equivalence_without_conditions():
    left = QCircuit(2)
    left.h(0)
    left.cx(0, 1)
    right = QCircuit(2)
    right.h(0)
    right.cx(0, 1)
    right.cx(0, 1)
    right.cx(0, 1)
    assert conditional_circuits_equivalent(left, right)


def test_final_measurements_are_ignored():
    left = QCircuit(1, 1)
    left.h(0)
    right = QCircuit(1, 1)
    right.h(0)
    right.measure(0, 0)
    assert conditional_circuits_equivalent(left, right)


# --------------------------------------------------------------------------- #
# confirm_counterexample
# --------------------------------------------------------------------------- #
def test_confirm_counterexample_accepts_a_real_failure():
    # A conditioned u1 followed by a u3 on the same qubit: the buggy 7.1 pass
    # merges them and changes the conditioned behaviour.
    candidate = QCircuit(1, 1)
    candidate.append(Gate("u1", (0,), (0.7,)).c_if(0, 1))
    candidate.u3(0.4, 0.2, 0.1, 0)
    confirmed = confirm_counterexample(BuggyOptimize1qGates, candidate)
    assert confirmed is not None
    assert confirmed.confirmed
    assert confirmed.kind in ("semantics", "non_termination", "crash")


def test_confirm_counterexample_rejects_a_non_failure():
    candidate = QCircuit(2)
    candidate.h(0)
    candidate.cx(0, 1)
    assert confirm_counterexample(CXCancellation, candidate) is None


# --------------------------------------------------------------------------- #
# End-to-end counterexamples from verify_pass
# --------------------------------------------------------------------------- #
def test_buggy_optimize_1q_counterexample_is_conditioned():
    result = verify_pass(BuggyOptimize1qGates)
    assert not result.verified
    example = result.counterexample
    assert example is not None and example.confirmed
    assert example.input_circuit is not None
    assert any(gate.is_conditioned() for gate in example.input_circuit)


def test_buggy_lookahead_counterexample_reports_non_termination():
    result = verify_pass(BuggyLookaheadSwap, pass_kwargs={"coupling": ibm_16q()})
    assert not result.verified
    example = result.counterexample
    assert example is not None
    assert example.kind == "non_termination"
    assert example.confirmed


def test_counterexample_search_can_be_disabled():
    result = verify_pass(BuggyOptimize1qGates, counterexample_search=False)
    assert not result.verified
    assert result.counterexample is None


# --------------------------------------------------------------------------- #
# Random-search fallback: seeded, explicit-rng, global-state clean
# --------------------------------------------------------------------------- #
def test_random_search_fallback_is_deterministic_without_an_rng():
    from repro.verify.counterexample import search_counterexample

    # No hint and no subgoals forces the random fallback; the default
    # seed makes it reproduce the same confirmed witness every time.
    first = search_counterexample(BuggyOptimize1qGates, [])
    second = search_counterexample(BuggyOptimize1qGates, [])
    assert first is not None and first.confirmed
    assert second is not None
    assert first.input_circuit.gates == second.input_circuit.gates


def test_random_search_threads_an_explicit_rng_and_spares_global_state():
    import random

    from repro.verify.counterexample import search_counterexample

    random.seed(99)
    expected_stream = random.random()
    random.seed(99)
    first = search_counterexample(BuggyOptimize1qGates, [],
                                  rng=random.Random(5), random_trials=12)
    second = search_counterexample(BuggyOptimize1qGates, [],
                                   rng=random.Random(5), random_trials=12)
    # The search must never consume from the global random module.
    assert random.random() == expected_stream
    assert first is not None and second is not None
    assert first.input_circuit.gates == second.input_circuit.gates
