"""Tests for the verifier core: session, templates, discharge, driver."""

import pytest

from repro.circuit import Gate, QCircuit
from repro.coupling import linear_device
from repro.errors import TranspilerError, UnsupportedPassError
from repro.verify import (
    Fact,
    GeneralPass,
    PathExplorer,
    Subgoal,
    SymCircuit,
    VerificationSession,
    analyze_pass,
    discharge,
    iterate_all_gates,
    verify_pass,
    while_gate_remaining,
)
from repro.verify import facts as F
from repro.verify.symvalues import SymGate


# --------------------------------------------------------------------------- #
# Session and path exploration
# --------------------------------------------------------------------------- #
def test_path_explorer_enumerates_all_branches():
    session = VerificationSession()
    explorer = PathExplorer(session)

    def runner():
        gate = session.fresh_gate()
        outcome = []
        if gate.is_cx_gate():
            outcome.append("cx")
        elif gate.is_barrier():
            outcome.append("barrier")
        else:
            outcome.append("other")
        return outcome

    records = explorer.explore(runner)
    results = {tuple(record.result) for record in records}
    assert results == {("cx",), ("barrier",), ("other",)}


def test_decided_facts_are_consistent_within_a_path():
    session = VerificationSession()
    explorer = PathExplorer(session)

    def runner():
        gate = session.fresh_gate()
        first = bool(gate.is_cx_gate())
        second = bool(gate.is_cx_gate())
        return first == second

    records = explorer.explore(runner)
    assert all(record.result for record in records)


def test_name_knowledge_propagates_to_classification_facts():
    session = VerificationSession()
    explorer = PathExplorer(session)

    def runner():
        gate = session.fresh_gate()
        if gate.is_cx_gate():
            # These must be answered without new forks.
            return (bool(gate.is_two_qubit()), bool(gate.is_directive()), bool(gate.is_self_inverse()))
        return None

    records = explorer.explore(runner)
    cx_paths = [record for record in records if record.result is not None]
    assert cx_paths and all(record.result == (True, False, True) for record in cx_paths)
    # Only one decision (the is_cx fork) should have been recorded on that path.
    assert all(len(record.decisions) == 1 for record in cx_paths)


def test_session_knows_does_not_fork():
    session = VerificationSession()
    session.begin_path(())
    gate = session.fresh_gate()
    assert session.knows(Fact(F.IS_CX, (gate.uid,))) is None
    session.assume(Fact(F.IS_CX, (gate.uid,)))
    assert session.knows(Fact(F.IS_CX, (gate.uid,))) is True
    assert session.knows(Fact(F.IS_BARRIER, (gate.uid,))) is False
    session.end_path()


# --------------------------------------------------------------------------- #
# Loop templates (concrete behaviour)
# --------------------------------------------------------------------------- #
def test_iterate_all_gates_concrete():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)

    def body(output, gate):
        output.append(gate)
        if gate.name == "h":
            output.append(Gate("x", (0,)))

    result = iterate_all_gates(circuit, body)
    assert [g.name for g in result] == ["h", "x", "cx"]


def test_while_gate_remaining_concrete_and_progress_guard():
    circuit = QCircuit(1)
    circuit.x(0)
    circuit.x(0)

    def body(output, remain):
        output.append(remain[0])
        remain.delete(0)

    result = while_gate_remaining(circuit, body)
    assert result.size() == 2

    def stuck_body(output, remain):
        pass

    with pytest.raises(TranspilerError):
        while_gate_remaining(circuit, stuck_body)


# --------------------------------------------------------------------------- #
# Discharge
# --------------------------------------------------------------------------- #
def test_discharge_identical_and_concrete_sequences():
    goal = Subgoal("equivalence", "same", lhs=(Gate("h", (0,)),), rhs=(Gate("h", (0,)),))
    assert discharge(goal).proved
    cancel = Subgoal(
        "equivalence", "cx pair",
        lhs=(),
        rhs=(Gate("cx", (0, 1)), Gate("cx", (0, 1))),
    )
    assert discharge(cancel).proved
    wrong = Subgoal("equivalence", "different", lhs=(Gate("x", (0,)),), rhs=(Gate("h", (0,)),))
    assert not discharge(wrong).proved


def test_discharge_termination_and_unchanged():
    assert discharge(Subgoal("termination", "ok", metadata={"deleted": 1})).proved
    assert not discharge(Subgoal("termination", "stuck", metadata={"deleted": 0})).proved
    assert discharge(Subgoal("unchanged", "same", lhs=("a",), rhs=("a",))).proved
    assert not discharge(Subgoal("unchanged", "diff", lhs=("a",), rhs=("b",))).proved


def test_discharge_symbolic_cancellation_requires_justification():
    """Two symbolic gates only cancel when the facts say they are the same CX."""
    session = VerificationSession()
    session.begin_path(())
    first, second = session.fresh_gate(), session.fresh_gate()
    justified = Subgoal(
        "equivalence", "cancel", lhs=(), rhs=(first, second),
        path_facts=(
            (Fact(F.IS_CX, (first.uid,)), True),
            (Fact(F.IS_CX, (second.uid,)), True),
            (Fact(F.SAME_QUBITS, (first.uid, second.uid)), True),
        ),
    )
    assert discharge(justified).proved
    unjustified = Subgoal(
        "equivalence", "cancel", lhs=(), rhs=(first, second),
        path_facts=((Fact(F.IS_CX, (first.uid,)), True),),
    )
    assert not discharge(unjustified).proved
    session.end_path()


# --------------------------------------------------------------------------- #
# Preprocessor
# --------------------------------------------------------------------------- #
def test_analyze_pass_reports_templates_and_branches():
    from repro.passes import CXCancellation, Width
    from repro.passes.unsupported import StochasticSwap

    analysis = analyze_pass(CXCancellation)
    assert analysis.supported
    assert "while_gate_remaining" in analysis.templates_used
    assert "next_gate" in analysis.utilities_used
    assert analysis.branch_count >= 2
    assert analysis.lines_of_code > 5

    trivial = analyze_pass(Width)
    assert trivial.supported and trivial.branch_count == 0

    unsupported = analyze_pass(StochasticSwap)
    assert not unsupported.supported


def test_raw_loops_without_templates_are_rejected():
    class RawLoopPass(GeneralPass):
        def run(self, circuit):
            total = 0
            while total < 10:
                total += 1
            return circuit

    result = verify_pass(RawLoopPass)
    assert not result.supported


# --------------------------------------------------------------------------- #
# verify_pass end to end
# --------------------------------------------------------------------------- #
def test_verify_pass_accepts_the_identity_pass():
    class IdentityPass(GeneralPass):
        def run(self, circuit):
            return circuit

    result = verify_pass(IdentityPass)
    assert result.verified
    assert result.num_subgoals == 1


def test_verify_pass_rejects_a_gate_dropping_pass():
    class DropEverything(GeneralPass):
        def run(self, circuit):
            def body(output, remain):
                remain.delete(0)

            return while_gate_remaining(circuit, body)

    result = verify_pass(DropEverything)
    assert result.supported and not result.verified
    assert any("equivalence" in reason for reason in result.failure_reasons)


def test_verify_pass_rejects_a_gate_injecting_pass():
    class InjectHadamard(GeneralPass):
        def run(self, circuit):
            def body(output, gate):
                output.append(gate)
                output.append(Gate("h", (0,)))

            return iterate_all_gates(circuit, body)

    result = verify_pass(InjectHadamard)
    assert not result.verified


def test_verify_pass_unsupported_report_matches_paper_breakdown():
    from repro.passes import UNSUPPORTED_PASSES

    results = [verify_pass(cls) for cls in UNSUPPORTED_PASSES]
    assert len(results) == 12
    assert all(not result.supported for result in results)
