"""Table 2 as a test: every supported pass verifies, quickly, push-button."""

import pytest

from repro.bench.table2 import pass_kwargs_for
from repro.passes import ALL_VERIFIED_PASSES, NEW_IN_032_PASSES, PASS_CATEGORIES
from repro.verify import verify_pass


@pytest.mark.parametrize("pass_class", ALL_VERIFIED_PASSES, ids=lambda cls: cls.__name__)
def test_pass_verifies(pass_class):
    result = verify_pass(pass_class, pass_kwargs=pass_kwargs_for(pass_class))
    assert result.supported, result.failure_reasons
    assert result.verified, result.failure_reasons
    assert result.num_subgoals >= 1
    # The paper reports every pass verifying within 30 seconds; this
    # reproduction is far faster, but keep the same bound as a regression guard.
    assert result.time_seconds < 30.0


def test_the_table_has_44_passes_in_the_papers_categories():
    assert len(ALL_VERIFIED_PASSES) == 44
    assert {name: len(passes) for name, passes in PASS_CATEGORIES.items()} == {
        "layout": 10,
        "routing": 3,
        "basis": 5,
        "optimization": 9,
        "analysis": 10,
        "assorted": 7,
    }


def test_new_qiskit_032_passes_also_verify():
    for pass_class in NEW_IN_032_PASSES:
        result = verify_pass(pass_class, pass_kwargs=pass_kwargs_for(pass_class))
        assert result.verified, (pass_class.__name__, result.failure_reasons)


def test_subgoal_counts_stay_small():
    """Branch expansion stays tractable (the paper observes at most 8 subgoals)."""
    for pass_class in ALL_VERIFIED_PASSES:
        result = verify_pass(pass_class, pass_kwargs=pass_kwargs_for(pass_class))
        assert result.num_subgoals <= 40
        assert result.paths_explored <= 16
