"""Bounded translation validation (repro.verify.bounded)."""

import pytest

from repro.coupling import linear_device
from repro.errors import ReproError
from repro.passes import BasicSwap, CXCancellation, Optimize1qGates
from repro.passes.buggy import BuggyCommutativeCancellation
from repro.verify import (
    BoundedValidationReport,
    sweep_bounded_validation,
    validate_pass_bounded,
)


def test_bounded_validation_accepts_a_correct_pass():
    report = validate_pass_bounded(CXCancellation, num_qubits=4, num_gates=12, trials=4)
    assert isinstance(report, BoundedValidationReport)
    assert report.pass_name == "CXCancellation"
    assert len(report.trials) == 4
    assert report.all_equivalent
    assert not report.failures
    assert report.total_seconds > 0.0


def test_bounded_validation_accepts_optimize_1q_gates():
    report = validate_pass_bounded(Optimize1qGates, num_qubits=3, num_gates=15, trials=3)
    assert report.all_equivalent


def test_bounded_validation_of_a_routing_pass():
    coupling = linear_device(5)
    report = validate_pass_bounded(
        BasicSwap,
        num_qubits=5,
        num_gates=12,
        trials=3,
        coupling=coupling,
        routing=True,
        clifford_only=True,
    )
    assert report.all_equivalent, [t.failure_reason for t in report.failures]


def test_bounded_validation_catches_a_buggy_pass_with_the_right_inputs():
    """The Section 7.2 bug shows up once random circuits contain the pattern."""
    failing = False
    for seed in range(0, 40, 5):
        report = validate_pass_bounded(
            BuggyCommutativeCancellation,
            num_qubits=3,
            num_gates=20,
            trials=5,
            seed=seed,
            clifford_only=True,
        )
        if not report.all_equivalent:
            failing = True
            break
    assert failing, "randomised bounded validation should eventually hit the bug"


def test_bounded_validation_refuses_registers_beyond_the_dense_limit():
    with pytest.raises(ReproError):
        validate_pass_bounded(CXCancellation, num_qubits=20, num_gates=10)


def test_sweep_reports_one_entry_per_size():
    reports = sweep_bounded_validation(CXCancellation, qubit_counts=[2, 3, 4], trials=2)
    assert [r.num_qubits for r in reports] == [2, 3, 4]
    assert all(r.all_equivalent for r in reports)
    assert all(r.num_gates == 4 * r.num_qubits for r in reports)


def test_trials_record_size_and_timing():
    report = validate_pass_bounded(CXCancellation, num_qubits=3, num_gates=9, trials=2)
    for trial in report.trials:
        assert trial.num_qubits == 3
        assert trial.seconds >= 0.0
        assert trial.equivalent
        assert trial.failure_reason == ""
