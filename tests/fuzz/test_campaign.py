"""End-to-end campaigns: buggy passes are caught, corpora are
byte-deterministic across worker counts, and replay is a regression gate."""

import json

import pytest

from repro.fuzz.campaign import (
    execute_fuzz_unit,
    fuzz_registry,
    replay_corpus,
    resolve_targets,
    run_campaign,
)
from repro.fuzz.corpus import (
    circuit_from_record,
    corpus_path,
    coupling_from_record,
    entry_to_line,
    load_corpus,
    load_meta,
)
from repro.fuzz.shrink import is_one_minimal
from repro.passes.buggy import BUGGY_PASSES

BUGGY_NAMES = sorted(cls.__name__ for cls in BUGGY_PASSES)

#: Bounded budget the buggy-catch satellite runs under: the hints plus a
#: handful of random cases must be enough for every known-buggy pass.
CATCH_SEED = 3
CATCH_CASES = 4


@pytest.fixture(scope="module")
def buggy_campaign(tmp_path_factory):
    # Module scope outruns the function-scoped autouse cache isolation, so
    # pin the proof cache away from $HOME here too.
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("proof-cache"))
    try:
        corpus_dir = str(tmp_path_factory.mktemp("fuzz-corpus"))
        result = run_campaign(CATCH_SEED, CATCH_CASES, corpus_dir=corpus_dir,
                              passes=BUGGY_NAMES)
        yield result, corpus_dir
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous


# --------------------------------------------------------------------------- #
# Satellite: every known-buggy pass is caught, minimally
# --------------------------------------------------------------------------- #
def test_every_buggy_pass_is_caught_within_budget(buggy_campaign):
    result, _ = buggy_campaign
    assert sorted({entry["pass"] for entry in result.entries}) == BUGGY_NAMES
    assert not result.ok
    assert result.unit_failures == []


def test_every_reproducer_is_locally_one_minimal(buggy_campaign):
    result, _ = buggy_campaign
    registry = fuzz_registry(include_buggy=True)
    for entry in result.entries:
        assert entry["shrink"]["minimal"], entry["case_id"]
        circuit = circuit_from_record(entry["circuit"])
        coupling = coupling_from_record(entry["device"])
        assert is_one_minimal(registry[entry["pass"]], circuit, coupling,
                              kind=entry["kind"]), entry["case_id"]
        assert len(circuit.gates) <= entry["original_gates"]


def test_failing_entries_carry_their_symbolic_diagnosis(buggy_campaign):
    result, _ = buggy_campaign
    for entry in result.entries:
        block = entry["verifier"]
        # The verifier rejects every known-buggy pass, so the fuzz hit and
        # the symbolic verdict agree — and the partial derivation travels.
        assert block["verified"] is False
        assert block["failing_subgoals"]
        for subgoal in block["failing_subgoals"]:
            assert subgoal["description"]
            certificate = subgoal["certificate"]
            if certificate is not None:
                assert "wall_seconds" not in certificate


def test_campaign_counters_are_recorded(buggy_campaign):
    result, _ = buggy_campaign
    counters = result.counters
    assert counters["repro_fuzz_cases_total"] >= CATCH_CASES
    assert counters["repro_fuzz_checks_total"] >= CATCH_CASES * len(BUGGY_NAMES)
    assert counters["repro_fuzz_failures_total"] == len(result.entries)
    assert counters["repro_fuzz_shrink_checks_total"] > 0


# --------------------------------------------------------------------------- #
# Replay as a regression unit
# --------------------------------------------------------------------------- #
def test_replay_reproduces_every_entry(buggy_campaign):
    _, corpus_dir = buggy_campaign
    report = replay_corpus(corpus_dir)
    assert report.ok
    assert report.total == report.reproduced > 0
    assert report.corrupt_lines == 0
    assert report.counters()["repro_fuzz_replays_total"] == report.total


def test_replay_flags_tampered_entries(buggy_campaign, tmp_path):
    _, corpus_dir = buggy_campaign
    entries, _ = load_corpus(corpus_dir)
    tampered_dir = str(tmp_path / "tampered")
    tampered = [dict(entries[0], kind="crash"
                     if entries[0]["kind"] != "crash" else "semantics"),
                dict(entries[1], **{"pass": "NoSuchPass"})]
    import os

    os.makedirs(tampered_dir)
    with open(corpus_path(tampered_dir), "w", encoding="utf-8") as handle:
        for entry in tampered:
            handle.write(entry_to_line(entry) + "\n")
    report = replay_corpus(tampered_dir)
    assert not report.ok
    assert len(report.mismatches) == 2
    assert {m["actual"] for m in report.mismatches} & {"unknown-pass"}


# --------------------------------------------------------------------------- #
# Determinism: runs, processes, and worker counts all agree on the bytes
# --------------------------------------------------------------------------- #
def _corpus_bytes(corpus_dir):
    with open(corpus_path(corpus_dir), "rb") as handle:
        return handle.read()


def test_corpus_bytes_identical_across_runs(buggy_campaign, tmp_path):
    _, corpus_dir = buggy_campaign
    rerun_dir = str(tmp_path / "rerun")
    run_campaign(CATCH_SEED, CATCH_CASES, corpus_dir=rerun_dir,
                 passes=BUGGY_NAMES)
    assert _corpus_bytes(rerun_dir) == _corpus_bytes(corpus_dir)


def test_corpus_bytes_identical_across_worker_counts(buggy_campaign, tmp_path):
    _, corpus_dir = buggy_campaign
    workers_dir = str(tmp_path / "workers2")
    result = run_campaign(CATCH_SEED, CATCH_CASES, corpus_dir=workers_dir,
                          passes=BUGGY_NAMES, workers=2)
    assert result.unit_failures == []
    assert _corpus_bytes(workers_dir) == _corpus_bytes(corpus_dir)


def test_meta_records_the_campaign_configuration(buggy_campaign):
    result, corpus_dir = buggy_campaign
    meta = load_meta(corpus_dir)
    assert meta["seed"] == CATCH_SEED
    assert meta["cases"] == CATCH_CASES
    assert meta["passes"] == BUGGY_NAMES
    assert meta["failures"] == len(result.entries)
    assert meta["counters"] == result.counters


def test_metrics_prom_sidecar_is_written(buggy_campaign):
    import os

    _, corpus_dir = buggy_campaign
    path = os.path.join(corpus_dir, "metrics.prom")
    with open(path, "r", encoding="utf-8") as handle:
        body = handle.read()
    assert "repro_fuzz_cases_total" in body


# --------------------------------------------------------------------------- #
# Work units
# --------------------------------------------------------------------------- #
def test_execute_fuzz_unit_is_pure():
    spec = {"name": "fuzz[0:3]", "seed": CATCH_SEED, "indices": [0, 1, 2],
            "passes": ["BuggyOptimize1qGates"], "config": {}}
    first = execute_fuzz_unit(spec)
    second = execute_fuzz_unit(spec)
    assert first == second
    assert first["cases"] == 3


def test_unit_chunking_never_changes_the_entry_set():
    passes = ["BuggyOptimize1qGates"]
    whole = execute_fuzz_unit({"name": "w", "seed": 5, "indices": list(range(6)),
                               "passes": passes, "config": {}})
    halves = [execute_fuzz_unit({"name": "h", "seed": 5, "indices": chunk,
                                 "passes": passes, "config": {}})
              for chunk in ([0, 1, 2], [3, 4, 5])]
    merged = sorted((e["case_id"] for p in halves for e in p["entries"]))
    assert merged == sorted(e["case_id"] for e in whole["entries"])


def test_execute_fuzz_unit_rejects_unknown_passes():
    with pytest.raises(ValueError, match="unknown fuzz target"):
        execute_fuzz_unit({"name": "x", "seed": 0, "indices": [0],
                           "passes": ["NoSuchPass"], "config": {}})


def test_resolve_targets_validates_names():
    with pytest.raises(ValueError, match="NoSuchPass"):
        resolve_targets(["NoSuchPass"], include_buggy=True)
    names = [name for name, _ in resolve_targets(None, include_buggy=True)]
    assert set(BUGGY_NAMES) <= set(names)
    honest = [name for name, _ in resolve_targets(None, include_buggy=False)]
    assert not set(BUGGY_NAMES) & set(honest)


def test_run_campaign_unknown_pass_raises():
    with pytest.raises(ValueError, match="unknown fuzz target"):
        run_campaign(0, 1, passes=["NoSuchPass"])


def test_entries_are_json_serialisable(buggy_campaign):
    result, _ = buggy_campaign
    json.dumps(result.entries)
