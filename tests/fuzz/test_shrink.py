"""Delta-debugging minimisation: convergence, budget, and 1-minimality."""

import pytest

from repro.circuit import Gate, QCircuit
from repro.circuit.random import random_circuit
from repro.fuzz.oracle import differential_check
from repro.fuzz.shrink import (
    DEFAULT_SHRINK_BUDGET,
    ShrinkResult,
    is_one_minimal,
    shrink_failure,
)


class _HatesConditionedH:
    """Fails (drops a gate) iff the circuit contains a conditioned ``h``."""

    def __call__(self, circuit):
        gates = list(circuit.gates)
        if any(g.name == "h" and g.is_conditioned() for g in gates):
            gates = gates[:-1]
        return QCircuit(circuit.num_qubits, circuit.num_clbits,
                        gates=gates, name=circuit.name)


def _noisy_failing_circuit():
    """A conditioned ``h`` buried in twelve gates of noise."""
    circuit = random_circuit(4, 11, seed=9, num_clbits=2)
    gates = list(circuit.gates)
    gates.insert(5, Gate("h", (2,), condition=(1, 1)))
    gates.append(Gate("x", (0,)))
    return QCircuit(4, 2, gates=gates)


def test_shrink_reduces_to_the_responsible_core():
    circuit = _noisy_failing_circuit()
    failure = differential_check(_HatesConditionedH, circuit)
    assert failure is not None
    result = shrink_failure(_HatesConditionedH, circuit, failure)
    assert isinstance(result, ShrinkResult)
    assert result.minimal
    assert result.failure.kind == failure.kind
    # A lone conditioned h already triggers the bug, so ddmin should get
    # all the way down (allow a little slack for plateaued reductions).
    assert len(result.circuit.gates) <= 2
    assert any(g.name == "h" and g.is_conditioned()
               for g in result.circuit.gates)
    assert result.steps > 0
    assert 0 < result.checks <= DEFAULT_SHRINK_BUDGET


def test_shrunk_circuit_still_fails_the_oracle():
    circuit = _noisy_failing_circuit()
    failure = differential_check(_HatesConditionedH, circuit)
    result = shrink_failure(_HatesConditionedH, circuit, failure)
    confirmed = differential_check(_HatesConditionedH, result.circuit)
    assert confirmed is not None
    assert confirmed.kind == failure.kind


def test_shrink_compacts_unused_wires():
    circuit = _noisy_failing_circuit()
    failure = differential_check(_HatesConditionedH, circuit)
    result = shrink_failure(_HatesConditionedH, circuit, failure)
    used = {q for g in result.circuit.gates for q in g.all_qubits}
    assert result.circuit.num_qubits == max(1, len(used))
    assert used == set(range(len(used)))  # densely renumbered


def test_exhausted_budget_reports_not_minimal():
    circuit = _noisy_failing_circuit()
    failure = differential_check(_HatesConditionedH, circuit)
    result = shrink_failure(_HatesConditionedH, circuit, failure, budget=3)
    assert not result.minimal
    assert result.checks <= 3
    # Whatever survived must still be the same confirmed failure.
    assert differential_check(_HatesConditionedH, result.circuit) is not None


def test_shrink_is_deterministic():
    circuit = _noisy_failing_circuit()
    failure = differential_check(_HatesConditionedH, circuit)
    a = shrink_failure(_HatesConditionedH, circuit, failure)
    b = shrink_failure(_HatesConditionedH, circuit, failure)
    assert a.circuit.gates == b.circuit.gates
    assert (a.steps, a.checks, a.minimal) == (b.steps, b.checks, b.minimal)


def test_is_one_minimal_distinguishes_reducible_circuits():
    minimal = QCircuit(1, 2, gates=[Gate("h", (0,), condition=(0, 1))])
    assert differential_check(_HatesConditionedH, minimal) is not None
    assert is_one_minimal(_HatesConditionedH, minimal)
    padded = QCircuit(2, 2, gates=list(minimal.gates) + [Gate("x", (1,))])
    assert not is_one_minimal(_HatesConditionedH, padded)
