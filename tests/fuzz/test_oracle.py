"""The differential oracle: classification, per-type checks, cross-check."""

import pytest

from repro.circuit import Gate, QCircuit
from repro.coupling.devices import linear_device
from repro.errors import CircuitError, TranspilerError
from repro.fuzz.campaign import fuzz_registry
from repro.fuzz.generate import generate_case, normalize_config
from repro.fuzz.oracle import (
    _measurement_absorbed_equivalent,
    differential_check,
    fuzz_pass_kwargs,
)
from repro.passes import RemoveDiagonalGatesBeforeMeasure
from repro.passes.buggy import BuggyLookaheadSwap


# --------------------------------------------------------------------------- #
# Constructor kwargs
# --------------------------------------------------------------------------- #
class _TakesCoupling:
    def __init__(self, coupling=None):
        self.coupling = coupling


class _NoKwargs:
    def __init__(self):
        pass


def test_fuzz_pass_kwargs_detects_coupling_parameter():
    device = linear_device(3)
    assert fuzz_pass_kwargs(_TakesCoupling, device) == {"coupling": device}
    assert fuzz_pass_kwargs(_NoKwargs, device) == {}
    assert fuzz_pass_kwargs(_TakesCoupling, None) == {}


def test_fuzz_pass_kwargs_covers_buggy_routing_pass():
    """BuggyLookaheadSwap is outside COUPLING_PASSES but takes a coupling."""
    device = linear_device(3)
    assert fuzz_pass_kwargs(BuggyLookaheadSwap, device) == {"coupling": device}


# --------------------------------------------------------------------------- #
# Verdict classification via dummy passes
# --------------------------------------------------------------------------- #
class _Aborts:
    def __call__(self, circuit):
        raise TranspilerError("stuck")


class _Crashes:
    def __call__(self, circuit):
        raise CircuitError("boom")


class _ReturnsGarbage:
    def __call__(self, circuit):
        return "not a circuit"


class _Identity:
    def __call__(self, circuit):
        return circuit


class _DropsFirstGate:
    def __call__(self, circuit):
        return QCircuit(circuit.num_qubits, circuit.num_clbits,
                        gates=circuit.gates[1:], name=circuit.name)


class _AnalysisThatEdits:
    pass_type = "analysis"

    def __call__(self, circuit):
        return QCircuit(circuit.num_qubits, circuit.num_clbits,
                        gates=circuit.gates[1:], name=circuit.name)


@pytest.fixture
def bell():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


def test_transpiler_error_classifies_as_non_termination(bell):
    failure = differential_check(_Aborts, bell)
    assert failure.kind == "non_termination"
    assert failure.confirmed


def test_repro_error_classifies_as_crash(bell):
    assert differential_check(_Crashes, bell).kind == "crash"


def test_non_circuit_return_classifies_as_crash(bell):
    assert differential_check(_ReturnsGarbage, bell).kind == "crash"


def test_identity_pass_is_clean(bell):
    assert differential_check(_Identity, bell) is None


def test_semantic_divergence_is_flagged(bell):
    failure = differential_check(_DropsFirstGate, bell)
    assert failure.kind == "semantics"
    assert failure.output_circuit is not None


def test_analysis_pass_must_not_touch_the_gate_list(bell):
    failure = differential_check(_AnalysisThatEdits, bell)
    assert failure.kind == "semantics"
    assert "analysis" in failure.description


def test_input_circuit_is_never_mutated(bell):
    gates_before = bell.gates
    differential_check(_DropsFirstGate, bell)
    assert bell.gates == gates_before


# --------------------------------------------------------------------------- #
# Measurement-absorbed diagonal phases
# --------------------------------------------------------------------------- #
def _measured(gates_fn):
    circuit = QCircuit(2, 2)
    gates_fn(circuit)
    circuit.measure(0, 0)
    return circuit


def test_diagonal_before_measure_is_absorbed():
    left = _measured(lambda c: (c.h(0), c.z(0)))
    right = _measured(lambda c: c.h(0))
    assert _measurement_absorbed_equivalent(left, right)


def test_non_diagonal_difference_is_not_absorbed():
    left = _measured(lambda c: (c.h(0), c.x(0)))
    right = _measured(lambda c: c.h(0))
    assert not _measurement_absorbed_equivalent(left, right)


def test_diagonal_on_unmeasured_qubit_is_not_absorbed():
    """A dropped phase on an *unmeasured* qubit changes the residual state."""
    left = _measured(lambda c: (c.h(0), c.h(1), c.z(1)))
    right = _measured(lambda c: (c.h(0), c.h(1)))
    assert not _measurement_absorbed_equivalent(left, right)


def test_unmeasured_circuits_are_never_absorbed():
    left = QCircuit(1).z(0)
    right = QCircuit(1)
    assert not _measurement_absorbed_equivalent(left, right)


def test_remove_diagonal_before_measure_is_clean_end_to_end():
    circuit = QCircuit(2, 2)
    circuit.h(0)
    circuit.z(0)
    circuit.rz(0.7, 0)
    circuit.measure(0, 0)
    output = RemoveDiagonalGatesBeforeMeasure()(circuit.copy())
    assert len(output.gates) < len(circuit.gates)  # the pass really fires
    assert differential_check(RemoveDiagonalGatesBeforeMeasure, circuit) is None


def test_conditioned_diagonal_before_measure_is_judged_per_assignment():
    """The fuzzer's minimal reproducer shape: conditioned gate + rz + measure."""
    circuit = QCircuit(1, 2, gates=[
        Gate("t", (0,), condition=(0, 0)),
        Gate("rz", (0,), (1.1,)),
        Gate("measure", (0,), clbits=(1,)),
    ])
    output = RemoveDiagonalGatesBeforeMeasure()(circuit.copy())
    assert len(output.gates) < len(circuit.gates)
    assert differential_check(RemoveDiagonalGatesBeforeMeasure, circuit) is None


# --------------------------------------------------------------------------- #
# Satellite: symbolic verdict agrees with the dense oracle on honest passes
# --------------------------------------------------------------------------- #
def test_every_honest_pass_survives_the_dense_oracle():
    """For seeded circuits, no registered (non-buggy) pass diverges.

    This is the cross-check half of the differential pair: the verifier
    says these passes are correct, so the concrete oracle must find no
    counterexample on any generated case.
    """
    registry = fuzz_registry(include_buggy=False)
    assert len(registry) >= 40
    config = normalize_config({"device": "linear"})
    disagreements = []
    for index in range(4):
        case = generate_case(11, index, config)
        for name in sorted(registry):
            failure = differential_check(registry[name], case.circuit,
                                         case.coupling)
            if failure is not None:
                disagreements.append((name, index, failure.kind))
    assert disagreements == []
