"""Seeded case generation: determinism, validity, and config handling."""

import pytest

from repro.circuit.random import random_circuit
from repro.fuzz.generate import (
    DEFAULT_FUZZ_CONFIG,
    case_seed,
    coupling_for,
    generate_case,
    normalize_config,
)
from repro.linalg.unitary import MAX_DENSE_QUBITS


# --------------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------------- #
def test_same_triple_yields_identical_cases():
    for index in range(10):
        a = generate_case(7, index)
        b = generate_case(7, index)
        assert a.case_id == b.case_id
        assert a.seed == b.seed
        assert a.circuit.gates == b.circuit.gates
        assert a.circuit.num_qubits == b.circuit.num_qubits
        assert a.circuit.num_clbits == b.circuit.num_clbits
        assert a.coupling.edges == b.coupling.edges


def test_cases_are_independent_of_generation_order():
    forward = [generate_case(3, i).circuit.gates for i in range(6)]
    backward = [generate_case(3, i).circuit.gates for i in reversed(range(6))]
    assert forward == list(reversed(backward))


def test_different_seeds_give_different_cases():
    a = generate_case(1, 0)
    b = generate_case(2, 0)
    assert a.circuit.gates != b.circuit.gates


def test_case_seed_mix_keeps_adjacent_campaigns_apart():
    overlap = {case_seed(1, i) for i in range(100)} & \
        {case_seed(2, i) for i in range(100)}
    assert not overlap


# --------------------------------------------------------------------------- #
# Validity
# --------------------------------------------------------------------------- #
def test_generated_circuits_always_validate():
    for index in range(25):
        case = generate_case(42, index)
        case.circuit.validate()  # raises CircuitError on any malformed gate
        assert case.coupling.num_qubits >= case.circuit.num_qubits
        assert case.coupling.connected


def test_generation_covers_conditioned_and_measured_circuits():
    cases = [generate_case(0, i) for i in range(40)]
    assert any(
        g.is_conditioned() for case in cases for g in case.circuit.gates
    ), "p_conditioned default never produced a conditioned gate"
    assert any(
        g.is_measurement() for case in cases for g in case.circuit.gates
    ), "p_measure default never produced a measured circuit"


# --------------------------------------------------------------------------- #
# Config normalisation
# --------------------------------------------------------------------------- #
def test_normalize_config_fills_defaults_and_clamps():
    config = normalize_config(None)
    assert config == normalize_config({})
    for key in DEFAULT_FUZZ_CONFIG:
        assert key in config
    clamped = normalize_config({"max_qubits": 99, "min_qubits": 50,
                                "min_gates": -3, "max_gates": -7})
    assert clamped["max_qubits"] == MAX_DENSE_QUBITS
    assert clamped["min_qubits"] == MAX_DENSE_QUBITS
    assert clamped["min_gates"] == 0
    assert clamped["max_gates"] == 0


def test_normalize_config_does_not_mutate_input():
    original = {"max_qubits": 3}
    normalize_config(original)
    assert original == {"max_qubits": 3}


def test_generated_sizes_respect_config_bounds():
    config = {"min_qubits": 2, "max_qubits": 3, "min_gates": 1, "max_gates": 4}
    for index in range(20):
        case = generate_case(5, index, config)
        assert 2 <= case.circuit.num_qubits <= 3
        assert 1 <= len(
            [g for g in case.circuit.gates if not g.is_measurement()]
        ) <= 4


# --------------------------------------------------------------------------- #
# Devices
# --------------------------------------------------------------------------- #
def test_coupling_for_uses_named_device_when_big_enough():
    device = coupling_for(4, "ibm_16q")
    assert device.num_qubits == 16


def test_coupling_for_degrades_small_or_unknown_devices_to_linear():
    assert coupling_for(4, "no-such-device").num_qubits == 4
    chain = coupling_for(1, "linear")
    assert chain.num_qubits == 2  # a 1-qubit "chain" still needs an edge
    assert chain.connected


# --------------------------------------------------------------------------- #
# The underlying random_circuit stream
# --------------------------------------------------------------------------- #
def test_random_circuit_stream_compat_without_conditions():
    """``p_conditioned=0`` must not perturb the pre-existing rng stream."""
    legacy = random_circuit(3, 8, seed=11)
    extended = random_circuit(3, 8, seed=11, num_clbits=2, p_conditioned=0.0)
    assert legacy.gates == extended.gates


@pytest.mark.parametrize("seed", [0, 1, 123456789])
def test_random_circuit_seeded_determinism(seed):
    a = random_circuit(4, 10, seed=seed, measure=True,
                       num_clbits=2, p_conditioned=0.3)
    b = random_circuit(4, 10, seed=seed, measure=True,
                       num_clbits=2, p_conditioned=0.3)
    assert a.gates == b.gates
