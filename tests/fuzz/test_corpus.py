"""The JSONL failure corpus: round-trips, canonical bytes, tolerant loads."""

import json
import os

from repro.circuit import Gate, QCircuit
from repro.coupling.devices import linear_device
from repro.fuzz.corpus import (
    CORPUS_SCHEMA_VERSION,
    circuit_from_record,
    circuit_to_record,
    corpus_path,
    coupling_from_record,
    coupling_to_record,
    entry_sort_key,
    entry_to_line,
    gate_from_record,
    gate_to_record,
    load_corpus,
    load_meta,
    meta_path,
    write_corpus,
)
from repro.fuzz.generate import generate_case


# --------------------------------------------------------------------------- #
# Record round-trips
# --------------------------------------------------------------------------- #
def test_gate_record_round_trip_covers_every_field():
    gate = Gate("u3", (2,), (0.1, 0.2, 0.3), clbits=(),
                condition=(1, 0), label="tagged")
    assert gate_from_record(gate_to_record(gate)) == gate
    plain = Gate("cx", (0, 1))
    record = gate_to_record(plain)
    assert set(record) == {"name", "qubits"}  # defaults omitted for bytes
    assert gate_from_record(record) == plain


def test_circuit_record_round_trip_on_generated_cases():
    for index in range(10):
        circuit = generate_case(13, index).circuit
        restored = circuit_from_record(circuit_to_record(circuit))
        assert restored.gates == circuit.gates
        assert restored.num_qubits == circuit.num_qubits
        assert restored.num_clbits == circuit.num_clbits
        assert restored.name == circuit.name


def test_coupling_record_round_trip():
    device = linear_device(4)
    restored = coupling_from_record(coupling_to_record(device))
    assert restored.num_qubits == device.num_qubits
    assert set(restored.edges) == set(device.edges)
    assert coupling_to_record(None) is None
    assert coupling_from_record(None) is None


def test_record_is_json_shaped():
    circuit = generate_case(1, 0).circuit
    json.dumps(circuit_to_record(circuit))  # must not need a custom encoder


# --------------------------------------------------------------------------- #
# Canonical bytes
# --------------------------------------------------------------------------- #
def _entry(pass_name, case_id, kind="semantics"):
    return {
        "schema": CORPUS_SCHEMA_VERSION,
        "pass": pass_name,
        "case_id": case_id,
        "kind": kind,
        "circuit": circuit_to_record(QCircuit(1, gates=[Gate("x", (0,))])),
    }


def test_write_corpus_sorts_entries_canonically(tmp_path):
    entries = [_entry("B", "seed:2"), _entry("A", "seed:9"), _entry("A", "seed:1")]
    shuffled = [entries[2], entries[0], entries[1]]
    path_a = write_corpus(str(tmp_path / "a"), entries)
    path_b = write_corpus(str(tmp_path / "b"), shuffled)
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        assert fa.read() == fb.read()
    loaded, corrupt = load_corpus(str(tmp_path / "a"))
    assert corrupt == 0
    assert [entry_sort_key(e) for e in loaded] == sorted(
        entry_sort_key(e) for e in entries)


def test_entry_lines_are_canonical_json():
    line = entry_to_line({"b": 1, "a": {"z": 2, "y": 3}})
    assert line == '{"a":{"y":3,"z":2},"b":1}'


def test_load_corpus_skips_corrupt_and_foreign_schema_lines(tmp_path):
    corpus_dir = str(tmp_path)
    write_corpus(corpus_dir, [_entry("A", "seed:1")])
    with open(corpus_path(corpus_dir), "a", encoding="utf-8") as handle:
        handle.write("this is not json\n")
        handle.write('"a bare string"\n')
        handle.write(entry_to_line({**_entry("B", "seed:2"), "schema": 99}) + "\n")
        handle.write("\n")  # blank lines are fine, not corruption
        handle.write(entry_to_line(_entry("C", "seed:3")) + "\n")
    entries, corrupt = load_corpus(corpus_dir)
    assert corrupt == 3
    assert [e["pass"] for e in entries] == ["A", "C"]


def test_load_corpus_on_missing_directory_is_empty():
    entries, corrupt = load_corpus("/nonexistent/fuzz-corpus")
    assert entries == [] and corrupt == 0


def test_write_corpus_leaves_no_temp_files(tmp_path):
    corpus_dir = str(tmp_path)
    write_corpus(corpus_dir, [_entry("A", "seed:1")], meta={"seed": 1})
    leftovers = [n for n in os.listdir(corpus_dir) if n.endswith(".tmp")]
    assert leftovers == []
    assert os.path.exists(meta_path(corpus_dir))


def test_meta_round_trip_and_tolerance(tmp_path):
    corpus_dir = str(tmp_path)
    meta = {"schema": CORPUS_SCHEMA_VERSION, "seed": 7, "cases": 3}
    write_corpus(corpus_dir, [], meta=meta)
    assert load_meta(corpus_dir) == meta
    with open(meta_path(corpus_dir), "w", encoding="utf-8") as handle:
        handle.write("{broken")
    assert load_meta(corpus_dir) is None
    assert load_meta(str(tmp_path / "missing")) is None
