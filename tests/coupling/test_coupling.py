"""Tests for coupling maps, layouts, and device topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coupling import (
    CouplingMap,
    Layout,
    device,
    fully_connected_device,
    grid_device,
    ibm_16q,
    ibm_27q_falcon,
    ibm_5q_tenerife,
    linear_device,
    ring_device,
)
from repro.errors import CouplingError


def test_coupling_basics():
    cm = CouplingMap([(0, 1), (1, 2)])
    assert cm.num_qubits == 3
    assert cm.connected(0, 1) and cm.connected(1, 0)
    assert cm.has_edge(0, 1) and not cm.has_edge(1, 0)
    assert not cm.connected(0, 2)
    assert cm.neighbors(1) == [0, 2]


def test_self_loops_rejected():
    with pytest.raises(CouplingError):
        CouplingMap([(1, 1)])


def test_distance_and_shortest_path():
    cm = linear_device(6)
    assert cm.distance(0, 5) == 5
    assert cm.shortest_path(0, 3) == [0, 1, 2, 3]
    assert cm.distance(2, 2) == 0
    with pytest.raises(CouplingError):
        cm.distance(0, 10)


def test_disconnected_map():
    cm = CouplingMap([(0, 1), (2, 3)])
    assert not cm.is_connected()
    with pytest.raises(CouplingError):
        cm.shortest_path(0, 3)


def test_subgraph_relabels():
    cm = linear_device(5)
    sub = cm.subgraph([2, 3, 4])
    assert sub.num_qubits == 3
    assert sub.connected(0, 1) and sub.connected(1, 2) and not sub.connected(0, 2)


def test_device_registry_and_topologies():
    assert device("ibm_16q").num_qubits == 16
    assert ibm_5q_tenerife().num_qubits == 5
    assert ibm_27q_falcon().num_qubits == 27
    with pytest.raises(KeyError):
        device("does_not_exist")
    assert ring_device(5).distance(0, 3) == 2
    assert grid_device(3, 3).distance(0, 8) == 4
    full = fully_connected_device(5)
    assert all(full.connected(a, b) for a in range(5) for b in range(5) if a != b)


def test_ibm16_is_the_figure10_topology():
    cm = ibm_16q()
    assert cm.num_qubits == 16
    assert cm.is_connected()
    # The four "corners" used in the counterexample are pairwise distant ...
    assert cm.distance(0, 7) >= 4
    assert cm.distance(8, 15) >= 4
    # ... but adjacent around the ring ends.
    assert cm.connected(0, 15)
    assert cm.connected(7, 8)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 12), st.integers(0, 11), st.integers(0, 11))
def test_distance_is_a_metric_on_lines(n, a, b):
    cm = linear_device(n)
    a, b = a % n, b % n
    assert cm.distance(a, b) == abs(a - b)
    assert cm.distance(a, b) == cm.distance(b, a)


# --------------------------------------------------------------------------- #
# Layouts
# --------------------------------------------------------------------------- #
def test_layout_trivial_and_lookup():
    layout = Layout.trivial(3)
    assert layout.physical(2) == 2
    assert layout.logical(1) == 1
    assert len(layout) == 3
    assert 2 in layout and 5 not in layout


def test_layout_assign_conflicts():
    layout = Layout({0: 1})
    with pytest.raises(CouplingError):
        layout.assign(0, 2)
    with pytest.raises(CouplingError):
        layout.assign(3, 1)


def test_layout_swap_moves_contents():
    layout = Layout.trivial(3)
    layout.swap(0, 2)
    assert layout.physical(0) == 2
    assert layout.physical(2) == 0
    assert layout.logical(2) == 0


def test_layout_as_permutation_pads_missing():
    layout = Layout({0: 2})
    perm = layout.as_permutation(3)
    assert perm[0] == 2
    assert sorted(perm) == [0, 1, 2]


def test_layout_from_physical_order_and_copy():
    layout = Layout.from_physical_order([3, 1, 0])
    assert layout.physical(0) == 3
    clone = layout.copy()
    clone.swap(3, 1)
    assert layout.physical(0) == 3 and clone.physical(0) == 1
