"""Device topologies and the device registry."""

import pytest

from repro.coupling import (
    DEVICE_REGISTRY,
    CouplingMap,
    device,
    fully_connected_device,
    grid_device,
    ibm_5q_tenerife,
    ibm_16q,
    ibm_20q_tokyo,
    ibm_27q_falcon,
    linear_device,
    ring_device,
)


@pytest.mark.parametrize("name", sorted(DEVICE_REGISTRY))
def test_registered_devices_are_connected(name):
    topology = device(name)
    assert isinstance(topology, CouplingMap)
    assert topology.num_qubits >= 2
    assert topology.is_connected()


def test_unknown_device_raises_key_error():
    with pytest.raises(KeyError):
        device("not_a_device")


def test_linear_device_distances_are_path_lengths():
    line = linear_device(6)
    assert line.distance(0, 5) == 5
    assert line.distance(2, 3) == 1
    assert line.shortest_path(0, 3) == [0, 1, 2, 3]


def test_ring_device_wraps_around():
    ring = ring_device(8)
    assert ring.distance(0, 7) == 1
    assert ring.distance(0, 4) == 4


def test_grid_device_shape():
    grid = grid_device(3, 4)
    assert grid.num_qubits == 12
    # Corner qubit has two neighbours, interior qubit has four.
    assert len(grid.neighbors(0)) == 2
    assert len(grid.neighbors(5)) == 4
    assert grid.distance(0, 11) == (3 - 1) + (4 - 1)


def test_fully_connected_device_has_distance_one_everywhere():
    full = fully_connected_device(6)
    assert all(full.distance(a, b) == 1 for a in range(6) for b in range(6) if a != b)


def test_ibm_16q_matches_figure_10():
    topology = ibm_16q()
    assert topology.num_qubits == 16
    # The four "corner" qubits of the paper's counterexample are pairwise
    # non-adjacent, which is what makes the lookahead_swap loop possible.
    corners = (0, 8, 7, 15)
    adjacent_pairs = [
        (a, b) for a in corners for b in corners if a < b and topology.connected(a, b)
    ]
    assert (7, 8) in adjacent_pairs or (8, 7) in adjacent_pairs
    assert not topology.connected(0, 8)
    assert not topology.connected(0, 7)
    assert not topology.connected(8, 15)


def test_ibm_5q_tenerife_bowtie():
    topology = ibm_5q_tenerife()
    assert topology.num_qubits == 5
    assert topology.connected(2, 0) and topology.connected(2, 4)


def test_ibm_20q_tokyo_has_diagonal_couplers():
    topology = ibm_20q_tokyo()
    assert topology.num_qubits == 20
    assert topology.connected(1, 7)      # a diagonal coupler
    assert topology.connected(0, 1)      # a grid edge
    assert not topology.connected(0, 19)


def test_ibm_27q_falcon_is_sparse():
    topology = ibm_27q_falcon()
    assert topology.num_qubits == 27
    assert topology.is_connected()
    average_degree = 2 * len(topology.undirected_edges()) / topology.num_qubits
    assert average_degree < 3.0


def test_subgraph_restricts_edges():
    grid = grid_device(3, 3)
    sub = grid.subgraph([0, 1, 2])
    assert sub.num_qubits == 3
    assert sub.connected(0, 1) and sub.connected(1, 2)
    assert not sub.connected(0, 2)


def test_distance_matrix_is_symmetric_for_undirected_reachability():
    topology = ibm_16q()
    matrix = topology.distance_matrix()
    for a in range(16):
        for b in range(16):
            assert matrix[a][b] == matrix[b][a]
            if a == b:
                assert matrix[a][b] == 0
