"""Concrete (run-time) behaviour of the verified passes.

The verifier proves semantic preservation symbolically; these tests check the
same property on concrete random circuits against the dense-matrix oracle,
plus each pass's intended effect (cancellation, merging, routing, ...).
"""

import math

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QCircuit, random_circuit, random_clifford_circuit
from repro.coupling import Layout, ibm_16q, linear_device
from repro.linalg import (
    circuits_equivalent,
    circuits_equivalent_under_relabelling,
    circuits_equivalent_up_to_permutation,
)
from repro.passes import (
    ApplyLayout,
    BarrierBeforeFinalMeasurements,
    BasicSwap,
    BasisTranslator,
    CommutativeCancellation,
    ConsolidateBlocks,
    CXCancellation,
    CXDirection,
    Decompose,
    EnlargeWithAncilla,
    GateDirection,
    LookaheadSwap,
    MergeAdjacentBarriers,
    Optimize1qGates,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveFinalMeasurements,
    RemoveResetInZeroState,
    SabreSwap,
    SetLayout,
    TrivialLayout,
    Unroller,
)
from repro.symbolic import conforms_to_coupling, equivalent_up_to_swaps
from repro.utility.analysis_ops import check_gate_direction
from repro.verify import PropertySet

from tests.conftest import circuit_strategy


# --------------------------------------------------------------------------- #
# Optimisation passes
# --------------------------------------------------------------------------- #
def test_cx_cancellation_removes_adjacent_pairs():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.z(2)          # does not share qubits, sits "between" the pair
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    output = CXCancellation()(circuit.copy())
    assert output.count_ops().get("cx", 0) == 1
    assert circuits_equivalent(circuit, output)


@settings(max_examples=20, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=14))
def test_cx_cancellation_preserves_semantics(circuit):
    output = CXCancellation()(circuit.copy())
    assert circuits_equivalent(circuit, output)
    assert output.count_ops().get("cx", 0) <= circuit.count_ops().get("cx", 0)


def test_optimize_1q_gates_merges_runs():
    circuit = QCircuit(2)
    circuit.u1(0.4, 0)
    circuit.u2(0.3, 0.2, 0)
    circuit.u3(0.1, 0.5, 0.9, 0)
    circuit.cx(0, 1)
    circuit.u1(0.7, 1)
    output = Optimize1qGates()(circuit.copy())
    assert circuits_equivalent(circuit, output)
    assert output.size() < circuit.size()


@settings(max_examples=15, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=12))
def test_optimize_1q_gates_preserves_semantics(circuit):
    output = Optimize1qGates()(circuit.copy())
    assert circuits_equivalent(circuit, output)


@settings(max_examples=15, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=12))
def test_commutative_cancellation_preserves_semantics(circuit):
    output = CommutativeCancellation()(circuit.copy())
    assert circuits_equivalent(circuit, output)


@settings(max_examples=15, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=12))
def test_consolidate_blocks_preserves_semantics(circuit):
    output = ConsolidateBlocks()(circuit.copy())
    assert circuits_equivalent(circuit, output)


def test_remove_diagonal_gates_before_measure():
    circuit = QCircuit(2, 2)
    circuit.h(0)
    circuit.t(0)
    circuit.measure(0, 0)
    circuit.rz(0.3, 1)
    circuit.measure(1, 1)
    output = RemoveDiagonalGatesBeforeMeasure()(circuit.copy())
    names = [g.name for g in output]
    assert "t" not in names and "rz" not in names
    assert names.count("measure") == 2


def test_remove_reset_in_zero_state():
    circuit = QCircuit(2)
    circuit.reset(0)
    circuit.h(0)
    circuit.reset(0)      # not removable: the qubit has been touched
    circuit.reset(1)
    output = RemoveResetInZeroState()(circuit.copy())
    assert output.count_ops().get("reset", 0) == 1


def test_remove_final_measurements():
    circuit = QCircuit(2, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    output = RemoveFinalMeasurements()(circuit.copy())
    assert output.count_ops().get("measure", 0) == 0
    assert output.count_ops().get("h") == 1


def test_merge_adjacent_barriers():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.barrier()
    circuit.barrier()
    circuit.cx(0, 1)
    output = MergeAdjacentBarriers()(circuit.copy())
    assert output.count_ops().get("barrier", 0) == 1
    assert circuits_equivalent(circuit, output)


def test_barrier_before_final_measurements():
    circuit = QCircuit(2, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    output = BarrierBeforeFinalMeasurements()(circuit.copy())
    names = [g.name for g in output]
    assert "barrier" in names
    assert names.index("barrier") < names.index("measure")


# --------------------------------------------------------------------------- #
# Basis-change passes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("pass_class", [Unroller, BasisTranslator])
def test_unrolling_reaches_the_native_basis(pass_class):
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.swap(0, 1)
    circuit.ccx(0, 1, 2)
    circuit.rzz(0.3, 1, 2)
    output = pass_class()(circuit.copy())
    assert circuits_equivalent(circuit, output)
    assert set(output.count_ops()) <= {"u1", "u2", "u3", "cx", "id"}


def test_decompose_targets_only_selected_gates():
    circuit = QCircuit(2)
    circuit.swap(0, 1)
    circuit.h(0)
    output = Decompose(gates_to_decompose=("swap",))(circuit.copy())
    assert "swap" not in output.count_ops()
    assert output.count_ops().get("h") == 1
    assert circuits_equivalent(circuit, output)


@settings(max_examples=15, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=10))
def test_unroller_preserves_semantics(circuit):
    output = Unroller()(circuit.copy())
    assert circuits_equivalent(circuit, output)


def test_unroller_leaves_conditioned_gates_alone():
    circuit = QCircuit(2, 1)
    circuit.append(Gate("swap", (0, 1)).c_if(0, 1))
    output = Unroller()(circuit.copy())
    assert output.size() == 1 and output[0].condition == (0, 1)


# --------------------------------------------------------------------------- #
# Direction-fixing passes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("pass_class", [CXDirection, GateDirection])
def test_direction_passes_fix_reversed_cx(pass_class):
    coupling = ibm_16q()
    circuit = QCircuit(16)
    circuit.cx(0, 1)       # only (1, 0) is a directed edge
    circuit.cx(1, 2)       # correctly directed
    output = pass_class(coupling=coupling)(circuit.copy())
    assert check_gate_direction(output, coupling, names=("cx",))
    assert circuits_equivalent(circuit[0:2], output[0 : output.size()]) or circuits_equivalent(
        circuit, output
    )


# --------------------------------------------------------------------------- #
# Layout and routing passes
# --------------------------------------------------------------------------- #
def test_apply_layout_relabels_and_preserves_up_to_permutation():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.cx(0, 2)
    layout = Layout({0: 1, 1: 2, 2: 0})
    props = PropertySet()
    props["layout"] = layout
    output = ApplyLayout(property_set=props)(circuit.copy())
    assert circuits_equivalent_under_relabelling(circuit, output, layout.as_permutation(3))


def test_trivial_and_set_layout_store_layouts():
    circuit = QCircuit(3)
    trivial = TrivialLayout()
    trivial(circuit)
    assert trivial.property_set["layout"].as_permutation(3) == [0, 1, 2]
    custom = Layout({0: 2, 1: 1, 2: 0})
    setter = SetLayout(layout=custom)
    setter(circuit)
    assert setter.property_set["layout"] is custom


def test_enlarge_with_ancilla_adds_idle_qubits():
    circuit = QCircuit(2)
    circuit.cx(0, 1)
    output = EnlargeWithAncilla(coupling=linear_device(6))(circuit.copy())
    assert output.num_qubits == 6
    assert list(output.gates) == list(circuit.gates)


@pytest.mark.parametrize("pass_class", [BasicSwap, LookaheadSwap, SabreSwap])
def test_routing_passes_respect_coupling_and_semantics(pass_class):
    coupling = linear_device(5)
    for seed in range(3):
        circuit = random_clifford_circuit(5, 15, seed=seed)
        routed = pass_class(coupling=coupling)(circuit.copy())
        assert conforms_to_coupling(routed.gates, coupling)
        report = equivalent_up_to_swaps(circuit.gates, routed.gates, 5)
        assert report.equivalent
        assert circuits_equivalent_up_to_permutation(circuit, routed, list(report.permutation))


def test_routing_on_ibm16_larger_circuit_is_coupling_conformant():
    coupling = ibm_16q()
    circuit = random_circuit(10, 60, seed=9)
    routed = LookaheadSwap(coupling=coupling)(circuit.copy())
    assert conforms_to_coupling(routed.gates, coupling)
    report = equivalent_up_to_swaps(circuit.gates, routed.gates, 16)
    assert report.equivalent
