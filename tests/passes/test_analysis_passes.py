"""Concrete behaviour of the analysis and layout-selection passes."""

import pytest

from repro.circuit import QCircuit, ghz_circuit, random_circuit
from repro.coupling import Layout, ibm_16q, linear_device
from repro.passes import (
    CheckCXDirection,
    CheckGateDirection,
    CheckMap,
    Collect2qBlocks,
    CommutationAnalysis,
    CountOps,
    CountOpsLongestPath,
    CSPLayout,
    DAGFixedPoint,
    DAGLongestPath,
    DenseLayout,
    Depth,
    FixedPoint,
    Layout2qDistance,
    NoiseAdaptiveLayout,
    NumTensorFactors,
    SabreLayout,
    Size,
    Width,
)


@pytest.fixture
def sample():
    circuit = QCircuit(4, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.t(3)
    circuit.measure(0, 0)
    return circuit


def test_analysis_passes_do_not_modify_the_circuit(sample):
    for pass_class in [Width, Depth, Size, CountOps, CountOpsLongestPath,
                       NumTensorFactors, DAGLongestPath, CommutationAnalysis, Collect2qBlocks]:
        instance = pass_class()
        output = instance(sample.copy())
        assert list(output.gates) == list(sample.gates)


def test_width_depth_size_values(sample):
    width = Width()
    width(sample)
    assert width.property_set["width"] == 6
    depth = Depth()
    depth(sample)
    assert depth.property_set["depth"] == sample.depth()
    size = Size()
    size(sample)
    assert size.property_set["size"] == 5


def test_count_ops_and_longest_path(sample):
    count = CountOps()
    count(sample)
    assert count.property_set["count_ops"]["cx"] == 2
    longest = DAGLongestPath()
    longest(sample)
    assert longest.property_set["dag_longest_path"] == sample.to_dag().depth()
    per_path = CountOpsLongestPath()
    per_path(sample)
    assert sum(per_path.property_set["count_ops_longest_path"].values()) == sample.to_dag().depth()


def test_num_tensor_factors(sample):
    pass_instance = NumTensorFactors()
    pass_instance(sample)
    assert pass_instance.property_set["num_tensor_factors"] == 2


def test_check_map_and_directions():
    coupling = linear_device(3)
    good = QCircuit(3)
    good.cx(0, 1)
    checker = CheckMap(coupling=coupling)
    checker(good)
    assert checker.property_set["is_swap_mapped"] is True
    bad = QCircuit(3)
    bad.cx(0, 2)
    checker2 = CheckMap(coupling=coupling)
    checker2(bad)
    assert checker2.property_set["is_swap_mapped"] is False

    directed = ibm_16q()
    cx_check = CheckCXDirection(coupling=directed)
    cx_check(QCircuit(16).cx(0, 1))
    assert cx_check.property_set["is_direction_mapped"] is False
    gate_check = CheckGateDirection(coupling=directed)
    gate_check(QCircuit(16).cx(1, 0))
    assert gate_check.property_set["is_direction_mapped"] is True


def test_commutation_analysis_groups_commuting_gates():
    circuit = QCircuit(2)
    circuit.z(0)
    circuit.cx(0, 1)
    circuit.h(0)
    analysis = CommutationAnalysis()
    analysis(circuit)
    groups = analysis.property_set["commutation_groups"]
    assert [len(group) for group in groups] == [2, 1]


def test_collect_2q_blocks_finds_blocks():
    circuit = QCircuit(3)
    circuit.cx(0, 1)
    circuit.u1(0.3, 1)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    blocks = Collect2qBlocks()
    blocks(circuit)
    assert blocks.property_set["block_list"]
    assert blocks.property_set["block_list"][0] == [0, 1, 2]


def test_layout_selection_passes_store_valid_layouts():
    coupling = ibm_16q()
    circuit = random_circuit(5, 25, seed=4)
    for pass_class in [DenseLayout, NoiseAdaptiveLayout, SabreLayout]:
        instance = pass_class(coupling=coupling)
        instance(circuit.copy())
        layout = instance.property_set["layout"]
        physical = [layout.physical(q) for q in range(5)]
        assert len(set(physical)) == 5


def test_csp_layout_and_2q_distance_score():
    coupling = linear_device(4)
    circuit = QCircuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    csp = CSPLayout(coupling=coupling)
    csp(circuit)
    layout = csp.property_set["layout"]
    assert layout is not None
    scorer = Layout2qDistance(coupling=coupling, property_set=csp.property_set)
    scorer(circuit)
    assert scorer.property_set["layout_score"] == 0


def test_fixed_point_passes_detect_stabilisation():
    circuit = ghz_circuit(3)
    dag_fp = DAGFixedPoint()
    dag_fp(circuit)
    assert dag_fp.property_set["dag_fixed_point"] is False
    dag_fp(circuit)
    assert dag_fp.property_set["dag_fixed_point"] is True

    fp = FixedPoint(property_name="size")
    fp.property_set["size"] = 5
    fp(circuit)
    fp.property_set["size"] = 5
    fp(circuit)
    assert fp.property_set["size_fixed_point"] is True
    fp.property_set["size"] = 4
    fp(circuit)
    assert fp.property_set["size_fixed_point"] is False
