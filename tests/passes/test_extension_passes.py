"""The extension passes (repro.passes.extensions) — concrete and verified."""

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QCircuit
from repro.linalg import circuits_equivalent
from repro.passes import (
    EXTENSION_PASSES,
    InverseCancellation,
    RemoveBarriers,
    SwapCancellation,
)
from repro.verify import verify_pass

from tests.conftest import circuit_strategy


# --------------------------------------------------------------------------- #
# Push-button verification
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("pass_class", EXTENSION_PASSES,
                         ids=[p.__name__ for p in EXTENSION_PASSES])
def test_extension_pass_verifies(pass_class):
    result = verify_pass(pass_class)
    assert result.verified, result.failure_reasons
    assert result.num_subgoals >= 1
    assert result.time_seconds < 30.0


# --------------------------------------------------------------------------- #
# InverseCancellation
# --------------------------------------------------------------------------- #
def test_inverse_cancellation_removes_adjacent_pairs():
    circuit = QCircuit(2)
    circuit.x(0)
    circuit.x(0)
    circuit.h(1)
    circuit.cz(0, 1)
    circuit.cz(0, 1)
    circuit.h(1)
    output = InverseCancellation()(circuit.copy())
    assert output.size() == 2
    assert output.count_ops() == {"h": 2}
    assert circuits_equivalent(circuit, output)


def test_inverse_cancellation_cancels_across_commuting_gates():
    circuit = QCircuit(2)
    circuit.z(0)
    circuit.cz(0, 1)     # commutes with z on qubit 0
    circuit.z(0)
    output = InverseCancellation()(circuit.copy())
    assert output.count_ops().get("z", 0) == 0
    assert circuits_equivalent(circuit, output)


def test_inverse_cancellation_respects_the_gate_filter():
    circuit = QCircuit(1)
    circuit.h(0)
    circuit.h(0)
    output = InverseCancellation(gates=("x",))(circuit.copy())
    assert output.size() == 2  # h not in the configured list


def test_inverse_cancellation_skips_conditioned_gates():
    circuit = QCircuit(1, 1)
    circuit.append(Gate("x", (0,)).c_if(0, 1))
    circuit.x(0)
    output = InverseCancellation()(circuit.copy())
    assert output.size() == 2


@settings(max_examples=25, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=10))
def test_inverse_cancellation_preserves_semantics(circuit):
    output = InverseCancellation()(circuit.copy())
    assert circuits_equivalent(circuit, output)


# --------------------------------------------------------------------------- #
# RemoveBarriers / SwapCancellation
# --------------------------------------------------------------------------- #
def test_remove_barriers_drops_every_barrier():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.barrier(0, 1, 2)
    circuit.cx(0, 1)
    circuit.barrier(1, 2)
    output = RemoveBarriers()(circuit.copy())
    assert output.count_ops().get("barrier", 0) == 0
    assert output.size() == 2
    assert circuits_equivalent(circuit, output)


def test_remove_barriers_on_barrier_free_circuit_is_identity():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    output = RemoveBarriers()(circuit.copy())
    assert list(output.gates) == list(circuit.gates)


def test_swap_cancellation_removes_adjacent_swap_pairs():
    circuit = QCircuit(3)
    circuit.swap(0, 1)
    circuit.swap(0, 1)
    circuit.cx(1, 2)
    circuit.swap(1, 2)
    output = SwapCancellation()(circuit.copy())
    assert output.count_ops().get("swap", 0) == 1
    assert circuits_equivalent(circuit, output)


def test_swap_cancellation_keeps_non_adjacent_swaps():
    circuit = QCircuit(3)
    circuit.swap(0, 1)
    circuit.h(0)           # breaks adjacency (does not commute with the swap)
    circuit.swap(0, 1)
    output = SwapCancellation()(circuit.copy())
    assert output.count_ops().get("swap", 0) == 2
    assert circuits_equivalent(circuit, output)


@settings(max_examples=25, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=10))
def test_swap_cancellation_preserves_semantics(circuit):
    output = SwapCancellation()(circuit.copy())
    assert circuits_equivalent(circuit, output)
