"""Tests for the verified utility library (concrete behaviour vs. its specs)."""

import math

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QCircuit, random_circuit
from repro.coupling import Layout, ibm_16q, linear_device
from repro.errors import CircuitError
from repro.linalg import circuits_equivalent
from repro.utility import (
    collect_1q_runs,
    final_ops_on_qubits,
    first_gate_on_qubit,
    gates_on_qubit,
    is_adjacent,
    merge_1q_gates,
    next_gate,
    shortest_path,
    swap_path,
    total_distance,
)
from repro.utility.analysis_ops import allocate_ancillas, apply_layout, check_gate_direction, check_map
from repro.utility.layout_selection import (
    layout_2q_distance_score,
    select_csp_layout,
    select_dense_layout,
    select_noise_adaptive_layout,
    select_sabre_layout,
    select_trivial_layout,
)
from repro.utility.transforms import (
    absorb_diagonal_before_measure,
    consolidate_block,
    drop_final_measurement,
    drop_initial_reset,
    expand_gate,
    next_cancellation_partner,
    reverse_direction,
)

from tests.conftest import circuit_strategy


# --------------------------------------------------------------------------- #
# next_gate and friends (the Section 3 specification, checked concretely)
# --------------------------------------------------------------------------- #
def test_next_gate_specification_clauses():
    circuit = QCircuit(3)
    circuit.cx(0, 1)   # 0
    circuit.h(2)       # 1 (does not share a qubit)
    circuit.x(1)       # 2 (shares qubit 1)
    index = next_gate(circuit, 0)
    assert index == 2
    assert index > 0
    for between in range(1, index):
        assert not circuit[between].shares_qubit(circuit[0])
    assert circuit[index].shares_qubit(circuit[0])


def test_next_gate_returns_none_when_no_match():
    circuit = QCircuit(3)
    circuit.cx(0, 1)
    circuit.h(2)
    assert next_gate(circuit, 0) is None


@settings(max_examples=30, deadline=None)
@given(circuit_strategy(num_qubits=4, max_gates=12))
def test_next_gate_spec_holds_on_random_circuits(circuit):
    if circuit.size() == 0:
        return
    result = next_gate(circuit, 0)
    if result is None:
        for later in range(1, circuit.size()):
            assert not circuit[later].shares_qubit(circuit[0])
    else:
        assert 0 < result < circuit.size()
        assert circuit[result].shares_qubit(circuit[0])
        for between in range(1, result):
            assert not circuit[between].shares_qubit(circuit[0])


def test_gates_on_qubit_and_first_gate():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.x(1)
    assert gates_on_qubit(circuit, 1) == [1, 2]
    assert first_gate_on_qubit(circuit, 1) == 1
    assert first_gate_on_qubit(circuit, 0) == 0


def test_final_ops_on_qubits():
    circuit = QCircuit(2, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.x(1)
    assert final_ops_on_qubits(circuit) == [1, 2]


def test_collect_1q_runs_groups_consecutive_gates():
    circuit = QCircuit(2)
    circuit.u1(0.1, 0)
    circuit.u2(0.2, 0.3, 0)
    circuit.cx(0, 1)
    circuit.u3(0.4, 0.5, 0.6, 0)
    runs = collect_1q_runs(circuit, ("u1", "u2", "u3"))
    assert runs == [[0, 1], [3]]


# --------------------------------------------------------------------------- #
# merge_1q_gates (Section 7.1)
# --------------------------------------------------------------------------- #
def test_merge_1q_gates_is_equivalent_to_the_run():
    run = [Gate("u1", (0,), (0.3,)), Gate("u2", (0,), (0.5, 0.7)), Gate("u3", (0,), (0.2, 0.4, 0.6))]
    merged = merge_1q_gates(run)
    assert len(merged) == 1 and merged[0].name == "u3"
    assert circuits_equivalent(QCircuit(1, gates=run), QCircuit(1, gates=merged))


def test_merge_1q_gates_identity_run_collapses_to_nothing():
    run = [Gate("u1", (0,), (0.4,)), Gate("u1", (0,), (-0.4,))]
    assert merge_1q_gates(run) == []


def test_merge_1q_gates_refuses_conditioned_gates():
    with pytest.raises(CircuitError):
        merge_1q_gates([Gate("u1", (0,), (0.3,)).c_if(0, 1), Gate("u3", (0,), (0.1, 0.2, 0.3))])


def test_merge_1q_gates_refuses_multi_qubit_runs():
    with pytest.raises(CircuitError):
        merge_1q_gates([Gate("u1", (0,), (0.3,)), Gate("u1", (1,), (0.2,))])


@settings(max_examples=30, deadline=None)
@given(circuit_strategy(num_qubits=1, max_gates=6))
def test_merge_arbitrary_single_qubit_u_runs(circuit):
    run = [g for g in circuit if g.name in ("u1", "u2", "u3", "rz")]
    if not run:
        return
    merged = merge_1q_gates(run)
    assert circuits_equivalent(QCircuit(1, gates=run), QCircuit(1, gates=merged))


def test_merge_1q_gates_handles_rx_and_ry():
    """Regression: rx/ry runs crashed the merge (found by the fuzzer).

    ``Optimize1qGatesDecomposition`` collects rx/ry into runs, so the
    merge must know their Euler angles: rx(t) = u3(t, -pi/2, pi/2) and
    ry(t) = u3(t, 0, 0) up to global phase.
    """
    run = [Gate("rx", (0,), (0.9,)), Gate("ry", (0,), (1.3,)),
           Gate("u2", (0,), (0.2, 0.4))]
    merged = merge_1q_gates(run)
    assert len(merged) == 1 and merged[0].name == "u3"
    assert circuits_equivalent(QCircuit(1, gates=run), QCircuit(1, gates=merged))


@settings(max_examples=30, deadline=None)
@given(circuit_strategy(num_qubits=1, max_gates=6))
def test_merge_arbitrary_rotation_runs(circuit):
    run = [g for g in circuit if g.name in ("rx", "ry", "rz", "u1", "u2", "u3")]
    if not run:
        return
    merged = merge_1q_gates(run)
    assert circuits_equivalent(QCircuit(1, gates=run), QCircuit(1, gates=merged))


def test_optimize_1q_decomposition_no_longer_crashes_on_rx_ry():
    from repro.passes import Optimize1qGatesDecomposition

    circuit = QCircuit(1)
    circuit.rx(0.7, 0)
    circuit.ry(1.1, 0)
    circuit.rz(0.3, 0)
    output = Optimize1qGatesDecomposition()(circuit.copy())
    assert circuits_equivalent(circuit, output)
    assert len(output.gates) == 1


# --------------------------------------------------------------------------- #
# Coupling helpers
# --------------------------------------------------------------------------- #
def test_swap_path_brings_qubits_adjacent():
    cm = linear_device(6)
    swaps = swap_path(cm, 0, 4)
    layout = Layout.trivial(6)
    for edge in swaps:
        assert cm.connected(*edge)
        layout.swap(*edge)
    assert cm.connected(layout.physical(0), layout.physical(4))


def test_total_distance_and_adjacency():
    cm = linear_device(4)
    layout = Layout.trivial(4)
    assert total_distance(cm, layout, [(0, 3), (1, 2)]) == 4
    assert is_adjacent(cm, layout, 1, 2)
    assert not is_adjacent(cm, layout, 0, 3)
    assert shortest_path(cm, 0, 3) == [0, 1, 2, 3]


# --------------------------------------------------------------------------- #
# Transform utilities
# --------------------------------------------------------------------------- #
def test_expand_gate_equivalence_and_condition_safety():
    expanded = expand_gate(Gate("swap", (0, 1)))
    assert circuits_equivalent(QCircuit(2, gates=[Gate("swap", (0, 1))]), QCircuit(2, gates=expanded))
    conditioned = Gate("swap", (0, 1)).c_if(0, 1)
    assert expand_gate(conditioned) == [conditioned]


def test_reverse_direction_conjugates_with_hadamards():
    cm = ibm_16q()
    # Edge (1, 0) exists but (0, 1) does not, so cx 0,1 must be reversed.
    gate = Gate("cx", (0, 1))
    replaced = reverse_direction(gate, cm)
    assert [g.name for g in replaced] == ["h", "h", "cx", "h", "h"]
    assert circuits_equivalent(QCircuit(2, gates=[gate]), QCircuit(2, gates=replaced))
    # A correctly-directed CX is untouched.
    assert reverse_direction(Gate("cx", (1, 0)), cm) == [Gate("cx", (1, 0))]


def test_absorb_diagonal_before_measure_concrete():
    circuit = QCircuit(1, 1)
    circuit.t(0)
    circuit.measure(0, 0)
    assert absorb_diagonal_before_measure(circuit, 0, 1)
    hadamard = QCircuit(1, 1)
    hadamard.h(0)
    hadamard.measure(0, 0)
    assert not absorb_diagonal_before_measure(hadamard, 0, 1)


def test_drop_final_measurement_concrete():
    circuit = QCircuit(1, 1)
    circuit.h(0)
    circuit.measure(0, 0)
    assert drop_final_measurement(circuit, 1)
    not_final = QCircuit(1, 1)
    not_final.measure(0, 0)
    not_final.x(0)
    assert not drop_final_measurement(not_final, 0)


def test_drop_initial_reset_concrete():
    output = QCircuit(2)
    assert drop_initial_reset(output, Gate("reset", (0,)))
    output.h(0)
    assert not drop_initial_reset(output, Gate("reset", (0,)))
    assert not drop_initial_reset(QCircuit(2), Gate("reset", (0,)).c_if(0, 1))


def test_next_cancellation_partner_concrete():
    circuit = QCircuit(2)
    circuit.z(0)
    circuit.x(1)
    circuit.cx(0, 1)
    circuit.z(0)
    # z(0) commutes with x(1) but NOT with... actually z commutes with cx control,
    # so the partner is found and the cancellation is legitimate.
    assert next_cancellation_partner(circuit, 0) == 3
    blocked = QCircuit(2)
    blocked.x(1)
    blocked.cz(0, 1)
    blocked.x(1)
    assert next_cancellation_partner(blocked, 0) is None


def test_consolidate_block_concrete():
    block = [Gate("cx", (0, 1)), Gate("cx", (0, 1)), Gate("u1", (0,), (0.3,)), Gate("u1", (0,), (0.2,))]
    consolidated = consolidate_block(block)
    assert circuits_equivalent(QCircuit(2, gates=block), QCircuit(2, gates=consolidated))
    assert len(consolidated) < len(block)


# --------------------------------------------------------------------------- #
# Layout selection and analysis utilities
# --------------------------------------------------------------------------- #
def test_layout_selectors_produce_valid_layouts():
    cm = ibm_16q()
    circuit = random_circuit(6, 30, seed=2)
    for selector in (select_trivial_layout, select_dense_layout, select_sabre_layout,
                     select_noise_adaptive_layout):
        layout = selector(circuit, cm) if selector is not select_trivial_layout else selector(circuit)
        assert layout is not None
        physicals = [layout.physical(q) for q in range(circuit.num_qubits)]
        assert len(set(physicals)) == circuit.num_qubits
        assert all(0 <= p < cm.num_qubits for p in physicals)


def test_csp_layout_finds_perfect_embedding_when_one_exists():
    cm = linear_device(4)
    circuit = QCircuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    layout = select_csp_layout(circuit, cm)
    assert layout is not None
    assert layout_2q_distance_score(circuit, cm, layout) == 0
    # A triangle cannot be embedded in a line.
    triangle = QCircuit(3)
    triangle.cx(0, 1)
    triangle.cx(1, 2)
    triangle.cx(0, 2)
    assert select_csp_layout(triangle, linear_device(3)) is None


def test_check_map_and_direction():
    cm = linear_device(3)
    good = QCircuit(3)
    good.cx(0, 1)
    assert check_map(good, cm) is True
    bad = QCircuit(3)
    bad.cx(0, 2)
    assert check_map(bad, cm) is False
    directed = ibm_16q()
    assert check_gate_direction(QCircuit(16, gates=[Gate("cx", (1, 0))]), directed) is True
    assert check_gate_direction(QCircuit(16, gates=[Gate("cx", (0, 1))]), directed) is False


def test_apply_layout_and_allocate_ancillas():
    circuit = QCircuit(2)
    circuit.cx(0, 1)
    layout = Layout({0: 2, 1: 0})
    remapped = apply_layout(circuit, layout)
    assert remapped[0].qubits == (2, 0)
    cm = linear_device(5)
    enlarged = allocate_ancillas(circuit, cm)
    assert enlarged.num_qubits == 5
    assert list(enlarged.gates) == list(circuit.gates)
