"""Coupling-map utilities and the layout-selection algorithms."""

import pytest

from repro.bench.qasmbench import qft
from repro.circuit import QCircuit, random_circuit
from repro.coupling import Layout, grid_device, ibm_16q, ibm_20q_tokyo, linear_device, ring_device
from repro.utility.coupling_ops import is_adjacent, shortest_path, swap_path, total_distance
from repro.utility.layout_selection import (
    layout_2q_distance_score,
    select_csp_layout,
    select_dense_layout,
    select_noise_adaptive_layout,
    select_sabre_layout,
    select_trivial_layout,
)

DEVICES = [linear_device(8), ring_device(8), grid_device(3, 4), ibm_16q(), ibm_20q_tokyo()]


# --------------------------------------------------------------------------- #
# shortest_path / swap_path / total_distance
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("coupling", DEVICES, ids=lambda c: f"{c.num_qubits}q")
def test_shortest_path_satisfies_its_specification(coupling):
    for source in range(0, coupling.num_qubits, 3):
        for target in range(0, coupling.num_qubits, 4):
            path = shortest_path(coupling, source, target)
            assert path[0] == source and path[-1] == target
            assert len(path) == coupling.distance(source, target) + 1
            for a, b in zip(path, path[1:]):
                assert coupling.connected(a, b)


@pytest.mark.parametrize("coupling", DEVICES, ids=lambda c: f"{c.num_qubits}q")
def test_swap_path_brings_the_endpoints_adjacent(coupling):
    source, target = 0, coupling.num_qubits - 1
    swaps = swap_path(coupling, source, target)
    layout = Layout.trivial(coupling.num_qubits)
    for a, b in swaps:
        assert coupling.connected(a, b)
        layout.swap(a, b)
    assert is_adjacent(coupling, layout, source, target)


def test_total_distance_matches_manual_sum():
    coupling = linear_device(6)
    layout = Layout.trivial(6)
    pairs = [(0, 5), (1, 2), (0, 3)]
    assert total_distance(coupling, layout, pairs) == 5 + 1 + 3


def test_total_distance_reflects_layout_swaps():
    coupling = linear_device(4)
    layout = Layout.trivial(4)
    before = total_distance(coupling, layout, [(0, 3)])
    layout.swap(2, 3)
    after = total_distance(coupling, layout, [(0, 3)])
    assert before == 3 and after == 2


# --------------------------------------------------------------------------- #
# Layout selection
# --------------------------------------------------------------------------- #
SELECTORS = [
    select_dense_layout,
    select_noise_adaptive_layout,
    select_sabre_layout,
    select_csp_layout,
]


def _is_valid_layout(layout: Layout, num_logical: int, num_physical: int) -> bool:
    physicals = [layout.physical(logical) for logical in range(num_logical)]
    return (
        len(set(physicals)) == num_logical
        and all(0 <= p < num_physical for p in physicals)
    )


@pytest.mark.parametrize("selector", SELECTORS, ids=lambda s: s.__name__)
@pytest.mark.parametrize("coupling", [ibm_16q(), grid_device(3, 4), ibm_20q_tokyo()],
                         ids=lambda c: f"{c.num_qubits}q")
def test_layout_selectors_produce_injective_layouts(selector, coupling):
    circuit = random_circuit(6, 18, seed=2)
    layout = selector(circuit, coupling)
    assert layout is not None
    assert _is_valid_layout(layout, circuit.num_qubits, coupling.num_qubits)


def test_trivial_layout_is_the_identity():
    circuit = QCircuit(4)
    layout = select_trivial_layout(circuit)
    assert layout.as_permutation(4) == [0, 1, 2, 3]


def test_informed_layouts_do_not_lose_to_the_trivial_layout_badly():
    """Layout quality: the distance score of smarter selectors is reasonable."""
    coupling = ibm_16q()
    circuit = qft(6)
    trivial_score = layout_2q_distance_score(circuit, coupling, select_trivial_layout(circuit))
    for selector in (select_dense_layout, select_sabre_layout):
        score = layout_2q_distance_score(circuit, coupling, selector(circuit, coupling))
        assert score is not None
        assert score <= trivial_score * 2 + 2


def test_layout_2q_distance_score_is_zero_when_everything_is_adjacent():
    coupling = linear_device(4)
    circuit = QCircuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    score = layout_2q_distance_score(circuit, coupling, Layout.trivial(3))
    assert score == 0


def test_csp_layout_finds_a_perfect_assignment_when_one_exists():
    coupling = ring_device(6)
    circuit = QCircuit(4)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(2, 3)
    layout = select_csp_layout(circuit, coupling)
    assert layout is not None
    score = layout_2q_distance_score(circuit, coupling, layout)
    assert score == 0
