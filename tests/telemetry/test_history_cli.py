"""CLI surfaces: ``repro trace diff``, ``repro history``, ``repro top``."""

import json

from repro.cli import main
from repro.cluster.status import RunStatusBoard
from repro.telemetry.history import TelemetryHistory, history_path


def _verify(tmp_path, *extra):
    return main(["verify", "ApplyLayout", "CXCancellation",
                 "--cache-dir", str(tmp_path / "cache"), *extra])


# --------------------------------------------------------------------- #
# trace diff
# --------------------------------------------------------------------- #

def test_trace_diff_identical_warm_runs_is_clean(tmp_path, capsys):
    _verify(tmp_path)  # cold, populates the cache
    _verify(tmp_path, "--trace", str(tmp_path / "a"))
    _verify(tmp_path, "--trace", str(tmp_path / "b"))
    capsys.readouterr()
    assert main(["trace", "diff", str(tmp_path / "a"),
                 str(tmp_path / "b")]) == 0
    out = capsys.readouterr().out
    assert "trace diff:" in out
    assert "no significant regression" in out


def test_trace_diff_json_payload(tmp_path, capsys):
    _verify(tmp_path, "--trace", str(tmp_path / "a"))
    _verify(tmp_path, "--trace", str(tmp_path / "b"))
    capsys.readouterr()
    assert main(["trace", "diff", str(tmp_path / "a"), str(tmp_path / "b"),
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    for key in ("passes", "subgoals", "methods", "solvers", "cache",
                "regressions", "total_delta_seconds"):
        assert key in payload


def test_trace_diff_missing_side_exits_one(tmp_path, capsys):
    _verify(tmp_path, "--trace", str(tmp_path / "a"))
    capsys.readouterr()
    assert main(["trace", "diff", str(tmp_path / "a"),
                 str(tmp_path / "nope")]) == 1
    assert "no trace to diff" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# history
# --------------------------------------------------------------------- #

def test_traced_verify_auto_records_into_history(tmp_path, capsys):
    assert _verify(tmp_path, "--trace", str(tmp_path / "t")) == 0
    captured = capsys.readouterr()
    assert "history: recorded run #1" in captured.err
    assert "history" not in captured.out  # telemetry stays off stdout
    assert history_path(tmp_path / "cache").exists()
    with TelemetryHistory(tmp_path / "cache") as history:
        runs = history.runs()
    assert len(runs) == 1
    assert runs[0]["passes"] == 2
    names = {entry["name"] for entry in runs[0]["summary"]["passes"]}
    assert names == {"ApplyLayout", "CXCancellation"}


def test_no_history_flag_skips_the_record(tmp_path, capsys):
    assert _verify(tmp_path, "--trace", str(tmp_path / "t"),
                   "--no-history") == 0
    assert "history:" not in capsys.readouterr().err
    assert not history_path(tmp_path / "cache").exists()


def test_untraced_verify_records_nothing(tmp_path, capsys):
    assert _verify(tmp_path) == 0
    capsys.readouterr()
    assert not history_path(tmp_path / "cache").exists()


def test_history_list_show_and_prune(tmp_path, capsys):
    _verify(tmp_path, "--trace", str(tmp_path / "a"))
    _verify(tmp_path, "--trace", str(tmp_path / "b"))
    cache = str(tmp_path / "cache")
    capsys.readouterr()

    assert main(["history", "list", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "2 recorded runs" in out

    assert main(["history", "show", "latest", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "run #2" in out and "trace summary:" in out

    assert main(["history", "show", "7", "--cache-dir", cache]) == 1
    assert "no run" in capsys.readouterr().err

    assert main(["history", "list", "--cache-dir", cache,
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["store"]["runs"] == 2
    assert len(payload["runs"]) == 2
    assert "summary" not in payload["runs"][0]  # headline listing only

    assert main(["history", "prune", "--max-runs", "1",
                 "--cache-dir", cache]) == 0
    assert "dropped 1 runs, 1 kept" in capsys.readouterr().out


def test_history_regressions_clean_between_identical_runs(tmp_path, capsys):
    _verify(tmp_path)  # warm the cache first
    _verify(tmp_path, "--trace", str(tmp_path / "a"))
    _verify(tmp_path, "--trace", str(tmp_path / "b"))
    capsys.readouterr()
    assert main(["history", "regressions",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "no pass regressed" in capsys.readouterr().out


def test_history_commands_without_a_store_exit_one(tmp_path, capsys):
    for argv in (["history", "list"], ["history", "show", "latest"],
                 ["history", "regressions"]):
        assert main(argv + ["--cache-dir", str(tmp_path / "empty")]) == 1
        assert "no run history" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# top
# --------------------------------------------------------------------- #

def test_top_once_without_a_run_exits_one(tmp_path, capsys):
    assert main(["top", "--once", "--cache-dir", str(tmp_path)]) == 1
    assert "no run status" in capsys.readouterr().err


def test_top_rejects_a_nonpositive_interval(tmp_path, capsys):
    assert main(["top", "--cache-dir", str(tmp_path),
                 "--interval", "0"]) == 2
    assert "--interval" in capsys.readouterr().err


def test_top_once_renders_worker_rows(tmp_path, capsys):
    board = RunStatusBoard(tmp_path, 10, node="vm-1")
    board.heartbeat("worker-1-peer", {"inflight": "unit-03", "units_done": 2,
                                      "prove_seconds": 0.5,
                                      "rss_bytes": 64 << 20})
    board.note_result("worker-1-peer", prove_seconds=0.1,
                      transport_seconds=0.02)
    board.set_progress(units_done=3, failures=0, stolen=1, retried=0)
    board.finish()
    assert main(["top", "--once", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "run done" in out and "3/10 units" in out and "1 stolen" in out
    assert "worker-1-peer" in out
    assert "64MiB" in out


def test_top_once_after_a_real_workers_run(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["verify", "ApplyLayout", "CXCancellation", "BasicSwap",
                 "--workers", "2", "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    # The board outlives the run exactly so this cannot race a short run.
    assert main(["top", "--once", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "run done" in out
    assert "worker-1-" in out or "worker-2-" in out or "coordinator" in out
