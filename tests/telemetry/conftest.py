"""Telemetry tests must never leak a process-global tracer."""

import pytest

from repro.telemetry import trace as _trace


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Fail loudly if a test leaves the module-global tracer active.

    A leaked tracer would silently instrument every later test in the
    process (the whole engine consults :func:`repro.telemetry.trace.current`),
    so leakage is an assertion failure, not a quiet cleanup.
    """
    assert _trace.current() is None, "tracer already active before test"
    yield
    leaked = _trace.current() is not None
    _trace.shutdown()
    assert not leaked, "test leaked an active tracer"
