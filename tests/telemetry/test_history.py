"""The longitudinal sqlite history store behind ``repro history``."""

import sqlite3

import pytest

from repro.telemetry.history import (
    HISTORY_SCHEMA_VERSION,
    TelemetryHistory,
    git_describe,
    history_path,
)


def _summary(passes, *, solvers=None):
    return {
        "schema": 1,
        "records": 42,
        "passes": [{"name": n, "seconds": s, "subgoals": 2,
                    "worker": None, "solver": "builtin"} for n, s in passes],
        "subgoals": [],
        "methods": {},
        "solvers": solvers if solvers is not None
        else {"builtin": {"count": 1, "seconds": 0.01}},
        "cache": {},
        "workers": {},
    }


# --------------------------------------------------------------------- #
# Store mechanics
# --------------------------------------------------------------------- #

def test_record_and_read_back_roundtrip(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        run_id = history.record_run(
            _summary([("A", 0.1), ("B", 0.05)]),
            stats={"backend": "jsonl"}, node="main",
            toolchain="cpython-3.11", git="abc123", created_at=1000.0)
        run = history.get_run(run_id)
    assert run["passes"] == 2
    assert run["subgoals"] == 4
    assert run["wall_seconds"] == pytest.approx(0.15)
    assert run["records"] == 42
    assert run["solver"] == "builtin"
    assert run["backend"] == "jsonl"
    assert run["git"] == "abc123"
    assert run["created_at"] == 1000.0
    assert run["summary"]["passes"][0]["name"] == "A"
    assert history_path(tmp_path).exists()


def test_get_run_latest_and_negative_indices(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        first = history.record_run(_summary([("A", 0.1)]))
        second = history.record_run(_summary([("A", 0.2)]))
        assert history.get_run("latest")["id"] == second
        assert history.get_run(-1)["id"] == second
        assert history.get_run(-2)["id"] == first
        assert history.get_run(-3) is None
        assert history.get_run("nonsense") is None
        assert history.get_run(999) is None


def test_runs_lists_newest_first(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        ids = [history.record_run(_summary([("A", 0.1)])) for _ in range(3)]
        listed = [run["id"] for run in history.runs()]
        assert listed == sorted(ids, reverse=True)
        assert [run["id"] for run in history.runs(limit=2)] == listed[:2]


def test_auto_prune_keeps_the_newest(tmp_path):
    with TelemetryHistory(tmp_path, max_runs=2) as history:
        for _ in range(5):
            history.record_run(_summary([("A", 0.1)]))
        runs = history.runs()
        assert len(runs) == 2
        assert runs[0]["id"] == 5 and runs[1]["id"] == 4
        # The denormalised per-pass rows go with their runs.
        assert history.pass_series("A") and all(
            row["run_id"] >= 4 for row in history.pass_series("A"))


def test_explicit_prune_reports_dropped(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        for _ in range(4):
            history.record_run(_summary([("A", 0.1)]))
        assert history.prune(1) == 3
        assert history.summary()["runs"] == 1


def test_pass_series_tracks_one_pass_across_runs(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        history.record_run(_summary([("A", 0.1), ("B", 0.9)]))
        history.record_run(_summary([("A", 0.2)]))
        series = history.pass_series("A")
    assert [row["seconds"] for row in series] == [0.2, 0.1]
    assert all(row["solver"] == "builtin" for row in series)


def test_schema_mismatch_rebuilds_instead_of_misreading(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        history.record_run(_summary([("A", 0.1)]))
    conn = sqlite3.connect(history_path(tmp_path))
    conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
    conn.commit()
    conn.close()
    with TelemetryHistory(tmp_path) as history:
        assert history.summary()["runs"] == 0  # dropped, not misread
        assert history.summary()["schema_version"] == HISTORY_SCHEMA_VERSION
        history.record_run(_summary([("A", 0.1)]))
        assert history.summary()["runs"] == 1


def test_corrupt_file_is_rebuilt(tmp_path):
    history_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
    history_path(tmp_path).write_bytes(b"this is not a sqlite database")
    with TelemetryHistory(tmp_path) as history:
        history.record_run(_summary([("A", 0.1)]))
        assert history.summary()["runs"] == 1


def test_in_memory_store_touches_no_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with TelemetryHistory(None) as history:
        history.record_run(_summary([("A", 0.1)]))
        assert history.path is None
        assert history.summary()["path"] is None
    assert not list(tmp_path.iterdir())


def test_solver_column_joins_multiple_backends(tmp_path):
    with TelemetryHistory(None) as history:
        run_id = history.record_run(_summary(
            [("A", 0.1)],
            solvers={"z3": {"count": 1, "seconds": 0.1},
                     "builtin": {"count": 2, "seconds": 0.2}}))
        assert history.get_run(run_id)["solver"] == "builtin,z3"


# --------------------------------------------------------------------- #
# Regressions
# --------------------------------------------------------------------- #

def test_regressions_identical_runs_are_clean():
    with TelemetryHistory(None) as history:
        history.record_run(_summary([("A", 0.1), ("B", 0.05)]))
        history.record_run(_summary([("A", 0.1), ("B", 0.05)]))
        payload = history.regressions()
    assert payload["regressions"] == []
    assert payload["baseline"] == 1 and payload["candidate"] == 2


def test_regressions_flags_a_forced_slowdown():
    with TelemetryHistory(None) as history:
        history.record_run(_summary([("A", 0.1), ("B", 0.05)]))
        history.record_run(_summary([("A", 0.3), ("B", 0.05)]))
        payload = history.regressions()
    assert [f["name"] for f in payload["regressions"]] == ["A"]
    flagged = payload["regressions"][0]
    assert flagged["before"] == 0.1 and flagged["after"] == 0.3
    assert flagged["ratio"] == pytest.approx(3.0)


def test_regressions_flags_a_cold_pass_missing_from_warm_baseline():
    # The acceptance scenario: a fully warm baseline records no pass spans
    # at all; evicting one pass's cache entries makes it surface with real
    # prove cost in the next run, and that must flag.
    with TelemetryHistory(None) as history:
        history.record_run(_summary([]))                # warm: all cached
        history.record_run(_summary([("A", 0.02)]))     # A evicted -> cold
        payload = history.regressions()
    assert [f["name"] for f in payload["regressions"]] == ["A"]
    assert payload["regressions"][0]["ratio"] is None


def test_regressions_ignores_jitter_inside_the_bounds():
    with TelemetryHistory(None) as history:
        history.record_run(_summary([("A", 0.100), ("B", 0.0001)]))
        history.record_run(_summary([("A", 0.110), ("B", 0.0004)]))
        assert history.regressions()["regressions"] == []


def test_regressions_explicit_baseline_and_candidate():
    with TelemetryHistory(None) as history:
        history.record_run(_summary([("A", 0.1)]))
        history.record_run(_summary([("A", 0.5)]))
        history.record_run(_summary([("A", 0.1)]))
        clean = history.regressions(baseline=1, candidate=3)
        flagged = history.regressions(baseline=1, candidate=2)
    assert clean["regressions"] == []
    assert [f["name"] for f in flagged["regressions"]] == ["A"]


def test_regressions_needs_two_runs():
    with TelemetryHistory(None) as history:
        assert "error" in history.regressions()
        history.record_run(_summary([("A", 0.1)]))
        assert "error" in history.regressions()  # no baseline yet


# --------------------------------------------------------------------- #
# Provenance
# --------------------------------------------------------------------- #

def test_git_describe_in_a_repo_and_outside(tmp_path):
    described = git_describe()  # the test run's cwd is the repo
    assert described is None or isinstance(described, str)
    assert git_describe(cwd=tmp_path) is None  # not a repository


# --------------------------------------------------------------------- #
# Store analytics (schema v2)
# --------------------------------------------------------------------- #

def _store_stats(pass_hits=3, pass_misses=1, pass_stale=1,
                 subgoal_hits=10, subgoal_misses=2, wasted=1):
    return {
        "schema": 1,
        "tiers": {
            "pass": {"hits": pass_hits, "misses": pass_misses,
                     "stale": pass_stale, "ratio": None},
            "subgoal": {"hits": subgoal_hits, "misses": subgoal_misses,
                        "keys": subgoal_hits + subgoal_misses,
                        "ratio": None},
            "certificate": {"stored": 4},
        },
        "hot_keys": [],
        "wasted_evictions": wasted,
    }


def test_store_stats_roundtrip_and_series(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        first = history.record_run(_summary([("A", 0.1)]),
                                   store_stats=_store_stats(wasted=0))
        second = history.record_run(_summary([("A", 0.1)]),
                                    store_stats=_store_stats(subgoal_hits=20))
        # A run recorded without analytics simply has no store_stats row.
        third = history.record_run(_summary([("A", 0.1)]))

        assert history.get_store_stats(first)["wasted_evictions"] == 0
        assert history.get_store_stats(third) is None

        series = history.store_stats_series()
        assert [row["run_id"] for row in series] == [first, second]
        # Oldest first, stale folded into the denormalised miss column.
        assert series[0]["pass_hits"] == 3
        assert series[0]["pass_misses"] == 2       # misses + stale
        assert series[1]["subgoal_hits"] == 20
        assert series[1]["payload"]["tiers"]["certificate"]["stored"] == 4


def test_store_stats_rows_pruned_with_their_runs(tmp_path):
    with TelemetryHistory(tmp_path, max_runs=None) as history:
        doomed = history.record_run(_summary([("A", 0.1)]),
                                    store_stats=_store_stats())
        kept = history.record_run(_summary([("A", 0.1)]),
                                  store_stats=_store_stats())
        assert history.prune(1) == 1
        assert history.get_store_stats(kept) is not None
        rows = history._conn.execute(
            "SELECT run_id FROM store_stats").fetchall()
        assert rows == [(kept,)]


def test_store_stats_survive_reopen(tmp_path):
    with TelemetryHistory(tmp_path) as history:
        run_id = history.record_run(_summary([("A", 0.1)]),
                                    store_stats=_store_stats())
    with TelemetryHistory(tmp_path) as history:
        payload = history.get_store_stats(run_id)
        assert payload["tiers"]["pass"]["hits"] == 3
        assert history.store_stats_series(limit=5)[0]["run_id"] == run_id
