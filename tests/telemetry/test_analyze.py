"""Trace analysis: loading, summarising, coverage, profiling, export."""

import json

import pytest

from repro.telemetry import trace as _trace
from repro.telemetry.analyze import (
    canonical_tree,
    coverage_problems,
    export_chrome,
    load_trace,
    profile_records,
    render_profile,
    render_summary,
    render_tree,
    summarize_trace,
)
from repro.telemetry.trace import TRACE_SCHEMA_VERSION, trace_filename


def _trace_dir_with(tmp_path, build):
    """Run ``build(tracer)`` against a real sink and return the directory."""
    tracer = _trace.configure(str(tmp_path), node="main")
    try:
        build(tracer)
    finally:
        _trace.shutdown()
    return str(tmp_path)


# --------------------------------------------------------------------- #
# load_trace
# --------------------------------------------------------------------- #

def test_load_trace_round_trips_records(tmp_path):
    directory = _trace_dir_with(tmp_path, lambda t: t.event("x", kind="cache"))
    records = load_trace(directory)
    assert [rec["name"] for rec in records] == ["x"]


def test_load_trace_requires_trace_files(tmp_path):
    with pytest.raises(ValueError, match="no trace files"):
        load_trace(str(tmp_path))


def test_load_trace_rejects_newer_schema(tmp_path):
    path = tmp_path / trace_filename("main")
    path.write_text(json.dumps({"t": "meta",
                                "schema": TRACE_SCHEMA_VERSION + 1}) + "\n")
    with pytest.raises(ValueError, match="newer"):
        load_trace(str(tmp_path))


def test_load_trace_skips_torn_tail_lines(tmp_path):
    path = tmp_path / trace_filename("main")
    path.write_text(
        json.dumps({"t": "meta", "schema": TRACE_SCHEMA_VERSION}) + "\n"
        + json.dumps({"t": "event", "id": 1, "name": "ok"}) + "\n"
        + '{"t": "event", "id": 2, "name": "torn'  # crash mid-write
    )
    assert [rec["name"] for rec in load_trace(str(tmp_path))] == ["ok"]


def test_load_trace_reads_rotated_generations_oldest_first(tmp_path):
    live = tmp_path / trace_filename("main")
    meta = json.dumps({"t": "meta", "schema": TRACE_SCHEMA_VERSION})
    (tmp_path / f"{live.name}.1").write_text(
        meta + "\n" + json.dumps({"t": "event", "id": 1, "name": "old"}) + "\n")
    live.write_text(
        meta + "\n" + json.dumps({"t": "event", "id": 2, "name": "new"}) + "\n")
    assert [rec["name"] for rec in load_trace(str(tmp_path))] == ["old", "new"]


# --------------------------------------------------------------------- #
# summarize_trace / coverage
# --------------------------------------------------------------------- #

def _cluster_records():
    """A synthetic merged cluster trace: plan, two units, one merge span."""
    return [
        {"t": "event", "id": 1, "parent": None, "name": "cluster.plan",
         "kind": "cluster", "ts": 0.0, "node": "main",
         "attrs": {"units": ["u-0", "u-1"], "split_passes": 0}},
        {"t": "span", "id": 2, "parent": None, "name": "unit", "kind": "unit",
         "start": 0.0, "dur": 0.5, "node": "main",
         "attrs": {"unit": "u-0", "worker": "worker-1",
                   "prove_seconds": 0.4, "transport_seconds": 0.1}},
        {"t": "span", "id": 3, "parent": None, "name": "unit", "kind": "unit",
         "start": 0.0, "dur": 0.3, "node": "main",
         "attrs": {"unit": "u-1", "worker": "worker-2",
                   "prove_seconds": 0.3, "transport_seconds": 0.0}},
        {"t": "span", "id": 4, "parent": None, "name": "cluster.merge",
         "kind": "merge", "start": 1.0, "dur": 0.2, "node": "main",
         "attrs": {}},
    ]


def test_summarize_trace_worker_attribution_and_critical_path():
    summary = summarize_trace(_cluster_records())
    assert summary["planned_units"] == ["u-0", "u-1"]
    assert summary["covered_units"] == {"u-0": 1, "u-1": 1}
    assert summary["workers"]["worker-1"]["units"] == 1
    assert summary["workers"]["worker-1"]["transport_seconds"] == 0.1
    assert summary["merge_seconds"] == 0.2
    # Busiest worker (0.4 + 0.1) plus the serial merge (0.2).
    assert summary["critical_path_seconds"] == pytest.approx(0.7)
    assert coverage_problems(summary) == []


def test_coverage_problems_flags_lost_duplicate_and_unplanned():
    records = _cluster_records()
    records.append(dict(records[1], id=9))        # duplicate u-0
    records[2]["attrs"] = dict(records[2]["attrs"], unit="u-ghost")  # u-1 lost
    problems = coverage_problems(summarize_trace(records))
    assert any("u-1" in p and "lost" in p for p in problems)
    assert any("u-0" in p and "duplicated" in p for p in problems)
    assert any("u-ghost" in p and "never planned" in p for p in problems)


def test_summarize_trace_counts_cache_events():
    records = [
        {"t": "event", "id": 1, "parent": None, "name": "pass.cache",
         "kind": "cache", "ts": 0.0, "node": "main",
         "attrs": {"outcome": "hit"}},
        {"t": "event", "id": 2, "parent": None, "name": "pass.cache",
         "kind": "cache", "ts": 0.0, "node": "main",
         "attrs": {"outcome": "miss"}},
        {"t": "event", "id": 3, "parent": None, "name": "pass.cache",
         "kind": "cache", "ts": 0.0, "node": "main",
         "attrs": {"outcome": "hit"}},
    ]
    summary = summarize_trace(records)
    assert summary["cache"] == {"pass.cache.hit": 2, "pass.cache.miss": 1}


def test_render_summary_and_tree_are_textual(tmp_path):
    def build(tracer):
        with tracer.span("ApplyLayout", kind="pass", solver="auto"):
            tracer.event("pass.cache", kind="cache", outcome="miss",
                         target="ApplyLayout")

    records = load_trace(_trace_dir_with(tmp_path, build))
    summary = summarize_trace(records)
    text = "\n".join(render_summary(summary))
    assert "ApplyLayout" in text
    assert "pass.cache.miss" in text
    tree = "\n".join(render_tree(records))
    assert "ApplyLayout" in tree


# --------------------------------------------------------------------- #
# profile / export / canonical form
# --------------------------------------------------------------------- #

def test_profile_self_time_subtracts_children():
    records = [
        {"t": "span", "id": 2, "parent": 1, "name": "inner", "kind": "subgoal",
         "start": 0.0, "dur": 0.25, "node": "main", "attrs": {}},
        {"t": "span", "id": 1, "parent": None, "name": "Outer", "kind": "pass",
         "start": 0.0, "dur": 1.0, "node": "main", "attrs": {}},
    ]
    profile = profile_records(records)
    assert profile["groups"]["pass"]["self_seconds"] == pytest.approx(0.75)
    assert profile["groups"]["subgoal"]["self_seconds"] == pytest.approx(0.25)
    assert profile["total_self_seconds"] == pytest.approx(1.0)
    text = "\n".join(render_profile(profile))
    assert "pass" in text and "self(s)" in text


def test_export_chrome_shape(tmp_path):
    def build(tracer):
        with tracer.span("Work", kind="pass"):
            tracer.event("hit", kind="cache")

    records = load_trace(_trace_dir_with(tmp_path, build))
    payload = export_chrome(records)
    phases = sorted(event["ph"] for event in payload["traceEvents"])
    assert phases == ["X", "i"]
    for event in payload["traceEvents"]:
        assert event["pid"] == 1  # single node
    assert payload["metadata"]["schema"] == TRACE_SCHEMA_VERSION
    assert payload["metadata"]["nodes"] == {"1": "main"}


def test_canonical_tree_drops_ids_timestamps_and_volatile_attrs():
    def run(extra):
        tracer = _trace.Tracer(None, node="main")
        with tracer.span("run", kind="run", wall=extra):
            with tracer.span("P", kind="pass", worker=f"w-{extra}"):
                tracer.event("hit", kind="cache", outcome="hit")
        return tracer.records

    assert canonical_tree(run(1.0)) == canonical_tree(run(2.0))
    tree = canonical_tree(run(1.0))
    assert tree[0]["name"] == "run"
    assert tree[0]["children"][0]["children"][0]["attrs"] == {"outcome": "hit"}
