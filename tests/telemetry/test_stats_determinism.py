"""The store-analytics determinism promise, end to end.

``repro stats --format json`` prints the canonical aggregate as canonical
JSON, and the acceptance bar is *byte* identity: the same suite against
the same (fresh) cache must produce the same bytes whether it ran
in-process, on a worker pool, or distributed over cluster workers — and
on either cache backend.  Queue-time attribution rides the same traces:
every unit span carries a ``queue_wait`` attribute exactly once.
"""

import pytest

from repro.cluster import verify_passes_distributed
from repro.engine import verify_passes
from repro.passes import ALL_VERIFIED_PASSES
from repro.telemetry import trace as _trace
from repro.telemetry.analyze import (
    coverage_problems,
    load_trace,
    summarize_trace,
)
from repro.telemetry.stats import canonical_bytes, load_store_stats

SUBSET = list(ALL_VERIFIED_PASSES)[:6]


def _run(cache_dir, *, mode, backend):
    if mode == "seq":
        report = verify_passes(SUBSET, jobs=1, cache_dir=str(cache_dir),
                               backend=backend)
    elif mode == "pool":
        report = verify_passes(SUBSET, jobs=2, cache_dir=str(cache_dir),
                               backend=backend)
    else:
        report = verify_passes_distributed(
            SUBSET, workers=2, cache_dir=str(cache_dir), backend=backend)
    payload = load_store_stats(cache_dir)
    assert payload is not None, f"{mode}/{backend} wrote no store-stats.json"
    verdicts = [(r.pass_name, r.verified) for r in report.results]
    return canonical_bytes(payload), verdicts


def test_cold_aggregate_byte_identical_across_modes_and_backends(tmp_path):
    """The acceptance criterion itself: six cold runs (three execution
    modes x two backends), one set of canonical bytes."""
    seen = {}
    for backend in ("jsonl", "sqlite"):
        for mode in ("seq", "pool", "cluster"):
            directory = tmp_path / f"{mode}-{backend}"
            seen[(mode, backend)] = _run(directory, mode=mode,
                                         backend=backend)
    blobs = {blob for blob, _ in seen.values()}
    verdict_sets = {tuple(verdicts) for _, verdicts in seen.values()}
    assert len(blobs) == 1, "canonical aggregates diverged across modes"
    assert len(verdict_sets) == 1


def test_warm_aggregate_byte_identical_at_any_worker_count(tmp_path):
    """Warm runs read everything from the store; hit accounting must agree
    between an in-process and a distributed pass over the same cache."""
    verify_passes(SUBSET, jobs=1, cache_dir=str(tmp_path))   # populate
    warm_seq, _ = _run(tmp_path, mode="seq", backend="jsonl")
    warm_cluster, _ = _run(tmp_path, mode="cluster", backend="jsonl")
    assert warm_seq == warm_cluster


def test_every_unit_span_carries_queue_wait_exactly_once(tmp_path):
    _trace.configure(str(tmp_path / "trace"), node="main")
    try:
        verify_passes_distributed(SUBSET, workers=2,
                                  cache_dir=str(tmp_path / "cache"))
    finally:
        _trace.shutdown()
    records = load_trace(str(tmp_path / "trace"))
    summary = summarize_trace(records)
    assert coverage_problems(summary) == []
    unit_spans = [rec for rec in records
                  if rec.get("t") == "span" and rec.get("kind") == "unit"]
    assert len(unit_spans) == len(SUBSET)
    for span in unit_spans:
        wait = span["attrs"].get("queue_wait")
        assert isinstance(wait, (int, float)) and wait >= 0.0
    # Attribution survives into the summary: per-worker queue seconds sum
    # to the run's split, and every worker reports a utilisation share.
    workers = summary["workers"]
    assert workers
    assert summary["queue_seconds"] == pytest.approx(
        sum(entry["queue_seconds"] for entry in workers.values()), abs=1e-6)
    for entry in workers.values():
        assert entry["utilisation"] is None or 0.0 <= entry["utilisation"] <= 1.0


def test_sharded_requeue_paths_still_account_once(tmp_path):
    """shard_threshold=0 forces the shard planner; aggregates must stay
    identical to the unsharded in-process run over the same suite."""
    sharded, verdicts_sharded = _run_sharded(tmp_path / "shard")
    plain, verdicts_plain = _run(tmp_path / "plain", mode="seq",
                                 backend="jsonl")
    assert sharded == plain
    assert verdicts_sharded == verdicts_plain


def _run_sharded(cache_dir):
    report = verify_passes_distributed(
        SUBSET, workers=2, cache_dir=str(cache_dir), backend="jsonl",
        shard_threshold=0)
    payload = load_store_stats(cache_dir)
    assert payload is not None
    return canonical_bytes(payload), [(r.pass_name, r.verified)
                                      for r in report.results]
