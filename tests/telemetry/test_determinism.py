"""Trace determinism and exactly-once cluster coverage.

Two identical sequential runs must produce equal span trees modulo
timestamps and ids, and a merged cluster trace must cover every planned
unit exactly once — including under steal and requeue, where the same
unit can legitimately be proved twice but only one result is accepted.
"""

import pytest

from repro.cluster import verify_passes_distributed
from repro.cluster.coordinator import UnitScheduler
from repro.cluster.plan import WorkUnit
from repro.engine import verify_passes
from repro.passes import ALL_VERIFIED_PASSES
from repro.telemetry import trace as _trace
from repro.telemetry.analyze import (
    canonical_tree,
    coverage_problems,
    load_trace,
    summarize_trace,
)

SUBSET = list(ALL_VERIFIED_PASSES)[:6]


def _traced_run(directory, cache_dir, **kwargs):
    _trace.configure(str(directory), node="main")
    try:
        report = verify_passes(SUBSET, jobs=1, cache_dir=str(cache_dir),
                               **kwargs)
    finally:
        _trace.shutdown()
    return report


def test_identical_warm_runs_have_equal_span_trees(tmp_path):
    cache_dir = tmp_path / "cache"
    verify_passes(SUBSET, jobs=1, cache_dir=str(cache_dir))  # populate

    first = _traced_run(tmp_path / "t1", cache_dir)
    second = _traced_run(tmp_path / "t2", cache_dir)
    verdicts = lambda report: [(r.pass_name, r.verified)
                               for r in report.results]
    assert verdicts(first) == verdicts(second)

    tree_a = canonical_tree(load_trace(str(tmp_path / "t1")))
    tree_b = canonical_tree(load_trace(str(tmp_path / "t2")))
    assert tree_a == tree_b
    assert tree_a  # non-empty: the warm run did emit records


def test_identical_cold_runs_have_equal_span_trees(tmp_path):
    first = _traced_run(tmp_path / "t1", tmp_path / "c1")
    second = _traced_run(tmp_path / "t2", tmp_path / "c2")
    tree_a = canonical_tree(load_trace(str(tmp_path / "t1")))
    tree_b = canonical_tree(load_trace(str(tmp_path / "t2")))
    assert tree_a == tree_b
    # The cold tree carries one pass span per verified pass.
    names = {span["name"] for span in _flatten(tree_a)
             if span["kind"] == "pass"}
    assert names == {cls.__name__ for cls in SUBSET}
    assert first.stats.cache_misses == len(SUBSET)
    assert second.stats.cache_misses == len(SUBSET)


def _flatten(tree):
    for node in tree:
        yield node
        yield from _flatten(node["children"])


# --------------------------------------------------------------------- #
# Cluster coverage
# --------------------------------------------------------------------- #

def test_cold_cluster_trace_covers_every_unit_exactly_once(tmp_path):
    _trace.configure(str(tmp_path / "trace"), node="main")
    try:
        report = verify_passes_distributed(
            SUBSET, workers=2, cache_dir=str(tmp_path / "cache"))
    finally:
        _trace.shutdown()
    assert report.stats.cluster["units_total"] == len(SUBSET)

    summary = summarize_trace(load_trace(str(tmp_path / "trace")))
    assert len(summary["planned_units"]) == len(SUBSET)
    assert coverage_problems(summary) == []
    assert sum(entry["units"] for entry in summary["workers"].values()) \
        == len(SUBSET)


def test_sharded_cluster_trace_covers_every_unit_exactly_once(tmp_path):
    _trace.configure(str(tmp_path / "trace"), node="main")
    try:
        report = verify_passes_distributed(
            SUBSET[:3], workers=2, cache_dir=str(tmp_path / "cache"),
            shard_threshold=0)
    finally:
        _trace.shutdown()
    assert report.stats.cluster["split_passes"] >= 1

    summary = summarize_trace(load_trace(str(tmp_path / "trace")))
    assert len(summary["planned_units"]) \
        == report.stats.cluster["units_total"]
    assert coverage_problems(summary) == []


def _units(count):
    return [WorkUnit(unit_id=f"u{i}", index=i, kind="pass",
                     spec={"name": "X", "coupling": None}, key=f"u{i}")
            for i in range(count)]


def test_scheduler_accepts_a_stolen_unit_exactly_once():
    """Steal + duplicate completion: one accept, one duplicate event."""
    tracer = _trace.Tracer(None, node="main")
    scheduler = UnitScheduler(_units(1), steal_after=0.0, tracer=tracer)

    kind, slow = scheduler.lease("worker-1")
    assert kind == "unit"
    kind, stolen = scheduler.lease("worker-2")  # steal_after=0: steals it
    assert kind == "unit" and stolen.unit_id == slow.unit_id
    assert scheduler.stolen == 1

    result = {"unit_id": stolen.unit_id, "ok": True, "payload": {}}
    assert scheduler.complete(stolen.unit_id, result) is True
    assert scheduler.complete(stolen.unit_id, result) is False  # duplicate

    names = [rec["name"] for rec in tracer.records]
    assert names.count("cluster.steal") == 1
    assert names.count("cluster.duplicate") == 1
    assert names.count("cluster.lease") == 1


def test_scheduler_traces_requeue_on_connection_loss():
    tracer = _trace.Tracer(None, node="main")
    scheduler = UnitScheduler(_units(1), tracer=tracer)
    kind, unit = scheduler.lease("worker-1")
    assert kind == "unit"
    scheduler.release("worker-1")
    requeues = [rec for rec in tracer.records
                if rec["name"] == "cluster.requeue"]
    assert len(requeues) == 1
    assert requeues[0]["attrs"]["reason"] == "connection-lost"
    # The unit goes back out to the next worker.
    kind, again = scheduler.lease("worker-2")
    assert kind == "unit" and again.unit_id == unit.unit_id


def test_scheduler_traces_retry_and_terminal_failure():
    tracer = _trace.Tracer(None, node="main")
    scheduler = UnitScheduler(_units(1), max_attempts=2, tracer=tracer)
    for attempt in range(2):
        kind, unit = scheduler.lease("worker-1")
        assert kind == "unit"
        scheduler.complete(unit.unit_id,
                           {"unit_id": unit.unit_id, "ok": False,
                            "error": "boom"})
    names = [rec["name"] for rec in tracer.records]
    assert names.count("cluster.requeue") == 1
    assert names.count("cluster.failed") == 1
