"""Trace-sink rotation boundaries: absorbed batches must survive rotation.

The JSONL sink rotates ``trace-<node>.jsonl`` at a byte cap, and the
coordinator absorbs worker span batches into that stream mid-run.  The
dangerous case is a batch whose records land either side of a rotation:
the reader must stitch the rotated generations back together oldest-first,
keep parent links intact, and count every planned unit exactly once —
losing a unit span to rotation would make ``--check-coverage`` lie.
"""

import pytest

from repro.telemetry import trace as _trace
from repro.telemetry.analyze import (
    coverage_problems,
    load_trace,
    summarize_trace,
)
from repro.telemetry.trace import TraceWriter, Tracer


def _worker_batch(worker, units):
    """Collect a worker-shaped span batch in a separate collector tracer,
    exactly as ``repro work`` ships them inside result messages."""
    collector = Tracer(node=worker)
    for unit_id in units:
        with collector.span("unit", kind="unit", unit=unit_id,
                            prove_seconds=0.001, transport_seconds=0.0):
            with collector.span("subgoal", kind="subgoal", key=f"k-{unit_id}"):
                pass
    return collector.drain()


@pytest.mark.parametrize("max_bytes", [256, 700])
def test_absorbed_batches_span_rotated_files(tmp_path, max_bytes):
    units = [f"unit-{index:02d}" for index in range(12)]
    writer = TraceWriter(str(tmp_path), node="main",
                         max_bytes=max_bytes, max_files=50)
    tracer = Tracer(writer, node="main")
    tracer.event("cluster.plan", kind="cluster", units=list(units),
                 split_passes=0)
    # Two absorbed batches with a flush between them, so records from one
    # batch straddle at least one rotation boundary at these byte caps.
    tracer.absorb(_worker_batch("worker-1", units[:6]), worker="worker-1")
    writer.flush()
    tracer.absorb(_worker_batch("worker-2", units[6:]), worker="worker-2")
    writer.close()

    files = sorted(tmp_path.glob("trace-*.jsonl*"))
    assert len(files) > 1, "cap did not force a rotation; lower max_bytes"

    summary = summarize_trace(load_trace(str(tmp_path)))
    assert coverage_problems(summary) == []
    assert sorted(summary["planned_units"]) == units
    assert summary["covered_units"] == {unit: 1 for unit in units}
    # Worker attribution survives the merge+rotation round trip.
    assert set(summary["workers"]) == {"worker-1", "worker-2"}
    assert summary["workers"]["worker-1"]["units"] == 6
    assert summary["workers"]["worker-2"]["units"] == 6


def test_rotation_drops_oldest_beyond_max_files(tmp_path):
    writer = TraceWriter(str(tmp_path), node="main",
                         max_bytes=200, max_files=2)
    tracer = Tracer(writer, node="main")
    for index in range(40):
        tracer.event("tick", index=index)
    writer.close()
    files = sorted(path.name for path in tmp_path.glob("trace-*.jsonl*"))
    assert files == ["trace-main.jsonl", "trace-main.jsonl.1",
                     "trace-main.jsonl.2"]
    # The reader stitches what survived, oldest first, without raising.
    records = load_trace(str(tmp_path))
    ticks = [rec["attrs"]["index"] for rec in records
             if rec.get("name") == "tick"]
    assert ticks == sorted(ticks)
    assert ticks[-1] == 39  # the newest records are always present


def test_torn_line_at_rotation_boundary_is_skipped(tmp_path):
    writer = TraceWriter(str(tmp_path), node="main",
                         max_bytes=100000, max_files=3)
    tracer = Tracer(writer, node="main")
    tracer.event("cluster.plan", kind="cluster", units=["u1"], split_passes=0)
    tracer.absorb(_worker_batch("worker-1", ["u1"]), worker="worker-1")
    writer.close()
    live = tmp_path / "trace-main.jsonl"
    with open(live, "a", encoding="utf-8") as handle:
        handle.write('{"t": "span", "id": 99, "name": "torn')  # no newline
    summary = summarize_trace(load_trace(str(tmp_path)))
    assert coverage_problems(summary) == []
