"""CLI surfaces: ``verify --trace/--profile``, ``repro trace``, bench."""

import json

import pytest

from repro.cli import main
from repro.telemetry import trace as _trace


def _verify(tmp_path, *extra):
    return main(["verify", "ApplyLayout", "CXCancellation",
                 "--cache-dir", str(tmp_path / "cache"), *extra])


def test_verify_trace_writes_files_and_reports_to_stderr(tmp_path, capsys):
    trace_dir = tmp_path / "trace"
    assert _verify(tmp_path, "--trace", str(trace_dir)) == 0
    captured = capsys.readouterr()
    # The stdout report is byte-compared elsewhere; telemetry stays on stderr.
    assert "trace:" not in captured.out
    assert "trace:" in captured.err
    assert "repro trace summary" in captured.err
    assert list(trace_dir.glob("trace-*.jsonl"))
    assert _trace.current() is None  # verify shut its tracer down


def test_verify_profile_prints_self_time_table(tmp_path, capsys):
    assert _verify(tmp_path, "--profile") == 0
    captured = capsys.readouterr()
    assert "profile:" in captured.err
    assert "self(s)" in captured.err
    assert "profile:" not in captured.out


def test_trace_summary_lists_passes(tmp_path, capsys):
    trace_dir = tmp_path / "trace"
    _verify(tmp_path, "--trace", str(trace_dir))
    capsys.readouterr()
    assert main(["trace", "summary", str(trace_dir)]) == 0
    out = capsys.readouterr().out
    assert "trace summary:" in out
    assert "ApplyLayout" in out
    assert "CXCancellation" in out


def test_trace_summary_on_missing_directory_is_no_data_not_a_crash(
        tmp_path, capsys):
    # "Nothing here" (missing, empty, or rotated away) is exit 1 with one
    # line on stderr; exit 2 stays reserved for unreadable trace data.
    assert main(["trace", "summary", str(tmp_path / "nope")]) == 1
    assert "no trace to summary" in capsys.readouterr().err


def test_trace_show_and_export_on_empty_directory_exit_one(tmp_path, capsys):
    empty = tmp_path / "rotated-away"
    empty.mkdir()
    assert main(["trace", "show", str(empty)]) == 1
    assert "no trace to show" in capsys.readouterr().err
    assert main(["trace", "export", str(empty)]) == 1
    assert "no trace to export" in capsys.readouterr().err


def test_trace_summary_on_unreadable_data_still_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "trace-main.jsonl").write_text(
        '{"t": "meta", "schema": 999999, "node": "main"}\n')
    assert main(["trace", "summary", str(bad)]) == 2
    assert "cannot load trace" in capsys.readouterr().err


def test_trace_check_coverage_requires_a_cluster_plan(tmp_path, capsys):
    trace_dir = tmp_path / "trace"
    _verify(tmp_path, "--trace", str(trace_dir))  # sequential: no plan
    capsys.readouterr()
    assert main(["trace", "summary", str(trace_dir),
                 "--check-coverage"]) == 1
    assert "no cluster plan" in capsys.readouterr().err


def test_cluster_trace_passes_coverage_check(tmp_path, capsys):
    trace_dir = tmp_path / "trace"
    assert main(["verify", "ApplyLayout", "CXCancellation", "BasicSwap",
                 "--workers", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--trace", str(trace_dir)]) == 0
    capsys.readouterr()
    assert main(["trace", "summary", str(trace_dir),
                 "--check-coverage"]) == 0
    out = capsys.readouterr().out
    assert "planned units traced exactly once" in out
    assert "worker attribution:" in out


def test_trace_show_renders_the_span_tree(tmp_path, capsys):
    trace_dir = tmp_path / "trace"
    _verify(tmp_path, "--trace", str(trace_dir))
    capsys.readouterr()
    assert main(["trace", "show", str(trace_dir), "--depth", "2"]) == 0
    assert "ApplyLayout" in capsys.readouterr().out


def test_trace_export_emits_chrome_json(tmp_path, capsys):
    trace_dir = tmp_path / "trace"
    _verify(tmp_path, "--trace", str(trace_dir))
    output = tmp_path / "chrome.json"
    capsys.readouterr()
    assert main(["trace", "export", str(trace_dir),
                 "--output", str(output)]) == 0
    payload = json.loads(output.read_text())
    assert payload["traceEvents"]
    names = {event["name"] for event in payload["traceEvents"]}
    assert "ApplyLayout" in names


def test_traced_verdicts_match_untraced(tmp_path, capsys):
    """--trace must not steer the run: warm results and cache accounting
    are identical between a traced and an untraced run (the engine block's
    wall clock is the only thing allowed to differ)."""
    _verify(tmp_path, "--format", "json")  # cold, populates cache
    capsys.readouterr()
    _verify(tmp_path, "--format", "json")
    plain = json.loads(capsys.readouterr().out)
    _verify(tmp_path, "--format", "json", "--trace", str(tmp_path / "t"))
    traced = json.loads(capsys.readouterr().out)
    assert plain["results"] == traced["results"]
    assert plain["summary"] == traced["summary"]
    for key in ("cache_hits", "cache_misses", "passes_total"):
        assert plain["engine"][key] == traced["engine"][key], key


def test_bench_telemetry_smoke(tmp_path, capsys, monkeypatch):
    """One-repeat bench on a tiny suite: verdicts identical, JSON recorded."""
    from repro.passes import ALL_VERIFIED_PASSES
    import repro.bench.telemetry as bench

    monkeypatch.setattr(
        bench, "_suite",
        lambda pass_classes=None: list(ALL_VERIFIED_PASSES)[:2])
    record = tmp_path / "bench.json"
    assert bench.main(["--repeats", "1", "--record", str(record)]) == 0
    payload = json.loads(record.read_text())
    assert payload["verdicts_identical"] is True
    assert payload["passes"] == 2
    assert payload["records_per_warm_run"]["events"] > 0
    out = capsys.readouterr().out
    assert "overhead" in out


def test_cache_prune_reports_cert_accounting(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    main(["verify", "ApplyLayout", "--cache-dir", str(cache_dir),
          "--backend", "sqlite"])
    capsys.readouterr()
    assert main(["cache", "prune", "--max-entries", "1",
                 "--cache-dir", str(cache_dir), "--backend", "sqlite"]) == 0
    out = capsys.readouterr().out
    assert "orphaned certificates dropped" in out


def test_status_reports_certificate_tier(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    main(["verify", "ApplyLayout", "--cache-dir", str(cache_dir),
          "--backend", "sqlite"])
    capsys.readouterr()
    # Exit 1: no daemon is running — but the store block still renders.
    assert main(["status", "--cache-dir", str(cache_dir)]) == 1
    out = capsys.readouterr().out
    assert "certificates:" in out
