"""Proof-store analytics: the canonical aggregate, the eviction journal,
persistence, and the determinism promise across execution modes."""

import json

import pytest

from repro.telemetry import stats as store_stats
from repro.telemetry.stats import (
    HOT_KEY_LIMIT,
    StatsRecorder,
    append_evictions,
    canonical_bytes,
    load_evictions,
    load_store_stats,
    render_stats_table,
    store_stats_path,
)


# --------------------------------------------------------------------------- #
# Recorder: the canonical accounting rule
# --------------------------------------------------------------------------- #
def test_pass_tier_counts_hit_stale_miss():
    recorder = StatsRecorder()
    recorder.note_pass("h", "hit")
    recorder.note_pass("s", "stale")
    recorder.note_pass("m", "miss")
    recorder.note_pass(None, "hit")           # uncacheable pass: ignored
    tiers = recorder.canonical()["tiers"]["pass"]
    assert tiers == {"hits": 1, "misses": 1, "stale": 1,
                     "ratio": pytest.approx(1 / 3)}


def test_subgoal_rule_charges_proved_keys_one_miss():
    """A key the run proved itself cost one miss; every further access of
    it — and every access of a key served from the table — is a hit.
    This is the rule that makes the aggregate worker-count independent."""
    recorder = StatsRecorder()
    # Unit A proves k1 and reads k2 twice; unit B re-reads k1.
    recorder.note_unit(["k2", "k2"], ["k1"])
    recorder.note_unit(["k1"], [])
    tiers = recorder.canonical()["tiers"]["subgoal"]
    assert tiers["hits"] == 3                 # k2 twice + k1 re-read
    assert tiers["misses"] == 1               # k1's cold proof
    assert tiers["keys"] == 2
    assert tiers["ratio"] == pytest.approx(0.75)


def test_certificates_deduplicate_across_sources():
    recorder = StatsRecorder()
    recorder.note_certificates(["c1", "c2"])
    recorder.note_certificates(["c2", "c3"])  # idempotent set-union
    assert recorder.canonical()["tiers"]["certificate"]["stored"] == 3


def test_hot_keys_sorted_and_capped():
    recorder = StatsRecorder()
    for index in range(HOT_KEY_LIMIT + 20):
        recorder.note_unit([f"k{index:04d}"] * (2 if index == 7 else 1), [])
    rows = recorder.canonical()["hot_keys"]
    assert len(rows) == HOT_KEY_LIMIT
    assert rows[0]["key"] == "k0007"          # most accesses first
    assert rows[0]["accesses"] == 2
    tail = [row["key"] for row in rows[1:]]
    assert tail == sorted(tail)               # then deterministic key order


def test_canonical_is_independent_of_feed_order():
    one, other = StatsRecorder(), StatsRecorder()
    one.note_unit(["a"], ["b"])
    one.note_unit(["b"], [])
    one.note_pass("p", "hit")
    other.note_pass("p", "hit")
    other.note_unit(["b"], [])
    other.note_unit(["a"], ["b"])
    payload_one = {"canonical": one.canonical()}
    payload_other = {"canonical": other.canonical()}
    assert canonical_bytes(payload_one) == canonical_bytes(payload_other)


# --------------------------------------------------------------------------- #
# Eviction journal -> wasted-eviction counter
# --------------------------------------------------------------------------- #
def test_finalize_consumes_re_missed_journal_entries(tmp_path):
    append_evictions(tmp_path, [("subgoal", "gone"), ("subgoal", "unused"),
                                ("pass", "cold")])
    recorder = StatsRecorder(tmp_path)
    recorder.note_unit([], ["gone"])          # evicted, then re-proved
    recorder.note_pass("cold", "miss")        # evicted, then re-missed
    assert recorder.finalize() == 2
    assert recorder.canonical()["wasted_evictions"] == 2
    # Counted entries are consumed; the untouched one stays for later runs.
    assert load_evictions(tmp_path) == [{"tier": "subgoal", "key": "unused"}]
    # finalize() is idempotent — a second call must not double-count.
    assert recorder.finalize() == 2


def test_unreferenced_journal_entries_survive(tmp_path):
    append_evictions(tmp_path, [("subgoal", "maybe-later")])
    recorder = StatsRecorder(tmp_path)
    recorder.note_unit(["hot"], [])
    assert recorder.finalize() == 0
    assert load_evictions(tmp_path) == [{"tier": "subgoal",
                                         "key": "maybe-later"}]


# --------------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------------- #
def test_save_load_round_trip(tmp_path):
    recorder = StatsRecorder(tmp_path, backend="jsonl", workers=2)
    recorder.note_pass("p", "hit")
    recorder.note_io("pass", hit=True, seconds=0.001, nbytes=64)
    path = recorder.finalize_and_save()
    assert path == store_stats_path(tmp_path)
    payload = load_store_stats(tmp_path)
    assert payload["canonical"]["tiers"]["pass"]["hits"] == 1
    assert payload["local"]["backend"] == "jsonl"
    assert payload["local"]["workers"] == 2
    assert payload["local"]["io"]["pass"]["bytes"] == 64


def test_load_rejects_corrupt_and_foreign_schema(tmp_path):
    assert load_store_stats(tmp_path) is None
    with open(store_stats_path(tmp_path), "w", encoding="utf-8") as handle:
        handle.write("not json")
    assert load_store_stats(tmp_path) is None
    with open(store_stats_path(tmp_path), "w", encoding="utf-8") as handle:
        json.dump({"canonical": {"schema": -1}, "local": {}}, handle)
    assert load_store_stats(tmp_path) is None


def test_merge_io_folds_worker_deltas():
    recorder = StatsRecorder()
    recorder.merge_io("remote-subgoal", {"gets": 3, "hits": 2, "misses": 1,
                                         "seconds": 0.5, "bytes": 100})
    recorder.merge_io("remote-subgoal", {"gets": 1, "hits": 1, "misses": 0,
                                         "seconds": 0.25, "bytes": 20})
    recorder.merge_io("remote-subgoal", "garbage")        # ignored
    io = recorder.local()["io"]["remote-subgoal"]
    assert io == {"gets": 4, "hits": 3, "misses": 1,
                  "seconds": 0.75, "bytes": 120}


def test_render_table_mentions_every_surface(tmp_path):
    recorder = StatsRecorder(tmp_path, backend="sqlite", workers=None)
    recorder.note_pass("p", "stale")
    recorder.note_unit(["s"], [])
    recorder.note_io("subgoal", hit=True, nbytes=10)
    recorder.finalize_and_save()
    text = "\n".join(render_stats_table(load_store_stats(tmp_path)))
    assert "stale re-proved" in text
    assert "wasted evictions" in text
    assert "hot keys" in text
    assert "not canonical" in text            # local section is labelled


def test_set_enabled_round_trips():
    previous = store_stats.set_enabled(False)
    try:
        assert store_stats.enabled() is False
    finally:
        store_stats.set_enabled(previous)
    assert store_stats.enabled() is previous
