"""The shared noise-aware thresholds (bench gate + run differencing)."""

from repro.telemetry.bounds import (
    DEFAULT_MAX_OVERHEAD_PCT,
    DEFAULT_MIN_SECONDS,
    DEFAULT_MIN_SPEEDUP,
    DEFAULT_NOISE_PCT,
    exceeds_ratio,
    is_regression,
    regression_ratio,
)


def test_exceeds_ratio_basic():
    assert exceeds_ratio(1.3, 1.0, max_pct=25.0)
    assert not exceeds_ratio(1.2, 1.0, max_pct=25.0)
    # The bound itself is not an exceedance.
    assert not exceeds_ratio(1.25, 1.0, max_pct=25.0)


def test_exceeds_ratio_degenerate_reference():
    # No meaningful baseline: never flag on a ratio alone.
    assert not exceeds_ratio(10.0, 0.0, max_pct=25.0)
    assert not exceeds_ratio(10.0, -1.0, max_pct=25.0)


def test_regression_ratio():
    assert regression_ratio(1.0, 2.0) == 2.0
    assert regression_ratio(0.0, 2.0) is None
    assert regression_ratio(2.0, 0.0) is None


def test_is_regression_needs_both_bounds():
    # Beyond the relative cushion AND the absolute floor.
    assert is_regression(1.0, 1.5)
    # Within the relative cushion.
    assert not is_regression(1.0, 1.1)
    # 4x slower but microseconds: below the absolute floor.
    assert not is_regression(0.0001, 0.0004)
    # Faster is never a regression.
    assert not is_regression(1.0, 0.5)


def test_is_regression_custom_bounds():
    assert is_regression(1.0, 1.2, noise_pct=10.0)
    assert not is_regression(1.0, 1.2, noise_pct=30.0)
    assert not is_regression(1.0, 1.5, min_seconds=1.0)


def test_default_constants_are_sane():
    # check_bench.py gates on these; pin the contract, not the values.
    assert DEFAULT_MIN_SPEEDUP > 1.0
    assert 0.0 < DEFAULT_MAX_OVERHEAD_PCT < 100.0
    assert 0.0 < DEFAULT_NOISE_PCT < 100.0
    assert DEFAULT_MIN_SECONDS > 0.0


def test_check_bench_imports_the_shared_bounds():
    """tools/check_bench.py must gate with this module, not a private copy."""
    import importlib.util
    from pathlib import Path

    tool = Path(__file__).resolve().parents[2] / "tools" / "check_bench.py"
    spec = importlib.util.spec_from_file_location("check_bench_under_test", tool)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.exceeds_ratio is exceeds_ratio
    assert module.DEFAULT_MIN_SPEEDUP == DEFAULT_MIN_SPEEDUP
