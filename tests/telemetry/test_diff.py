"""Run differencing: wall deltas attributed pass -> subgoal -> method."""

import pytest

from repro.telemetry.diff import diff_summaries, render_diff


def _summary(passes, *, subgoals=(), methods=None, solvers=None, cache=None):
    return {
        "schema": 1,
        "records": 10,
        "passes": [{"name": n, "seconds": s, "subgoals": 1,
                    "worker": None, "solver": "builtin"} for n, s in passes],
        "subgoals": [{"key": k, "method": "structural", "seconds": s,
                      "worker": None} for k, s in subgoals],
        "methods": methods or {},
        "solvers": solvers or {},
        "cache": cache or {},
        "workers": {},
    }


def test_identical_runs_diff_clean():
    summary = _summary([("A", 0.1), ("B", 0.05)])
    diff = diff_summaries(summary, summary)
    assert diff["total_delta_seconds"] == 0.0
    assert diff["regressions"] == []
    assert all(entry["delta"] == 0.0 for entry in diff["passes"])


def test_attribution_is_complete_by_construction():
    before = _summary([("A", 0.10), ("B", 0.05), ("C", 0.02)])
    after = _summary([("A", 0.30), ("B", 0.04), ("D", 0.01)])
    diff = diff_summaries(before, after)
    assert diff["total_before_seconds"] == 0.17
    assert diff["total_after_seconds"] == 0.35
    attributed = sum(entry["delta"] for entry in diff["passes"])
    assert abs(attributed - diff["total_delta_seconds"]) < 1e-9
    assert abs(diff["attributed_delta_seconds"]
               - diff["total_delta_seconds"]) < 1e-9


def test_slowdown_beyond_noise_flags_as_regression():
    before = _summary([("A", 0.10), ("B", 0.05)])
    after = _summary([("A", 0.30), ("B", 0.05)])
    diff = diff_summaries(before, after)
    flagged = [entry["name"] for entry in diff["regressions"]]
    assert flagged == ["A"]
    top = diff["passes"][0]
    assert top["name"] == "A"
    assert top["ratio"] == pytest.approx(3.0)


def test_slowdown_inside_noise_does_not_flag():
    before = _summary([("A", 0.100)])
    after = _summary([("A", 0.110)])  # +10% < the 20% cushion
    assert diff_summaries(before, after)["regressions"] == []


def test_microsecond_blowup_stays_under_the_floor():
    before = _summary([("A", 0.0001)])
    after = _summary([("A", 0.0004)])
    assert diff_summaries(before, after)["regressions"] == []


def test_pass_only_in_candidate_is_the_cold_cache_signature():
    # A warm baseline records no span for a cached pass; the pass
    # surfacing with real cost must flag even without a baseline figure.
    before = _summary([])
    after = _summary([("A", 0.02)])
    diff = diff_summaries(before, after)
    assert [entry["name"] for entry in diff["regressions"]] == ["A"]
    entry = diff["passes"][0]
    assert entry["only_in"] == "after" and entry["ratio"] is None


def test_pass_only_in_baseline_is_a_speedup_not_a_regression():
    before = _summary([("A", 0.02)])
    after = _summary([])
    diff = diff_summaries(before, after)
    assert diff["regressions"] == []
    assert diff["passes"][0]["only_in"] == "before"


def test_subgoal_method_and_cache_drift():
    before = _summary(
        [("A", 0.1)], subgoals=[("s1", 0.01), ("s2", 0.02)],
        methods={"structural": {"count": 5, "seconds": 0.03}},
        solvers={"builtin": {"count": 5, "seconds": 0.03}},
        cache={"pass.cache.hit": 1, "pass.cache.miss": 3})
    after = _summary(
        [("A", 0.1)], subgoals=[("s1", 0.05)],
        methods={"structural": {"count": 7, "seconds": 0.06}},
        solvers={"builtin": {"count": 7, "seconds": 0.06}},
        cache={"pass.cache.hit": 4, "pass.cache.miss": 0})
    diff = diff_summaries(before, after)
    subgoals = {entry["name"]: entry for entry in diff["subgoals"]}
    assert subgoals["s1"]["delta"] == 0.04
    assert subgoals["s2"]["only_in"] == "before"
    assert diff["methods"][0] == {"name": "structural", "count_delta": 2,
                                  "seconds_delta": 0.03}
    cache = {row["name"]: row["delta"] for row in diff["cache"]}
    assert cache == {"pass.cache.hit": 3, "pass.cache.miss": -3}


def test_duplicate_subgoal_keys_accumulate():
    before = _summary([], subgoals=[("s1", 0.01), ("s1", 0.02)])
    after = _summary([], subgoals=[("s1", 0.03)])
    diff = diff_summaries(before, after)
    assert diff["subgoals"][0]["delta"] == 0.0


def test_render_diff_flags_and_footer():
    before = _summary([("A", 0.10), ("B", 0.05)])
    after = _summary([("A", 0.30), ("B", 0.05)])
    lines = render_diff(diff_summaries(before, after))
    text = "\n".join(lines)
    assert "trace diff: 0.1500s -> 0.3500s" in text
    assert "REGRESSION" in text
    assert "regressions: 1 pass(es) beyond the noise bound: A" in text


def test_render_diff_clean_footer():
    summary = _summary([("A", 0.1)])
    lines = render_diff(diff_summaries(summary, summary))
    assert lines[-1].startswith("no significant regression")
