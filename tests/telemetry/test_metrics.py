"""Counters, Prometheus exposition, and the daemon ``/metrics`` endpoint."""

import threading

import pytest

from repro.passes import ALL_VERIFIED_PASSES
from repro.service.client import connect
from repro.service.daemon import ProofDaemon, VerificationService
from repro.service.protocol import make_pass_spec
from repro.telemetry.metrics import (
    CounterRegistry,
    parse_prometheus,
    render_prometheus,
)


# --------------------------------------------------------------------- #
# CounterRegistry
# --------------------------------------------------------------------- #

def test_counter_registry_inc_set_get():
    counters = CounterRegistry()
    counters.inc("a_total")
    counters.inc("a_total", 4)
    counters.set("gauge", 2.5)
    assert counters.get("a_total") == 5
    assert counters.get("gauge") == 2.5
    assert counters.get("missing", -1) == -1
    snapshot = counters.snapshot()
    snapshot["a_total"] = 999  # snapshots are copies
    assert counters.get("a_total") == 5


def test_counter_registry_merge_adds_snapshots():
    counters = CounterRegistry()
    counters.inc("a_total", 2)
    counters.merge({"a_total": 3, "b_total": 5})
    counters.merge({})  # merging nothing is a no-op
    assert counters.get("a_total") == 5
    assert counters.get("b_total") == 5


def test_counter_registry_merge_combines_worker_payloads():
    """The fuzz campaign folds per-unit snapshots into one registry."""
    workers = [CounterRegistry() for _ in range(3)]
    for index, registry in enumerate(workers):
        registry.inc("repro_fuzz_cases_total", index + 1)
    combined = CounterRegistry()
    for registry in workers:
        combined.merge(registry.snapshot())
    assert combined.get("repro_fuzz_cases_total") == 6


def test_counter_registry_is_thread_safe():
    counters = CounterRegistry()

    def bump():
        for _ in range(1000):
            counters.inc("n_total")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counters.get("n_total") == 8000


def test_histogram_observe_buckets_are_cumulative():
    counters = CounterRegistry()
    counters.observe("latency", 0.003, buckets=(0.001, 0.005, 0.1))
    counters.observe("latency", 0.05, buckets=(0.001, 0.005, 0.1))
    counters.observe("latency", 99.0, buckets=(0.001, 0.005, 0.1))
    (row,) = counters.histogram_snapshot()
    assert row["bounds"] == (0.001, 0.005, 0.1)
    assert row["counts"] == [0, 1, 2]  # cumulative: le=0.005 holds 0.003
    assert row["count"] == 3           # +Inf comes from the total
    assert row["sum"] == pytest.approx(99.053)


def test_histogram_labels_partition_series():
    counters = CounterRegistry()
    counters.observe("latency", 0.01, labels=(("solver", "z3"),))
    counters.observe("latency", 0.02, labels=(("solver", "builtin"),))
    counters.observe("latency", 0.03, labels=(("solver", "builtin"),))
    rows = counters.histogram_snapshot()
    by_labels = {row["labels"]: row["count"] for row in rows}
    assert by_labels == {(("solver", "builtin"),): 2, (("solver", "z3"),): 1}


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #

def test_render_parse_round_trip():
    text = render_prometheus({"x_total": 3, "uptime_seconds": 1.5})
    parsed = parse_prometheus(text)
    assert parsed == {"x_total": 3.0, "uptime_seconds": 1.5}


def test_render_types_and_help():
    text = render_prometheus(
        {"served_total": 7, "inflight": 1},
        types={"inflight": "gauge"},
        help_text={"served_total": "requests served"},
    )
    lines = text.splitlines()
    assert "# HELP served_total requests served" in lines
    assert "# TYPE served_total counter" in lines  # _total defaults counter
    assert "# TYPE inflight gauge" in lines
    assert "served_total 7" in lines


def test_parse_skips_comments_and_garbage():
    parsed = parse_prometheus("# HELP x y\n# TYPE x counter\nx 4\nbad line\n\n")
    assert parsed == {"x": 4.0}


def test_render_histogram_follows_the_prometheus_convention():
    counters = CounterRegistry()
    counters.observe("verify_latency_seconds", 0.004,
                     labels=(("solver", "builtin"),), buckets=(0.005, 0.1))
    text = render_prometheus(
        {}, help_text={"verify_latency_seconds": "verify latency"},
        histograms=counters.histogram_snapshot())
    lines = text.splitlines()
    assert "# HELP verify_latency_seconds verify latency" in lines
    assert "# TYPE verify_latency_seconds histogram" in lines
    assert ('verify_latency_seconds_bucket{solver="builtin",le="0.005"} 1'
            in lines)
    assert ('verify_latency_seconds_bucket{solver="builtin",le="+Inf"} 1'
            in lines)
    assert 'verify_latency_seconds_count{solver="builtin"} 1' in lines
    assert any(line.startswith('verify_latency_seconds_sum{solver="builtin"}')
               for line in lines)
    # The labeled series round-trip through the parser with their label
    # block verbatim; unlabeled parsing is untouched (repro status relies
    # on that).
    parsed = parse_prometheus(text)
    assert parsed['verify_latency_seconds_bucket{solver="builtin",le="+Inf"}'] \
        == 1.0


# --------------------------------------------------------------------- #
# Daemon endpoint
# --------------------------------------------------------------------- #

@pytest.fixture
def daemon(tmp_path):
    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


def _specs(classes):
    from repro.bench.table2 import pass_kwargs_for

    return [make_pass_spec(cls, pass_kwargs_for(cls)) for cls in classes]


def test_metrics_endpoint_counts_requests(daemon, tmp_path):
    client = connect(tmp_path)
    classes = ALL_VERIFIED_PASSES[:3]
    client.verify_specs(_specs(classes))
    client.verify_specs(_specs(classes))  # warm: served from the store

    metrics = parse_prometheus(client.metrics())
    assert metrics["repro_requests_total"] == 2.0
    assert metrics["repro_passes_served_total"] == 6.0
    assert metrics["repro_cache_misses_total"] == 3.0
    assert metrics["repro_cache_hits_total"] == 3.0
    assert metrics["repro_inflight_requests"] == 0.0
    assert metrics["repro_request_errors_total"] == 0.0
    assert metrics["repro_uptime_seconds"] >= 0.0
    assert metrics["repro_protocol_version"] >= 1.0
    assert metrics["repro_store_entries_live"] >= 3.0


def test_metrics_endpoint_is_plain_text(daemon, tmp_path):
    client = connect(tmp_path)
    text = client.metrics()
    assert "# TYPE repro_requests_total counter" in text
    assert "# HELP repro_requests_total" in text


def test_status_payload_carries_counters(daemon, tmp_path):
    client = connect(tmp_path)
    client.verify_specs(_specs(ALL_VERIFIED_PASSES[:2]))
    status = client.status()
    assert status["counters"]["repro_requests_total"] == 1
    assert status["counters"]["repro_passes_served_total"] == 2


def test_protocol_errors_are_counted(daemon, tmp_path):
    from repro.service.protocol import ProtocolError

    client = connect(tmp_path)
    with pytest.raises(ProtocolError):
        client.verify_specs([])  # empty request is a protocol error
    metrics = parse_prometheus(client.metrics())
    assert metrics["repro_request_errors_total"] == 1.0
    assert metrics["repro_inflight_requests"] == 0.0


def test_metrics_endpoint_serves_latency_histogram_and_rss(daemon, tmp_path):
    client = connect(tmp_path)
    client.verify_specs(_specs(ALL_VERIFIED_PASSES[:2]))
    client.verify_specs(_specs(ALL_VERIFIED_PASSES[:2]))  # warm request
    text = client.metrics()
    assert "# TYPE repro_verify_latency_seconds histogram" in text
    metrics = parse_prometheus(text)
    # Two verify requests observed, partitioned by solver backend.
    inf_keys = [key for key in metrics
                if key.startswith("repro_verify_latency_seconds_bucket")
                and 'le="+Inf"' in key]
    assert inf_keys and sum(metrics[key] for key in inf_keys) == 2.0
    assert any('solver="' in key for key in inf_keys)
    # The daemon samples its own rss where /proc (or getrusage) allows.
    rss = metrics.get("repro_rss_bytes")
    assert rss is None or rss > 0


def test_status_cli_reports_metrics_unavailable(daemon, tmp_path, capsys,
                                                monkeypatch):
    """A daemon predating /metrics (or an erroring endpoint) degrades to an
    explicit 'unavailable' line instead of breaking ``repro status``."""
    from repro.cli import main
    from repro.service.client import DaemonClient, DaemonUnavailable

    assert main(["status", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "served      :" in out and "metrics     :" not in out

    def _no_metrics(self):
        raise DaemonUnavailable("404 from an old daemon")

    monkeypatch.setattr(DaemonClient, "metrics", _no_metrics)
    assert main(["status", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "metrics     : unavailable" in out
    assert "served      :" not in out
