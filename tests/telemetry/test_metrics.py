"""Counters, Prometheus exposition, and the daemon ``/metrics`` endpoint."""

import threading

import pytest

from repro.passes import ALL_VERIFIED_PASSES
from repro.service.client import connect
from repro.service.daemon import ProofDaemon, VerificationService
from repro.service.protocol import make_pass_spec
from repro.telemetry.metrics import (
    CounterRegistry,
    parse_prometheus,
    render_prometheus,
)


# --------------------------------------------------------------------- #
# CounterRegistry
# --------------------------------------------------------------------- #

def test_counter_registry_inc_set_get():
    counters = CounterRegistry()
    counters.inc("a_total")
    counters.inc("a_total", 4)
    counters.set("gauge", 2.5)
    assert counters.get("a_total") == 5
    assert counters.get("gauge") == 2.5
    assert counters.get("missing", -1) == -1
    snapshot = counters.snapshot()
    snapshot["a_total"] = 999  # snapshots are copies
    assert counters.get("a_total") == 5


def test_counter_registry_is_thread_safe():
    counters = CounterRegistry()

    def bump():
        for _ in range(1000):
            counters.inc("n_total")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counters.get("n_total") == 8000


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #

def test_render_parse_round_trip():
    text = render_prometheus({"x_total": 3, "uptime_seconds": 1.5})
    parsed = parse_prometheus(text)
    assert parsed == {"x_total": 3.0, "uptime_seconds": 1.5}


def test_render_types_and_help():
    text = render_prometheus(
        {"served_total": 7, "inflight": 1},
        types={"inflight": "gauge"},
        help_text={"served_total": "requests served"},
    )
    lines = text.splitlines()
    assert "# HELP served_total requests served" in lines
    assert "# TYPE served_total counter" in lines  # _total defaults counter
    assert "# TYPE inflight gauge" in lines
    assert "served_total 7" in lines


def test_parse_skips_comments_and_garbage():
    parsed = parse_prometheus("# HELP x y\n# TYPE x counter\nx 4\nbad line\n\n")
    assert parsed == {"x": 4.0}


# --------------------------------------------------------------------- #
# Daemon endpoint
# --------------------------------------------------------------------- #

@pytest.fixture
def daemon(tmp_path):
    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


def _specs(classes):
    from repro.bench.table2 import pass_kwargs_for

    return [make_pass_spec(cls, pass_kwargs_for(cls)) for cls in classes]


def test_metrics_endpoint_counts_requests(daemon, tmp_path):
    client = connect(tmp_path)
    classes = ALL_VERIFIED_PASSES[:3]
    client.verify_specs(_specs(classes))
    client.verify_specs(_specs(classes))  # warm: served from the store

    metrics = parse_prometheus(client.metrics())
    assert metrics["repro_requests_total"] == 2.0
    assert metrics["repro_passes_served_total"] == 6.0
    assert metrics["repro_cache_misses_total"] == 3.0
    assert metrics["repro_cache_hits_total"] == 3.0
    assert metrics["repro_inflight_requests"] == 0.0
    assert metrics["repro_request_errors_total"] == 0.0
    assert metrics["repro_uptime_seconds"] >= 0.0
    assert metrics["repro_protocol_version"] >= 1.0
    assert metrics["repro_store_entries_live"] >= 3.0


def test_metrics_endpoint_is_plain_text(daemon, tmp_path):
    client = connect(tmp_path)
    text = client.metrics()
    assert "# TYPE repro_requests_total counter" in text
    assert "# HELP repro_requests_total" in text


def test_status_payload_carries_counters(daemon, tmp_path):
    client = connect(tmp_path)
    client.verify_specs(_specs(ALL_VERIFIED_PASSES[:2]))
    status = client.status()
    assert status["counters"]["repro_requests_total"] == 1
    assert status["counters"]["repro_passes_served_total"] == 2


def test_protocol_errors_are_counted(daemon, tmp_path):
    from repro.service.protocol import ProtocolError

    client = connect(tmp_path)
    with pytest.raises(ProtocolError):
        client.verify_specs([])  # empty request is a protocol error
    metrics = parse_prometheus(client.metrics())
    assert metrics["repro_request_errors_total"] == 1.0
    assert metrics["repro_inflight_requests"] == 0.0
