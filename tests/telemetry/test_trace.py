"""Core tracing API: spans, events, sinks, rotation, absorption."""

import json
import os

import pytest

from repro.telemetry import trace as _trace
from repro.telemetry.trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceWriter,
    trace_filename,
)


def _read_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# --------------------------------------------------------------------- #
# Tracer structure
# --------------------------------------------------------------------- #

def test_span_nesting_and_parenting():
    tracer = Tracer(None, node="t")
    with tracer.span("outer", kind="run"):
        with tracer.span("inner", kind="pass"):
            tracer.event("hit", kind="cache")
    records = tracer.records
    # Spans are written on completion: children precede parents.
    assert [rec["t"] for rec in records] == ["event", "span", "span"]
    event, inner, outer = records
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert inner["parent"] == outer["id"]
    assert event["parent"] == inner["id"]
    assert outer["parent"] is None
    assert tracer.spans_emitted == 2 and tracer.events_emitted == 1


def test_span_handle_attrs_mutate_until_close():
    tracer = Tracer(None, node="t")
    with tracer.span("work", kind="pass", fixed=1) as handle:
        handle.attrs["late"] = "annotation"
    (span,) = tracer.records
    assert span["attrs"] == {"fixed": 1, "late": "annotation"}
    assert span["dur"] >= 0.0


def test_sibling_spans_share_a_parent():
    tracer = Tracer(None, node="t")
    with tracer.span("outer") :
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    a, b, outer = tracer.records
    assert a["parent"] == outer["id"] == b["parent"]


def test_absorb_remaps_ids_and_stamps_worker():
    collector = Tracer(None, node="worker-node")
    with collector.span("unit-work", kind="pass"):
        collector.event("hit", kind="cache")
    batch = collector.drain()
    assert collector.records == []

    parent = Tracer(None, node="main")
    with parent.span("run", kind="run") as handle:
        absorbed = parent.absorb(batch, worker="worker-1", parent=handle.id)
    assert absorbed == 2
    by_name = {rec.get("name"): rec for rec in parent.records}
    span = by_name["unit-work"]
    event = by_name["hit"]
    run = by_name["run"]
    # Internal links survive the remap; roots hang under the given parent.
    assert event["parent"] == span["id"]
    assert span["parent"] == run["id"]
    assert span["id"] != batch[1]["id"] or span["id"] != run["id"]
    assert span["attrs"]["worker"] == "worker-1"
    assert event["attrs"]["worker"] == "worker-1"


def test_absorb_keeps_existing_worker_attr():
    collector = Tracer(None, node="w")
    with collector.span("unit", kind="unit", worker="original"):
        pass
    parent = Tracer(None, node="main")
    parent.absorb(collector.drain(), worker="overwriter")
    (span,) = parent.records
    assert span["attrs"]["worker"] == "original"


def test_absorb_ignores_foreign_record_shapes():
    parent = Tracer(None, node="main")
    assert parent.absorb([{"t": "meta"}, "junk", 42, None]) == 0
    assert parent.records == []


# --------------------------------------------------------------------- #
# Module-global switch
# --------------------------------------------------------------------- #

def test_current_is_none_by_default():
    assert _trace.current() is None


def test_configure_and_shutdown_round_trip(tmp_path):
    tracer = _trace.configure(str(tmp_path), node="main")
    assert _trace.current() is tracer
    with tracer.span("work", kind="run"):
        pass
    summary = _trace.shutdown()
    assert _trace.current() is None
    assert summary["spans"] == 1
    assert summary["directory"] == str(tmp_path)
    records = _read_records(tmp_path / trace_filename("main"))
    assert records[0]["t"] == "meta"
    assert records[0]["schema"] == TRACE_SCHEMA_VERSION
    assert records[1]["name"] == "work"


def test_collecting_swaps_and_restores(tmp_path):
    outer = _trace.configure(str(tmp_path), node="main")
    with _trace.collecting(node="pool") as collector:
        assert _trace.current() is collector
        collector.event("inside", kind="cache")
    assert _trace.current() is outer
    _trace.shutdown()


def test_collecting_without_active_tracer_restores_none():
    with _trace.collecting(node="pool") as collector:
        assert _trace.current() is collector
    assert _trace.current() is None


def test_tracing_context_manager_restores_previous(tmp_path):
    with _trace.tracing(str(tmp_path / "a"), node="outer") as outer:
        with _trace.tracing(str(tmp_path / "b"), node="inner") as inner:
            assert _trace.current() is inner
        assert _trace.current() is outer
    assert _trace.current() is None


def test_disabled_tracing_writes_nothing(tmp_path):
    """With no tracer configured, instrumented code creates no files."""
    from repro.engine import verify_passes
    from repro.passes import ALL_VERIFIED_PASSES

    cache_dir = tmp_path / "cache"
    verify_passes(ALL_VERIFIED_PASSES[:2], jobs=1, cache_dir=str(cache_dir))
    trace_files = [path for path in cache_dir.rglob("*")
                   if path.name.startswith("trace-")]
    assert trace_files == []
    assert _trace.current() is None


# --------------------------------------------------------------------- #
# Writer: deferred serialisation and rotation
# --------------------------------------------------------------------- #

def test_writer_defers_serialisation_until_flush(tmp_path):
    writer = TraceWriter(str(tmp_path), node="n")
    writer.write({"t": "event", "id": 1, "name": "x"})
    assert not os.path.exists(writer.path)  # nothing on disk yet
    writer.flush()
    records = _read_records(writer.path)
    assert [rec["t"] for rec in records] == ["meta", "event"]
    writer.close()


def test_writer_close_drains_pending(tmp_path):
    writer = TraceWriter(str(tmp_path), node="n")
    for index in range(5):
        writer.write({"t": "event", "id": index})
    writer.close()
    assert len(_read_records(writer.path)) == 6  # meta + 5
    assert writer.records_written == 5


def test_rotation_shifts_generations(tmp_path):
    writer = TraceWriter(str(tmp_path), node="n", max_bytes=200, max_files=2)
    for index in range(60):
        writer.write({"t": "event", "id": index, "name": "padding-padding"})
        writer.flush()  # force per-record serialisation to exercise the cap
    writer.close()
    live = tmp_path / trace_filename("n")
    assert live.exists()
    assert (tmp_path / f"{trace_filename('n')}.1").exists()
    # No generation beyond max_files survives.
    assert not (tmp_path / f"{trace_filename('n')}.3").exists()
    # Every file (re)starts with a meta line.
    for path in sorted(tmp_path.iterdir()):
        assert _read_records(path)[0]["t"] == "meta"


def test_pending_limit_forces_a_drain(tmp_path):
    writer = TraceWriter(str(tmp_path), node="n")
    for index in range(_trace._PENDING_LIMIT):
        writer.write({"t": "event", "id": index})
    assert os.path.exists(writer.path)  # the limit drained without flush()
    writer.close()
    assert len(_read_records(writer.path)) == _trace._PENDING_LIMIT + 1


def test_prefork_flush_empties_the_buffer(tmp_path):
    tracer = _trace.configure(str(tmp_path), node="main")
    tracer.event("before-fork", kind="cache")
    _trace._flush_before_fork()
    # The record is on disk, so a forked child inherits an empty buffer.
    names = [rec.get("name")
             for rec in _read_records(tmp_path / trace_filename("main"))]
    assert "before-fork" in names
    _trace.shutdown()


def test_trace_filename_sanitises_node_names():
    assert trace_filename("host/0:1") == "trace-host-0-1.jsonl"
    assert trace_filename("worker_2.a") == "trace-worker_2.a.jsonl"


def test_keep_mode_retains_records_alongside_the_sink(tmp_path):
    tracer = _trace.configure(str(tmp_path), node="main", keep=True)
    with tracer.span("work", kind="run"):
        pass
    assert [rec["name"] for rec in tracer.records] == ["work"]
    _trace.shutdown()
