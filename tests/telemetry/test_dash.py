"""The self-contained dashboard and its CLI surfaces (``stats``/``dash``/
``top --fail-unhealthy``)."""

import json
import time

from repro.cli import main
from repro.cluster.status import (
    RUN_STATUS_SCHEMA_VERSION,
    run_status_path,
)
from repro.telemetry.dash import DASH_SECTIONS, render_dashboard, write_dashboard
from repro.telemetry.history import TelemetryHistory
from repro.telemetry.stats import StatsRecorder


def _assert_self_contained(page):
    for section_id in DASH_SECTIONS:
        assert f'<section id="{section_id}"' in page, section_id
    assert "<script" not in page
    assert "http://" not in page and "https://" not in page


def _board(cache_dir, *, done, last_seen_ago=0.0, rss=100 * 1048576,
           failures=0):
    now = time.time()
    payload = {
        "schema": RUN_STATUS_SCHEMA_VERSION,
        "pid": 1234, "node": "test", "started_at": now - 30.0,
        "updated_at": now, "units_total": 4, "units_done": 4,
        "failures": failures, "stolen": 0, "retried": 0, "done": done,
        "workers": {"w1": {"inflight": None, "units_done": 4,
                           "prove_seconds": 1.0, "transport_seconds": 0.1,
                           "rss_bytes": rss,
                           "last_seen": now - last_seen_ago}},
    }
    path = run_status_path(cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #

def test_empty_directory_renders_every_section_with_placeholders(tmp_path):
    page = render_dashboard(tmp_path)
    _assert_self_contained(page)
    assert page.count("no data") == 0           # placeholders are specific
    assert "no recorded runs yet" in page
    assert "no traced run recorded yet" in page
    assert "no store analytics recorded yet" in page
    assert "no run-status.json board" in page
    assert "no fuzz corpus found" in page
    # Rendering a report must not create stores in the directory.
    assert list(tmp_path.iterdir()) == []


def test_populated_directory_renders_real_data(tmp_path):
    summary = {
        "records": 10,
        "passes": [{"name": "CXCancellation", "seconds": 0.5,
                    "subgoals": 3, "worker": "w1", "solver": "builtin"}],
        "solvers": {"builtin": {"count": 1}},
        "workers": {"w1": {"units": 1, "seconds": 0.5,
                           "transport_seconds": 0.1, "queue_seconds": 0.2,
                           "utilisation": 0.625}},
        "queue_seconds": 0.2,
        "critical_path_seconds": 0.6,
    }
    recorder = StatsRecorder(tmp_path, backend="jsonl")
    recorder.note_pass("p", "hit")
    recorder.note_unit(["s1", "s1"], ["s2"])
    recorder.finalize_and_save()
    with TelemetryHistory(tmp_path) as history:
        history.record_run(summary, stats={"backend": "jsonl"},
                           store_stats=recorder.canonical(), git="abc123")
    _board(tmp_path, done=True)
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "corpus.jsonl").write_text(
        json.dumps({"schema": 1, "kind": "mismatch", "pass": "X"}) + "\n")

    page = render_dashboard(tmp_path, corpus_dir=corpus)
    _assert_self_contained(page)
    assert "1 recorded run(s)" in page
    assert "CXCancellation" in page
    assert "queue/prove split: 0.2000s queued vs 0.5000s proving" in page
    assert "critical path" in page
    assert "<polyline" in page                  # the SVG charts rendered
    assert "no health problems detected" in page
    assert "mismatch" in page
    assert "abc123" in page


def test_unhealthy_board_renders_problem_lines(tmp_path):
    _board(tmp_path, done=False, last_seen_ago=120.0, failures=2)
    page = render_dashboard(tmp_path)
    assert "is stale" in page
    assert "failed permanently" in page


def test_write_dashboard_is_atomic_and_returns_path(tmp_path):
    out = write_dashboard(tmp_path, tmp_path / "report.html")
    assert out.read_text().startswith("<!DOCTYPE html>")
    assert not (tmp_path / "report.html.tmp").exists()


# --------------------------------------------------------------------- #
# CLI: repro stats / repro dash / repro top --fail-unhealthy
# --------------------------------------------------------------------- #

def test_cli_stats_table_and_json(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["verify", "CXCancellation", "Width",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert main(["stats", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "store stats" in out and "hot keys" in out
    assert main(["stats", "--cache-dir", str(cache),
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # JSON mode prints the canonical aggregate only — no local section.
    assert "local" not in payload
    assert payload["tiers"]["pass"]["misses"] == 2


def test_cli_stats_without_data_exits_one(tmp_path, capsys):
    assert main(["stats", "--cache-dir", str(tmp_path)]) == 1
    assert "no store analytics" in capsys.readouterr().err


def test_cli_dash_renders_sections(tmp_path, capsys):
    out_file = tmp_path / "dash.html"
    assert main(["dash", "--cache-dir", str(tmp_path / "cache"),
                 "--html", str(out_file)]) == 0
    assert "wrote" in capsys.readouterr().out
    _assert_self_contained(out_file.read_text())


def test_cli_top_fail_unhealthy_exit_codes(tmp_path, capsys):
    _board(tmp_path, done=True)
    assert main(["top", "--once", "--fail-unhealthy",
                 "--cache-dir", str(tmp_path)]) == 0
    assert "health: ok" in capsys.readouterr().out

    _board(tmp_path, done=False, last_seen_ago=60.0)
    assert main(["top", "--once", "--fail-unhealthy",
                 "--cache-dir", str(tmp_path)]) == 1
    assert "is stale" in capsys.readouterr().err

    _board(tmp_path, done=True, rss=2 * 1048576 * 1024)
    assert main(["top", "--once", "--fail-unhealthy", "--max-rss-mib", "512",
                 "--cache-dir", str(tmp_path)]) == 1
    assert "exceeds" in capsys.readouterr().err


def test_cli_top_fail_unhealthy_requires_once(tmp_path, capsys):
    assert main(["top", "--fail-unhealthy",
                 "--cache-dir", str(tmp_path)]) == 2
    assert "--once" in capsys.readouterr().err
