"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math

import pytest
from hypothesis import strategies as st

from repro.circuit import Gate, QCircuit
from repro.circuit.random import DEFAULT_GATE_POOL


@pytest.fixture(autouse=True)
def _isolated_proof_cache(tmp_path, monkeypatch):
    """Keep the verification engine's default proof cache out of $HOME."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "proof-cache"))


@pytest.fixture
def bell_circuit() -> QCircuit:
    circuit = QCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def ghz3() -> QCircuit:
    from repro.circuit import ghz_circuit

    return ghz_circuit(3)


# --------------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------------- #
def gate_strategy(num_qubits: int = 4):
    """Strategy producing random well-formed gates over ``num_qubits`` qubits."""

    def build(entry, qubit_seed, angle_seed):
        name, arity, num_params = entry
        qubits = []
        available = list(range(num_qubits))
        for i in range(arity):
            qubits.append(available.pop(qubit_seed[i] % len(available)))
        params = tuple((angle_seed[i] % 628) / 100.0 for i in range(num_params))
        return Gate(name, qubits, params)

    pool = [entry for entry in DEFAULT_GATE_POOL if entry[1] <= num_qubits]
    return st.builds(
        build,
        st.sampled_from(pool),
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=2),
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=3, max_size=3),
    )


def circuit_strategy(num_qubits: int = 4, max_gates: int = 12):
    """Strategy producing random circuits (small enough for the matrix oracle)."""

    def build(gates):
        circuit = QCircuit(num_qubits)
        for gate in gates:
            circuit.append(gate)
        return circuit

    return st.builds(build, st.lists(gate_strategy(num_qubits), max_size=max_gates))
