"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.qasm import parse_qasm


BELL_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[3];
cx q[1],q[2];
"""


@pytest.fixture
def bell_file(tmp_path):
    path = tmp_path / "bell.qasm"
    path.write_text(BELL_QASM)
    return str(path)


# --------------------------------------------------------------------------- #
# verify
# --------------------------------------------------------------------------- #
def test_verify_single_pass_text(capsys):
    assert main(["verify", "CXCancellation"]) == 0
    out = capsys.readouterr().out
    assert "CXCancellation" in out
    assert "verified" in out


def test_verify_json_output(capsys):
    assert main(["verify", "CXCancellation", "Width", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["total"] == 2
    assert payload["summary"]["all_verified"] is True


def test_verify_markdown_output(capsys):
    assert main(["verify", "RemoveBarriers", "--format", "markdown"]) == 0
    assert "| `RemoveBarriers` | verified" in capsys.readouterr().out


def test_verify_with_jobs_and_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["verify", "CXCancellation", "Width", "--jobs", "2",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["engine"]["jobs"] == 2
    assert cold["engine"]["cache_misses"] == 2
    assert cold["engine"]["cache_hits"] == 0
    # Second run: everything served from the proof cache.
    assert main(["verify", "CXCancellation", "Width", "--jobs", "2",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["engine"]["cache_hits"] == 2
    assert warm["engine"]["cache_misses"] == 0
    # Same verdicts; only the timing differs (cached results are ~free).
    drop_time = lambda s: {k: v for k, v in s.items() if k != "total_seconds"}  # noqa: E731
    assert drop_time(warm["summary"]) == drop_time(cold["summary"])
    assert warm["summary"]["total_seconds"] <= cold["summary"]["total_seconds"]
    assert list(warm["engine"])[:4] == ["cache_hits", "cache_misses", "jobs", "wall_seconds"]


def test_verify_no_cache_reports_stats_without_cache_dir(capsys):
    assert main(["verify", "Width", "--no-cache", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["engine"]["cache_dir"] is None
    assert payload["engine"]["cache_misses"] == 1


def test_verify_text_output_shows_engine_line(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["verify", "RemoveBarriers", "--cache-dir", cache_dir]) == 0
    assert "engine:" in capsys.readouterr().out
    assert main(["verify", "RemoveBarriers", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "cache 1 hit" in out
    assert "(cached)" in out


def test_verify_unknown_pass_is_an_error(capsys):
    assert main(["verify", "NotARealPass"]) == 2
    assert "unknown pass" in capsys.readouterr().err


def test_verify_requires_a_selection(capsys):
    assert main(["verify"]) == 2
    assert "nothing to verify" in capsys.readouterr().err


def test_verify_jobs_zero_auto_detects(capsys):
    """--jobs 0 is the documented "auto" convention, never an error."""
    from repro.engine import default_jobs

    assert main(["verify", "Width", "--jobs", "0", "--no-cache",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["engine"]["jobs"] == default_jobs()
    assert payload["engine"]["jobs"] >= 1


def test_verify_jobs_help_documents_auto():
    verify_parser = build_parser()._subparsers._group_actions[0].choices["verify"]
    jobs_actions = [action for action in verify_parser._actions
                    if "--jobs" in action.option_strings]
    assert "auto-detects the CPU count" in jobs_actions[0].help


def test_verify_sqlite_backend(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["verify", "CXCancellation", "--backend", "sqlite",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["engine"]["backend"] == "sqlite"
    assert cold["engine"]["cache_misses"] == 1
    assert (tmp_path / "cache" / "proofs.sqlite").exists()
    assert main(["verify", "CXCancellation", "--backend", "sqlite",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["engine"]["cache_hits"] == 1


# --------------------------------------------------------------------------- #
# cache maintenance / status
# --------------------------------------------------------------------------- #
def test_cache_prune_jsonl(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["verify", "CXCancellation", "Width", "--cache-dir", cache_dir,
                 "--format", "json"]) == 0
    capsys.readouterr()
    assert main(["cache", "prune", "--max-entries", "1",
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "evicted" in out
    assert "-> 1 entries" in out


def test_cache_prune_sqlite(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["verify", "CXCancellation", "--backend", "sqlite",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    capsys.readouterr()
    assert main(["cache", "prune", "--max-entries", "0", "--backend", "sqlite",
                 "--cache-dir", cache_dir]) == 0
    assert "-> 0 entries" in capsys.readouterr().out


def test_cache_prune_rejects_negative(tmp_path, capsys):
    assert main(["cache", "prune", "--max-entries", "-1",
                 "--cache-dir", str(tmp_path)]) == 2
    assert "must be >= 0" in capsys.readouterr().err


def test_cache_migrate_then_sqlite_warm(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    # Populate the JSONL tier, migrate, then hit warm through sqlite.
    assert main(["verify", "CXCancellation", "--cache-dir", cache_dir,
                 "--format", "json"]) == 0
    capsys.readouterr()
    assert main(["cache", "migrate", "--cache-dir", cache_dir]) == 0
    assert "migrated" in capsys.readouterr().out
    assert main(["verify", "CXCancellation", "--backend", "sqlite",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["engine"]["cache_hits"] == 1
    assert warm["engine"]["cache_misses"] == 0


def test_cache_migrate_unopenable_store_is_a_clean_error(tmp_path, capsys):
    (tmp_path / "proofs.jsonl").write_text("")
    (tmp_path / "proofs.sqlite").mkdir()       # unopenable: it is a directory
    assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 2
    assert "cannot open proof cache" in capsys.readouterr().err


def test_status_without_daemon_or_store(tmp_path, capsys):
    assert main(["status", "--cache-dir", str(tmp_path)]) == 1
    assert "no daemon running" in capsys.readouterr().err


def test_status_reports_offline_store(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["verify", "Width", "--backend", "sqlite",
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    capsys.readouterr()
    assert main(["status", "--cache-dir", cache_dir]) == 1
    out = capsys.readouterr().out
    assert "no daemon running" in out
    assert "live entries" in out


# --------------------------------------------------------------------------- #
# transpile
# --------------------------------------------------------------------------- #
def test_transpile_to_stdout(bell_file, capsys):
    assert main(["transpile", bell_file, "--device", "ibm_5q_tenerife"]) == 0
    out = capsys.readouterr().out
    compiled = parse_qasm(out)
    assert compiled.num_qubits == 5
    assert compiled.size() >= 3


def test_transpile_baseline_pipeline(bell_file, capsys):
    assert main(["transpile", bell_file, "--device", "ibm_5q_tenerife",
                 "--pipeline", "baseline"]) == 0
    compiled = parse_qasm(capsys.readouterr().out)
    assert compiled.size() >= 3


def test_transpile_to_file(bell_file, tmp_path, capsys):
    output = tmp_path / "out.qasm"
    assert main(["transpile", bell_file, "--device", "ibm_16q",
                 "--output", str(output), "--stats"]) == 0
    err = capsys.readouterr().err
    assert "pipeline: verified" in err
    compiled = parse_qasm(output.read_text())
    assert compiled.num_qubits == 16


def test_transpile_unknown_device(bell_file, capsys):
    assert main(["transpile", bell_file, "--device", "nonexistent"]) == 2
    assert "unknown device" in capsys.readouterr().err


def test_transpile_device_too_small(tmp_path, capsys):
    wide = tmp_path / "wide.qasm"
    wide.write_text('OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[30];\nh q[29];\n')
    assert main(["transpile", str(wide), "--device", "ibm_16q"]) == 2
    assert "needs 30" in capsys.readouterr().err


def test_transpile_missing_file(capsys):
    assert main(["transpile", "/nonexistent/file.qasm"]) == 2
    assert "cannot read input" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# list / soundness / parser
# --------------------------------------------------------------------------- #
def test_list_passes(capsys):
    assert main(["list", "passes"]) == 0
    out = capsys.readouterr().out
    assert "CXCancellation" in out
    assert "StochasticSwap" in out and "unsupported" in out
    assert "InverseCancellation" in out and "extension" in out


def test_list_devices(capsys):
    assert main(["list", "devices"]) == 0
    out = capsys.readouterr().out
    assert "ibm_16q" in out
    assert "ibm_20q_tokyo" in out


def test_list_circuits(capsys):
    assert main(["list", "circuits"]) == 0
    out = capsys.readouterr().out
    assert "qft" in out
    assert len(out.strip().splitlines()) == 48


def test_soundness_command(capsys):
    assert main(["soundness"]) == 0
    out = capsys.readouterr().out
    assert "unsound rules            : 0" in out


def test_parser_rejects_missing_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


# --------------------------------------------------------------------------- #
# fuzz
# --------------------------------------------------------------------------- #
def test_fuzz_campaign_catches_buggy_pass_and_replays(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    code = main(["fuzz", "--seed", "3", "--cases", "2",
                 "--passes", "BuggyOptimize1qGates", "--corpus", corpus])
    out = capsys.readouterr().out
    assert code == 1  # failures found -> non-zero, the CI smoke contract
    assert "BuggyOptimize1qGates" in out
    assert "minimal" in out
    assert "corpus" in out

    assert main(["fuzz", "replay", "--corpus", corpus]) == 0
    replay_out = capsys.readouterr().out
    assert "reproduced" in replay_out
    assert "MISMATCH" not in replay_out


def test_fuzz_clean_campaign_exits_zero(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    code = main(["fuzz", "--seed", "1", "--cases", "2",
                 "--passes", "CXCancellation", "Width", "--corpus", corpus])
    assert code == 0
    assert "failures       : 0" in capsys.readouterr().out


def test_fuzz_json_format(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    code = main(["fuzz", "--seed", "3", "--cases", "1",
                 "--passes", "BuggyOptimize1qGates", "--corpus", corpus,
                 "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["failures"] >= 1
    assert payload["entries"][0]["pass"] == "BuggyOptimize1qGates"
    assert payload["unit_failures"] == []
    assert payload["counters"]["repro_fuzz_failures_total"] == payload["failures"]


def test_fuzz_unknown_pass_is_a_usage_error(tmp_path, capsys):
    code = main(["fuzz", "--passes", "NoSuchPass",
                 "--corpus", str(tmp_path / "corpus")])
    assert code == 2
    assert "unknown fuzz target" in capsys.readouterr().err


def test_fuzz_replay_of_empty_corpus_is_clean(tmp_path, capsys):
    assert main(["fuzz", "replay", "--corpus", str(tmp_path / "nothing")]) == 0
    assert "corpus entries : 0" in capsys.readouterr().out
