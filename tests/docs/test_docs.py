"""Tier-1 guard over the documentation: links resolve, snippets execute.

Same checks as ``tools/check_docs.py`` (which CI's docs job runs); having
them in the test suite means a doc-breaking refactor fails locally too.
"""

import importlib.util
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_docs",
    Path(__file__).resolve().parents[2] / "tools" / "check_docs.py",
)
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)


def test_doc_files_present():
    names = {path.name for path in check_docs.doc_files()}
    assert {"README.md", "architecture.md", "caching.md", "operations.md",
            "writing-a-pass.md"} <= names


@pytest.mark.parametrize("path", check_docs.doc_files(),
                         ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    assert check_docs.check_links(path) == []


@pytest.mark.parametrize("path", check_docs.doc_files(),
                         ids=lambda p: p.name)
def test_doc_snippets_execute(path):
    assert check_docs.run_doctests(path) == []


def test_docs_actually_contain_executable_snippets():
    """At least the architecture/caching/tutorial pages must stay runnable."""
    import doctest

    runnable = 0
    parser = doctest.DocTestParser()
    for path in check_docs.doc_files():
        examples = parser.get_examples(path.read_text(encoding="utf-8"))
        runnable += len(examples)
    assert runnable >= 10
