"""The OpenQASM 2 front-end: lexer details, expressions, and error reporting."""

import math

import pytest

from repro.circuit import QCircuit
from repro.errors import QasmError
from repro.linalg import circuits_equivalent
from repro.qasm import circuit_to_qasm, parse_qasm, tokenize

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


# --------------------------------------------------------------------------- #
# Lexer
# --------------------------------------------------------------------------- #
def test_tokenize_produces_positions():
    tokens = tokenize('qreg q[2];\nh q[0];')
    assert tokens[0].value == "qreg"
    assert tokens[0].line == 1
    h_tokens = [t for t in tokens if t.value == "h"]
    assert h_tokens and h_tokens[0].line == 2


def test_tokenize_handles_comments_and_whitespace():
    tokens = tokenize("// a comment\nqreg q[1]; // trailing\nh q[0];")
    values = [t.value for t in tokens]
    assert "qreg" in values and "h" in values
    assert not any("comment" in str(v) for v in values)


def test_tokenize_real_and_integer_literals():
    tokens = tokenize("u3(0.5, 2, 1.25e-1) q[0];")
    kinds = {t.value: t.kind for t in tokens if t.kind in ("int", "real")}
    assert kinds["2"] == "int"
    assert kinds["0.5"] == "real"


def test_lexer_rejects_illegal_characters():
    with pytest.raises(QasmError):
        tokenize("qreg q[2]; @@@")


# --------------------------------------------------------------------------- #
# Parameter expressions
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("expression,value", [
    ("pi", math.pi),
    ("pi/2", math.pi / 2),
    ("-pi/4", -math.pi / 4),
    ("2*pi", 2 * math.pi),
    ("pi/2 + pi/4", 3 * math.pi / 4),
    ("0.25", 0.25),
    ("(1 + 2) * 0.5", 1.5),
])
def test_parameter_expressions_are_evaluated(expression, value):
    circuit = parse_qasm(HEADER + f"qreg q[1];\nu1({expression}) q[0];\n")
    assert circuit.size() == 1
    assert circuit[0].params[0] == pytest.approx(value)


def test_unknown_identifier_in_expression_is_an_error():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "qreg q[1];\nu1(tau) q[0];\n")


# --------------------------------------------------------------------------- #
# Declarations, operations, and gate definitions
# --------------------------------------------------------------------------- #
def test_whole_register_broadcast():
    circuit = parse_qasm(HEADER + "qreg q[3];\nh q;\n")
    assert circuit.count_ops()["h"] == 3


def test_measure_and_reset_and_barrier():
    source = HEADER + (
        "qreg q[2];\ncreg c[2];\n"
        "reset q[0];\nh q[0];\nbarrier q;\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n"
    )
    circuit = parse_qasm(source)
    ops = circuit.count_ops()
    assert ops["measure"] == 2
    assert ops["reset"] == 1
    assert ops["barrier"] == 1
    assert circuit.num_clbits == 2


def test_conditional_gate_parsing():
    source = HEADER + "qreg q[1];\ncreg c[1];\nif (c == 1) x q[0];\n"
    circuit = parse_qasm(source)
    assert circuit.size() == 1
    assert circuit[0].condition is not None


def test_custom_gate_definition_is_expanded():
    source = HEADER + (
        "gate mygate a, b { h a; cx a, b; }\n"
        "qreg q[2];\nmygate q[0], q[1];\n"
    )
    circuit = parse_qasm(source)
    reference = QCircuit(2)
    reference.h(0)
    reference.cx(0, 1)
    assert circuits_equivalent(circuit, reference)


def test_parameterised_gate_definition():
    source = HEADER + (
        "gate myrot(t) a { rz(t) a; rz(t) a; }\n"
        "qreg q[1];\nmyrot(0.4) q[0];\n"
    )
    circuit = parse_qasm(source)
    reference = QCircuit(1)
    reference.rz(0.8, 0)
    assert circuits_equivalent(circuit, reference)


# --------------------------------------------------------------------------- #
# Errors
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("source,fragment", [
    (HEADER + "h q[0];\n", "q"),                                 # undeclared register
    (HEADER + "qreg q[2];\nh q[5];\n", "out of range"),           # bad index
    (HEADER + "qreg q[1];\ncreg c[1];\nmeasure q[0] -> d[0];\n", "d"),
    (HEADER + "qreg q[1];\nnotagate q[0];\n", "notagate"),
])
def test_parser_errors_mention_the_offender(source, fragment):
    with pytest.raises(QasmError) as excinfo:
        parse_qasm(source)
    assert fragment in str(excinfo.value)


def test_missing_semicolon_is_a_parse_error():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "qreg q[1]\nh q[0];\n")


# --------------------------------------------------------------------------- #
# Emitter round trips
# --------------------------------------------------------------------------- #
def test_emitter_roundtrip_preserves_measurement_and_conditions():
    circuit = QCircuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    from repro.circuit import Gate

    circuit.append(Gate("x", (1,)).c_if(0, 1))
    circuit.measure(1, 1)
    text = circuit_to_qasm(circuit)
    reparsed = parse_qasm(text)
    assert reparsed.count_ops() == circuit.count_ops()
    assert reparsed.num_clbits == circuit.num_clbits
    assert [g.name for g in reparsed] == [g.name for g in circuit]


def test_emitter_renders_angles_with_pi_fractions():
    circuit = QCircuit(1)
    circuit.rz(math.pi / 2, 0)
    text = circuit_to_qasm(circuit)
    assert "pi/2" in text
    assert circuits_equivalent(parse_qasm(text), circuit)
