"""Tests for the OpenQASM 2.0 lexer, parser, and emitter."""

import math

import pytest
from hypothesis import given, settings

from repro.circuit import QCircuit, ghz_circuit
from repro.errors import QasmError
from repro.linalg import circuits_equivalent
from repro.qasm import circuit_to_qasm, parse_program, parse_qasm, tokenize

from tests.conftest import circuit_strategy

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def test_tokenizer_kinds():
    tokens = tokenize('OPENQASM 2.0; qreg q[3]; u1(pi/2) q[0]; // comment\n')
    kinds = [t.kind for t in tokens]
    assert kinds[0] == "keyword"
    assert kinds[-1] == "eof"
    values = [t.value for t in tokens if t.kind == "int"]
    assert "3" in values and "2" in values and "0" in values


def test_tokenizer_rejects_garbage():
    with pytest.raises(QasmError):
        tokenize("qreg q[2]; @bad")


def test_parse_simple_program():
    program = parse_program(HEADER + "qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n")
    assert program.version == "2.0"
    assert len(program.declarations()) == 2
    assert len(program.operations()) == 3


def test_parse_to_circuit_with_expressions():
    circuit = parse_qasm(HEADER + "qreg q[1];\nu3(pi/2, -pi/4, 0.25*2) q[0];\n")
    gate = circuit[0]
    assert gate.name == "u3"
    assert gate.params[0] == pytest.approx(math.pi / 2)
    assert gate.params[1] == pytest.approx(-math.pi / 4)
    assert gate.params[2] == pytest.approx(0.5)


def test_register_broadcast():
    circuit = parse_qasm(HEADER + "qreg q[3];\nh q;\n")
    assert circuit.size() == 3
    assert all(g.name == "h" for g in circuit)


def test_custom_gate_definition_expansion():
    source = HEADER + (
        "gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n"
        "qreg q[3];\nmajority q[0],q[1],q[2];\n"
    )
    circuit = parse_qasm(source)
    assert [g.name for g in circuit] == ["cx", "cx", "ccx"]
    assert circuit[2].qubits == (0, 1, 2)


def test_conditional_gate_and_measure():
    source = HEADER + "qreg q[1];\ncreg c[1];\nif(c==1) x q[0];\nmeasure q[0] -> c[0];\n"
    circuit = parse_qasm(source)
    assert circuit[0].condition == (0, 1)
    assert circuit[1].is_measurement()


def test_barrier_and_reset():
    circuit = parse_qasm(HEADER + "qreg q[2];\nreset q[0];\nbarrier q;\n")
    assert circuit[0].is_reset()
    assert circuit[1].is_barrier()
    assert circuit[1].qubits == (0, 1)


def test_parse_errors_have_positions():
    with pytest.raises(QasmError) as excinfo:
        parse_qasm(HEADER + "qreg q[2]\nh q[0];\n")
    assert "line" in str(excinfo.value)


def test_unknown_gate_rejected():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "qreg q[1];\nwibble q[0];\n")


def test_out_of_range_index_rejected():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "qreg q[2];\nh q[5];\n")


def test_emitter_roundtrip_ghz(ghz3):
    ghz3.measure_all()
    text = circuit_to_qasm(ghz3)
    reparsed = parse_qasm(text)
    assert list(reparsed.gates) == list(ghz3.gates)


def test_emitter_formats_pi_fractions():
    circuit = QCircuit(1)
    circuit.u1(math.pi / 2, 0)
    assert "pi/2" in circuit_to_qasm(circuit)


@settings(max_examples=20, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=10))
def test_roundtrip_preserves_semantics(circuit):
    """parse(emit(c)) is semantically equivalent to c for the unitary fragment."""
    reparsed = QCircuit.from_qasm(circuit.to_qasm())
    assert circuits_equivalent(circuit, reparsed)
