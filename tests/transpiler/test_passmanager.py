"""The baseline transpiler: pass manager, baseline passes, wrapper, presets."""

import pytest

from repro.bench.qasmbench import qft
from repro.circuit import QCircuit, random_circuit
from repro.coupling import grid_device, linear_device
from repro.dag import circuit_to_dag, dag_to_circuit
from repro.linalg import circuits_equivalent
from repro.passes import CXCancellation, Optimize1qGates
from repro.symbolic import conforms_to_coupling, equivalent_up_to_swaps
from repro.transpiler.baseline_passes import (
    BaselineBasicSwap,
    BaselineCXCancellation,
    BaselineLookaheadSwap,
    BaselineOptimize1qGates,
)
from repro.transpiler.passmanager import PassManager
from repro.transpiler.presets import baseline_pipeline, verified_pipeline
from repro.transpiler.wrapper import VerifiedPassWrapper


@pytest.fixture
def cancellable_circuit():
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 1)
    circuit.u1(0.4, 2)
    circuit.u3(0.2, 0.1, 0.9, 2)
    circuit.cx(1, 2)
    return circuit


# --------------------------------------------------------------------------- #
# PassManager mechanics
# --------------------------------------------------------------------------- #
def test_passmanager_runs_passes_in_order(cancellable_circuit):
    manager = PassManager([BaselineCXCancellation(), BaselineOptimize1qGates()])
    compiled = manager.run(cancellable_circuit.copy())
    assert compiled.count_ops().get("cx", 0) == 1
    assert circuits_equivalent(cancellable_circuit, compiled)
    assert len(manager.records) == 2
    assert manager.total_time() >= 0.0
    assert all(record.seconds >= 0.0 for record in manager.records)


def test_passmanager_append_builds_the_pipeline(cancellable_circuit):
    manager = PassManager()
    manager.append(BaselineCXCancellation()).append(BaselineOptimize1qGates())
    assert len(manager.passes) == 2
    compiled = manager.run(cancellable_circuit.copy())
    assert circuits_equivalent(cancellable_circuit, compiled)


# --------------------------------------------------------------------------- #
# Baseline passes agree with the verified passes
# --------------------------------------------------------------------------- #
def test_baseline_and_verified_cx_cancellation_agree(cancellable_circuit):
    baseline = PassManager([BaselineCXCancellation()]).run(cancellable_circuit.copy())
    verified = CXCancellation()(cancellable_circuit.copy())
    assert baseline.count_ops().get("cx", 0) == verified.count_ops().get("cx", 0)
    assert circuits_equivalent(baseline, verified)


def test_baseline_and_verified_1q_optimisation_agree(cancellable_circuit):
    baseline = PassManager([BaselineOptimize1qGates()]).run(cancellable_circuit.copy())
    verified = Optimize1qGates()(cancellable_circuit.copy())
    assert circuits_equivalent(baseline, verified)
    assert baseline.size() <= cancellable_circuit.size()


@pytest.mark.parametrize("baseline_class", [BaselineBasicSwap, BaselineLookaheadSwap])
def test_baseline_routing_is_coupling_conformant(baseline_class):
    coupling = linear_device(5)
    circuit = random_circuit(5, 20, seed=3)
    routed = PassManager([baseline_class(coupling=coupling)]).run(circuit.copy())
    assert conforms_to_coupling(routed.gates, coupling)
    report = equivalent_up_to_swaps(circuit.gates, routed.gates, 5)
    assert report.equivalent


# --------------------------------------------------------------------------- #
# The verified-pass wrapper
# --------------------------------------------------------------------------- #
def test_wrapper_converts_dag_to_list_and_back(cancellable_circuit):
    wrapper = VerifiedPassWrapper(CXCancellation())
    dag = circuit_to_dag(cancellable_circuit)
    result_dag = wrapper.run(dag)
    result = dag_to_circuit(result_dag)
    direct = CXCancellation()(cancellable_circuit.copy())
    assert circuits_equivalent(result, direct)
    assert "CXCancellation" in wrapper.name()


def test_wrapper_classmethod_constructor(cancellable_circuit):
    wrapper = VerifiedPassWrapper.wrap(Optimize1qGates)
    dag = circuit_to_dag(cancellable_circuit)
    result = dag_to_circuit(wrapper.run(dag))
    assert circuits_equivalent(result, cancellable_circuit)


# --------------------------------------------------------------------------- #
# Preset pipelines
# --------------------------------------------------------------------------- #
def test_preset_pipelines_produce_equivalent_conformant_circuits():
    coupling = grid_device(3, 3)
    circuit = qft(5)
    baseline = baseline_pipeline(coupling).run(circuit.copy())
    verified = verified_pipeline(coupling).run(circuit.copy())
    for compiled in (baseline, verified):
        assert conforms_to_coupling(compiled.gates, coupling)
    assert circuits_equivalent(baseline, verified)


def test_preset_pipelines_unroll_to_the_native_basis():
    coupling = grid_device(2, 3)
    circuit = QCircuit(3)
    circuit.h(0)
    circuit.t(1)
    circuit.cz(1, 2)
    compiled = verified_pipeline(coupling).run(circuit.copy())
    allowed = {"u1", "u2", "u3", "cx", "swap", "barrier", "measure", "id"}
    assert set(compiled.count_ops()) <= allowed


# --------------------------------------------------------------------------- #
# Verify-before-run mode
# --------------------------------------------------------------------------- #
def test_verify_first_accepts_verified_pipeline(tmp_path, cancellable_circuit):
    manager = PassManager(
        [VerifiedPassWrapper.wrap(CXCancellation)],
        verify_first=True,
        verify_cache_dir=str(tmp_path),
    )
    result = manager.run(cancellable_circuit.copy())
    assert circuits_equivalent(result, cancellable_circuit)
    # The configuration is remembered: a second run does not re-verify.
    assert any(cls is CXCancellation for cls, _ in manager._verified_classes)


def test_verify_first_rejects_buggy_pass(tmp_path, bell_circuit):
    from repro.errors import TranspilerError
    from repro.passes import BuggyOptimize1qGates

    manager = PassManager(
        [VerifiedPassWrapper.wrap(BuggyOptimize1qGates)],
        verify_first=True,
        verify_cache_dir=str(tmp_path),
    )
    with pytest.raises(TranspilerError, match="verify-before-run"):
        manager.run(bell_circuit.copy())


def test_verify_first_uses_proof_cache(tmp_path, cancellable_circuit):
    cache_dir = str(tmp_path / "cache")
    first = PassManager([VerifiedPassWrapper.wrap(CXCancellation)],
                        verify_first=True, verify_cache_dir=cache_dir)
    first.run(cancellable_circuit.copy())
    # A fresh manager (fresh process in real life) hits the same cache.
    from repro.engine import ProofCache

    cache = ProofCache(cache_dir)
    assert cache.stats.invalidated == 0
    assert any(kind == "pass" for kind, _, _ in cache.entries())
    cache.close()


def test_verify_first_uses_the_pipeline_coupling(tmp_path):
    # The routing pass must be verified against the coupling map the
    # pipeline will actually run with, not a default device.
    from repro.passes import BasicSwap

    coupling = grid_device(2, 2)
    manager = PassManager(
        [VerifiedPassWrapper.wrap(BasicSwap, coupling=coupling)],
        verify_first=True,
        verify_cache_dir=str(tmp_path),
    )
    manager.ensure_verified()
    (key,) = manager._verified_classes
    cls, coupling_key = key
    assert cls is BasicSwap
    assert coupling_key == (coupling.num_qubits, tuple(map(tuple, coupling.edges)))
