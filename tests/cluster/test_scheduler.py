"""Lease/steal/retry bookkeeping, independent of sockets and processes."""

from repro.cluster.coordinator import UnitScheduler
from repro.cluster.plan import WorkUnit


def _units(n, kind="pass"):
    return [WorkUnit(unit_id=f"u{i}", index=i, kind=kind,
                     spec={"name": "X", "coupling": None}, key=f"u{i}")
            for i in range(n)]


def _ok(unit_id):
    return {"op": "result", "unit_id": unit_id, "ok": True, "payload": {}}


def _failed(unit_id):
    return {"op": "result", "unit_id": unit_id, "ok": False, "error": "boom"}


def test_lease_and_complete_all():
    scheduler = UnitScheduler(_units(3))
    leased = []
    while True:
        kind, unit = scheduler.lease("w1")
        if kind != "unit":
            break
        leased.append(unit.unit_id)
        assert scheduler.complete(unit.unit_id, _ok(unit.unit_id))
    assert leased == ["u0", "u1", "u2"]
    assert scheduler.done
    assert scheduler.lease("w1") == ("done", None)


def test_young_lease_makes_others_wait():
    scheduler = UnitScheduler(_units(1), steal_after=60.0)
    kind, unit = scheduler.lease("w1")
    assert kind == "unit"
    assert scheduler.lease("w2") == ("wait", None)


def test_steal_after_timeout_and_first_result_wins():
    scheduler = UnitScheduler(_units(1), steal_after=0.0)
    _, unit = scheduler.lease("w1")
    kind, stolen = scheduler.lease("w2")  # immediately stealable
    assert kind == "unit" and stolen.unit_id == unit.unit_id
    assert scheduler.stolen == 1
    assert scheduler.complete(unit.unit_id, _ok(unit.unit_id)) is True
    # The duplicate (late) result is discarded, not double-counted.
    assert scheduler.complete(unit.unit_id, _ok(unit.unit_id)) is False
    assert scheduler.done


def test_failed_unit_is_retried_then_given_up():
    scheduler = UnitScheduler(_units(1), max_attempts=2)
    for attempt in range(2):
        kind, unit = scheduler.lease("w1")
        assert kind == "unit"
        assert scheduler.complete(unit.unit_id, _failed(unit.unit_id)) is False
    assert scheduler.retried == 1
    assert scheduler.failures == {"u0": "boom"}
    assert scheduler.done  # resolved as failed
    assert scheduler.unresolved_units()[0].unit_id == "u0"


def test_dead_connection_requeues_its_leases():
    scheduler = UnitScheduler(_units(2), steal_after=60.0)
    _, first = scheduler.lease("w1")
    scheduler.release("w1")  # w1's socket died
    kind, again = scheduler.lease("w2")
    assert kind == "unit"
    leased = {again.unit_id}
    kind, more = scheduler.lease("w2")
    assert kind == "unit"
    leased.add(more.unit_id)
    assert leased == {"u0", "u1"}


def test_release_keeps_units_other_workers_still_hold():
    scheduler = UnitScheduler(_units(1), steal_after=0.0)
    _, unit = scheduler.lease("w1")
    scheduler.lease("w2")  # steal: both now own u0
    scheduler.release("w1")
    # w2 still owns it: the unit must not be re-queued for a third worker
    # while w2 computes (steal_after=0 would allow stealing, but the
    # pending queue itself must stay empty).
    assert scheduler.results == {}
    assert scheduler.complete(unit.unit_id, _ok(unit.unit_id))
    assert scheduler.done


def test_wait_returns_on_completion():
    scheduler = UnitScheduler(_units(1))
    _, unit = scheduler.lease("w1")
    import threading

    def finish():
        scheduler.complete(unit.unit_id, _ok(unit.unit_id))

    threading.Timer(0.05, finish).start()
    assert scheduler.wait(5.0) is True


# --------------------------------------------------------------------------- #
# Queue-time attribution
# --------------------------------------------------------------------------- #
def test_queue_wait_fixed_at_first_lease():
    import time

    scheduler = UnitScheduler(_units(1), steal_after=60.0)
    time.sleep(0.02)
    _, unit = scheduler.lease("w1")
    waited = scheduler.queue_wait(unit.unit_id)
    assert waited >= 0.02
    time.sleep(0.02)
    # The wait was measured at lease time; asking later must not grow it.
    assert scheduler.queue_wait(unit.unit_id) == waited


def test_steal_does_not_remeasure_queue_wait():
    import time

    scheduler = UnitScheduler(_units(1), steal_after=0.0)
    _, unit = scheduler.lease("w1")
    waited = scheduler.queue_wait(unit.unit_id)
    time.sleep(0.02)
    kind, stolen = scheduler.lease("w2")          # steal re-leases u0
    assert kind == "unit" and stolen.unit_id == unit.unit_id
    assert scheduler.queue_wait(unit.unit_id) == waited


def test_requeue_restarts_the_queue_clock():
    import time

    scheduler = UnitScheduler(_units(1), steal_after=60.0, max_attempts=3)
    _, unit = scheduler.lease("w1")
    first_wait = scheduler.queue_wait(unit.unit_id)
    scheduler.complete(unit.unit_id, _failed(unit.unit_id))   # requeued
    time.sleep(0.03)
    _, retried = scheduler.lease("w2")
    assert retried.unit_id == unit.unit_id
    # The retry waited ~30ms in queue; the old measurement is replaced.
    assert scheduler.queue_wait(unit.unit_id) >= 0.03 > first_wait


def test_connection_loss_requeue_also_restarts_the_clock():
    import time

    scheduler = UnitScheduler(_units(1), steal_after=60.0)
    _, unit = scheduler.lease("w1")
    scheduler.release("w1")
    time.sleep(0.02)
    _, again = scheduler.lease("w2")
    assert again.unit_id == unit.unit_id
    assert scheduler.queue_wait(unit.unit_id) >= 0.02


def test_queue_wait_of_unknown_unit_is_zero():
    scheduler = UnitScheduler(_units(1))
    assert scheduler.queue_wait("nonsense") == 0.0
