"""Distributed runs vs the single-process engine: identical results.

The satellite contract: two workers on disjoint shards produce
byte-identical reports to a single-process run — ordering, hit/miss
accounting, ``stale_passes`` — and a pass split into subgoal units merges
to the same verdict as its unsplit proof.
"""

import json

import pytest

from repro.cli import main
from repro.cluster import verify_passes_distributed
from repro.engine import verify_passes
from repro.passes import ALL_VERIFIED_PASSES
from repro.verify.report import to_json

SUBSET = list(ALL_VERIFIED_PASSES)[:8]


def _verdicts(report):
    return [(r.pass_name, r.verified, r.num_subgoals, r.paths_explored,
             list(r.failure_reasons)) for r in report.results]


def test_cold_distributed_matches_single_process(tmp_path):
    single = verify_passes(SUBSET, jobs=1, cache_dir=str(tmp_path / "a"))
    distributed = verify_passes_distributed(
        SUBSET, workers=2, cache_dir=str(tmp_path / "b"))
    assert _verdicts(single) == _verdicts(distributed)
    assert distributed.stats.cache_misses == len(SUBSET)
    assert distributed.stats.cluster["units_total"] == len(SUBSET)


def test_warm_reports_are_byte_identical(tmp_path):
    """After a cold cluster run, warm cluster and warm single-process runs
    render byte-identical reports from the same store."""
    cache_dir = str(tmp_path / "shared")
    verify_passes_distributed(SUBSET, workers=2, cache_dir=cache_dir)

    warm_single = verify_passes(SUBSET, jobs=1, cache_dir=cache_dir)
    warm_cluster = verify_passes_distributed(SUBSET, workers=2,
                                             cache_dir=cache_dir)
    # Results: byte-identical JSON (cached results carry time 0.0).
    assert to_json(warm_single.results) == to_json(warm_cluster.results)
    # Accounting: same hits/misses/subgoal counters either way.
    for field in ("cache_hits", "cache_misses", "subgoal_hits",
                  "subgoal_misses", "passes_total", "stale_passes"):
        assert getattr(warm_single.stats, field) == \
            getattr(warm_cluster.stats, field), field
    assert warm_cluster.stats.cache_hits == len(SUBSET)
    assert warm_cluster.stats.cluster["units_total"] == 0


def test_sharded_pass_merges_to_unsplit_verdict(tmp_path):
    """Force-split everything: merged shard verdicts equal whole proofs."""
    single = verify_passes(SUBSET, jobs=1, cache_dir=str(tmp_path / "a"))
    sharded = verify_passes_distributed(
        SUBSET, workers=2, cache_dir=str(tmp_path / "b"), shard_threshold=0)
    assert sharded.stats.cluster["split_passes"] >= 1
    assert sharded.stats.cluster["units_total"] > len(SUBSET)
    assert _verdicts(single) == _verdicts(sharded)
    # The merged payloads were cached: a warm run serves them unchanged.
    warm = verify_passes(SUBSET, jobs=1, cache_dir=str(tmp_path / "b"))
    assert _verdicts(warm) == _verdicts(single)
    assert warm.stats.cache_hits == len(SUBSET)


def test_incremental_scoped_cluster_run(tmp_path):
    """changed_paths=[] on a warm store: nothing stale, everything served."""
    cache_dir = str(tmp_path / "shared")
    verify_passes_distributed(SUBSET, workers=2, cache_dir=cache_dir)
    report = verify_passes_distributed(
        SUBSET, workers=2, cache_dir=cache_dir, changed_paths=[])
    assert report.stats.stale_passes == 0
    assert report.stats.cache_hits == len(SUBSET)
    assert report.stats.cluster["units_total"] == 0
    # And the single-process incremental run agrees on the accounting.
    local = verify_passes(SUBSET, jobs=1, cache_dir=cache_dir,
                          changed_paths=[])
    assert local.stats.stale_passes == 0
    assert local.stats.cache_hits == len(SUBSET)


def test_recorded_timings_drive_splitting_on_the_next_cold_run(tmp_path):
    from repro.cluster.plan import load_timings

    cache_dir = str(tmp_path / "shared")
    verify_passes_distributed(SUBSET, workers=2, cache_dir=cache_dir)
    timings = load_timings(cache_dir)
    assert len(timings) == len(SUBSET)
    assert all(seconds >= 0 for seconds in timings.values())


def test_cli_verify_workers_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    code = main(["verify", "CXCancellation", "Depth", "--workers", "2",
                 "--cache-dir", cache_dir, "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["all_verified"] is True
    assert payload["engine"]["cluster"]["units_total"] == 2

    code = main(["verify", "CXCancellation", "Depth", "--workers", "2",
                 "--cache-dir", cache_dir, "--format", "json"])
    assert code == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["engine"]["cache_hits"] == 2
    assert warm["engine"]["cache_misses"] == 0


def test_cli_text_report_shows_cluster_line(tmp_path, capsys):
    code = main(["verify", "Depth", "--workers", "2",
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    out = capsys.readouterr().out
    assert "cluster:" in out


def test_cli_workers_and_daemon_are_mutually_exclusive(tmp_path, capsys):
    code = main(["verify", "Depth", "--workers", "2", "--daemon",
                 "--cache-dir", str(tmp_path)])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_work_without_coordinator_fails_cleanly(tmp_path, capsys):
    code = main(["work", "--cache-dir", str(tmp_path), "--wait", "0.2"])
    assert code == 1
    assert "no coordinator found" in capsys.readouterr().err
