"""The run-status board: worker heartbeats folded into ``run-status.json``."""

import json

from repro.cluster import verify_passes_distributed
from repro.cluster.status import (
    RUN_STATUS_SCHEMA_VERSION,
    RunStatusBoard,
    read_run_status,
    run_status_path,
)
from repro.passes import ALL_VERIFIED_PASSES

SUBSET = list(ALL_VERIFIED_PASSES)[:6]


# --------------------------------------------------------------------- #
# Board mechanics
# --------------------------------------------------------------------- #

def test_board_writes_on_init_and_reads_back(tmp_path):
    RunStatusBoard(tmp_path, 12, node="vm-7")
    status = read_run_status(tmp_path)
    assert status["schema"] == RUN_STATUS_SCHEMA_VERSION
    assert status["units_total"] == 12
    assert status["node"] == "vm-7"
    assert status["done"] is False
    assert status["workers"] == {}


def test_heartbeat_folds_gauges_into_the_worker_row(tmp_path):
    board = RunStatusBoard(tmp_path, 5)
    board.heartbeat("worker-1-peer", {"inflight": "unit-02", "units_done": 1,
                                      "prove_seconds": 0.25,
                                      "rss_bytes": 1048576})
    row = board.snapshot()["workers"]["worker-1-peer"]
    assert row["inflight"] == "unit-02"
    assert row["units_done"] == 1
    assert row["prove_seconds"] == 0.25
    assert row["rss_bytes"] == 1048576
    assert row["last_seen"] > 0

    # A later heartbeat with nothing inflight clears the marker.
    board.heartbeat("worker-1-peer", {"inflight": None, "units_done": 2})
    row = board.snapshot()["workers"]["worker-1-peer"]
    assert row["inflight"] is None and row["units_done"] == 2


def test_heartbeat_tolerates_garbage_payloads(tmp_path):
    board = RunStatusBoard(tmp_path, 5)
    board.heartbeat("w", None)                      # protocol-v1 worker
    board.heartbeat("w", {"units_done": "not-a-number", "rss_bytes": []})
    row = board.snapshot()["workers"]["w"]
    assert row["units_done"] == 0 and row["rss_bytes"] is None


def test_note_result_accumulates_and_clears_inflight(tmp_path):
    board = RunStatusBoard(tmp_path, 5)
    board.heartbeat("w", {"inflight": "unit-01"})
    board.note_result("w", prove_seconds=0.1, transport_seconds=0.02)
    board.note_result("w", prove_seconds=0.2, transport_seconds=0.03)
    row = board.snapshot()["workers"]["w"]
    assert row["units_done"] == 2
    assert row["prove_seconds"] == 0.3
    assert row["transport_seconds"] == 0.05
    assert row["inflight"] is None


def test_finish_forces_the_final_write_and_leaves_the_file(tmp_path):
    board = RunStatusBoard(tmp_path, 2)
    # Throttled: updates inside WRITE_INTERVAL stay in memory...
    board.set_progress(units_done=2)
    assert read_run_status(tmp_path)["units_done"] == 0
    # ...until finish(), which always writes and marks the board done.
    board.finish()
    status = read_run_status(tmp_path)
    assert status["done"] is True
    assert status["units_done"] == 2
    assert run_status_path(tmp_path).exists()


def test_in_memory_board_never_touches_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    board = RunStatusBoard(None, 3)
    board.heartbeat("w", {"units_done": 1})
    board.finish()
    assert board.snapshot()["workers"]["w"]["units_done"] == 1
    assert not list(tmp_path.iterdir())


def test_read_rejects_other_schemas_and_garbage(tmp_path):
    assert read_run_status(tmp_path) is None  # no file
    path = run_status_path(tmp_path)
    path.write_text("not json")
    assert read_run_status(tmp_path) is None
    path.write_text(json.dumps({"schema": RUN_STATUS_SCHEMA_VERSION + 1}))
    assert read_run_status(tmp_path) is None


def test_board_file_is_private(tmp_path):
    RunStatusBoard(tmp_path, 1)
    assert (run_status_path(tmp_path).stat().st_mode & 0o777) == 0o600


# --------------------------------------------------------------------- #
# Wiring: a real distributed run feeds the board
# --------------------------------------------------------------------- #

def test_distributed_run_leaves_a_completed_board(tmp_path):
    cache_dir = tmp_path / "cache"
    report = verify_passes_distributed(SUBSET, workers=2,
                                       cache_dir=str(cache_dir))
    assert all(result.verified for result in report.results)
    status = read_run_status(cache_dir)
    assert status is not None and status["done"] is True
    assert status["units_done"] == len(SUBSET)
    assert status["failures"] == 0
    # Worker heartbeats rode the lease messages: the rows carry real
    # prove time and (on Linux) an rss sample.
    workers = {owner: row for owner, row in status["workers"].items()
               if owner.startswith("worker-")}
    assert workers, f"no worker rows in {sorted(status['workers'])}"
    assert sum(row["units_done"] for row in status["workers"].values()) \
        == len(SUBSET)
    assert any(row["prove_seconds"] > 0 for row in workers.values())
    assert any(row["last_seen"] > 0 for row in workers.values())


def test_cacheless_distributed_run_still_verifies(tmp_path, monkeypatch):
    # use_cache=False -> no shared directory to meet a reader in, so the
    # board stays in memory; nothing lands in the default cache location,
    # and the run is unaffected.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-cache"))
    report = verify_passes_distributed(SUBSET[:3], workers=2,
                                       use_cache=False)
    assert all(result.verified for result in report.results)
    assert read_run_status(tmp_path / "default-cache") is None
