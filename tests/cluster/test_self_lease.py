"""Coordinator self-leasing and mid-unit remote subgoal reads (PR 4 follow-ups)."""

import threading

import pytest

from repro.cluster import verify_passes_distributed
from repro.cluster.store import RemoteProofStore, is_store_op, serve_store_op
from repro.cluster.transport import Listener, connect
from repro.cluster.worker import execute_unit, make_store_fallback
from repro.engine import verify_passes
from repro.engine.cache import ProofCache
from repro.engine.driver import _verify_one, default_pass_kwargs
from repro.engine.fingerprint import pass_fingerprint
from repro.passes import ALL_VERIFIED_PASSES
from repro.service.protocol import make_pass_spec, pass_registry

SUBSET = list(ALL_VERIFIED_PASSES)[:6]


# --------------------------------------------------------------------------- #
# Self-leasing
# --------------------------------------------------------------------------- #
def test_coordinator_proves_units_itself_when_no_worker_comes(tmp_path, monkeypatch):
    """With no workers at all, the coordinator drains the plan by
    self-leasing; the proved units appear in EngineStats.cluster."""
    import repro.cluster.coordinator as coordinator_module

    monkeypatch.setattr(coordinator_module, "_spawn_local_workers",
                        lambda *args, **kwargs: [])
    single = verify_passes(SUBSET, jobs=1, cache_dir=str(tmp_path / "a"))
    report = verify_passes_distributed(
        SUBSET, workers=2, cache_dir=str(tmp_path / "b"), worker_wait=2.0)
    cluster = report.stats.cluster
    assert cluster["coordinator_units"] == len(SUBSET)
    assert cluster["remote_units"] == 0
    assert cluster["local_units"] == 0  # nothing left for the fallback
    verdicts = [(r.pass_name, r.verified, r.num_subgoals) for r in report.results]
    expected = [(r.pass_name, r.verified, r.num_subgoals) for r in single.results]
    assert verdicts == expected
    # Self-leased proofs land in the shared store like any worker's would.
    warm = verify_passes(SUBSET, jobs=1, cache_dir=str(tmp_path / "b"))
    assert warm.stats.cache_hits == len(SUBSET)


def test_self_leasing_can_be_disabled(tmp_path, monkeypatch):
    import repro.cluster.coordinator as coordinator_module

    monkeypatch.setattr(coordinator_module, "_spawn_local_workers",
                        lambda *args, **kwargs: [])
    report = verify_passes_distributed(
        SUBSET, workers=2, cache_dir=str(tmp_path), worker_wait=0.3,
        self_lease=False)
    cluster = report.stats.cluster
    assert cluster["coordinator_units"] == 0
    assert cluster["local_units"] == len(SUBSET)  # the in-process fallback
    assert all(r.verified for r in report.results)


def test_cluster_line_reports_self_leased_units():
    from repro.engine.driver import EngineStats

    stats = EngineStats()
    stats.cluster = {"workers": 0, "units_total": 6, "split_passes": 0,
                     "coordinator_units": 6, "remote_subgoal_hits": 3}
    line = stats.cluster_line()
    assert "6 self-leased" in line
    assert "3 subgoals fetched mid-unit" in line


# --------------------------------------------------------------------------- #
# Mid-unit remote subgoal reads
# --------------------------------------------------------------------------- #
def _serve_store(listener, cache):
    def server():
        conn = listener.accept(timeout=10)
        while True:
            message = conn.recv()
            if message is None:
                break
            assert is_store_op(message)
            conn.send(serve_store_op(cache, message, allow_writes=False))
    thread = threading.Thread(target=server, daemon=True)
    thread.start()
    return thread


def test_worker_skips_reproving_via_the_warm_certificate_store(tmp_path):
    """A worker whose local snapshot is empty resolves already-proved
    subgoals mid-unit from the coordinator's warm store tier instead of
    re-proving them."""
    pass_class = SUBSET[0]
    kwargs = default_pass_kwargs(pass_class)
    # Warm the coordinator-side store: subgoal + certificate tiers.
    cache = ProofCache(tmp_path)
    _, warm_acct = _verify_one(pass_class, kwargs, False, {})
    for key, value in warm_acct.new_subgoals.items():
        cache.put_subgoal(key, value)
    for key, value in warm_acct.new_certificates.items():
        cache.put_certificate(key, value)
    assert warm_acct.misses > 0

    unit = {
        "unit_id": "u1",
        "kind": "pass",
        "spec": make_pass_spec(pass_class, kwargs),
        "key": pass_fingerprint(pass_class, kwargs),
        "solver": "builtin",
        "shard_index": 0,
        "shard_count": 1,
        "counterexample_search": False,
    }
    with Listener(f"unix:{tmp_path}/store.sock") as listener:
        thread = _serve_store(listener, cache)
        connection = connect(listener.address, timeout=10)
        store = RemoteProofStore(connection)
        # The mid-unit case: the worker's handshake snapshot is stale/empty.
        reply = execute_unit(unit, pass_registry(), {}, store=store)
        connection.close()
        thread.join(timeout=5)
    assert reply["ok"]
    assert reply["subgoal_remote_hits"] >= 1
    assert reply["subgoal_misses"] == 0          # nothing was re-proved
    assert reply["new_subgoals"] == {}           # the store already had it all
    assert reply["payload"]["verified"]
    cache.close()


def test_stateless_cluster_run_survives_mid_unit_probes(tmp_path):
    """--no-cache cluster runs have no store to serve: mid-unit probes get
    a graceful error reply (workers re-prove locally), never a dead
    handler thread."""
    from repro.cluster.store import serve_store_op

    reply = serve_store_op(None, {"op": "store.get_subgoal", "args": ["k"]})
    assert "no proof store" in reply["error"]
    report = verify_passes_distributed(SUBSET[:3], workers=2, use_cache=False)
    assert all(result.verified for result in report.results)
    assert report.stats.cache_dir is None


def test_store_fallback_swallows_transport_errors(tmp_path):
    with Listener(f"unix:{tmp_path}/s.sock") as listener:
        def server():
            conn = listener.accept(timeout=10)
            conn.recv()
            conn.close()  # die mid-call

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        connection = connect(listener.address, timeout=10)
        fallback = make_store_fallback(RemoteProofStore(connection))
        assert fallback("some-key") is None  # degraded, not raised
        connection.close()
        thread.join(timeout=5)
    assert make_store_fallback(None) is None
