"""Unit planning: deterministic ids, split decisions, wire round trips."""

import pytest

from repro.cluster.plan import (
    WorkUnit,
    load_timings,
    plan_units,
    record_timings,
)
from repro.engine.driver import default_pass_kwargs
from repro.engine.fingerprint import pass_fingerprint, unit_fingerprint
from repro.incremental.deps import identity_key
from repro.passes import ALL_VERIFIED_PASSES
from repro.service.protocol import pass_registry


def _pending(classes):
    return [
        (index, cls, default_pass_kwargs(cls), pass_fingerprint(cls, default_pass_kwargs(cls)))
        for index, cls in enumerate(classes)
    ]


def test_whole_pass_units_by_default():
    registry = pass_registry()
    pending = _pending(ALL_VERIFIED_PASSES[:6])
    plan = plan_units(pending, registry)
    assert len(plan.units) == 6
    assert all(unit.kind == "pass" for unit in plan.units)
    assert plan.split_passes == 0
    assert not plan.local
    # Whole-pass unit ids are the pass fingerprints themselves.
    assert [unit.unit_id for unit in plan.units] == [key for _, _, _, key in pending]


def test_planning_is_deterministic():
    registry = pass_registry()
    pending = _pending(ALL_VERIFIED_PASSES[:6])
    first = plan_units(pending, registry, shard_threshold=0)
    second = plan_units(pending, registry, shard_threshold=0)
    assert [u.unit_id for u in first.units] == [u.unit_id for u in second.units]


def test_force_split_shards_every_pass():
    registry = pass_registry()
    pending = _pending(ALL_VERIFIED_PASSES[:3])
    plan = plan_units(pending, registry, shard_threshold=0, shard_count=3)
    assert plan.split_passes == 3
    assert len(plan.units) == 9
    for unit in plan.units:
        assert unit.kind == "shard"
        assert unit.shard_count == 3
        assert unit.unit_id == unit_fingerprint(unit.key, unit.shard_index, 3)


def test_timing_threshold_drives_splitting(tmp_path):
    registry = pass_registry()
    pending = _pending(ALL_VERIFIED_PASSES[:3])
    slow_ident = identity_key(pending[1][1], pending[1][2])
    timings = {slow_ident: 2.0}
    plan = plan_units(pending, registry, timings=timings, shard_threshold=1.0)
    assert plan.split == {1: 2}
    kinds = sorted((u.index, u.kind) for u in plan.units)
    assert kinds == [(0, "pass"), (1, "shard"), (1, "shard"), (2, "pass")]


def test_shard_count_auto_tunes_from_the_recorded_ratio():
    from repro.cluster.plan import MAX_SHARD_COUNT, derive_shard_count

    # ~one threshold's worth of work per shard, clamped to [2, MAX].
    assert derive_shard_count(2.0, 1.0) == 2
    assert derive_shard_count(3.2, 1.0) == 4
    assert derive_shard_count(1.0, 1.0) == 2
    assert derive_shard_count(100.0, 1.0) == MAX_SHARD_COUNT
    assert derive_shard_count(None, 1.0) == 2    # nothing recorded
    assert derive_shard_count(5.0, 0.0) == 2     # force-split mode

    registry = pass_registry()
    pending = _pending(ALL_VERIFIED_PASSES[:2])
    idents = [identity_key(cls, kwargs) for _, cls, kwargs, _ in pending]
    timings = {idents[0]: 3.2, idents[1]: 40.0}
    plan = plan_units(pending, registry, timings=timings, shard_threshold=1.0)
    assert plan.split == {0: 4, 1: MAX_SHARD_COUNT}
    counts = {}
    for unit in plan.units:
        counts[unit.index] = counts.get(unit.index, 0) + 1
        assert unit.shard_count == plan.split[unit.index]
    assert counts == plan.split


def test_explicit_shard_count_overrides_auto_tuning():
    registry = pass_registry()
    pending = _pending(ALL_VERIFIED_PASSES[:1])
    ident = identity_key(pending[0][1], pending[0][2])
    plan = plan_units(pending, registry, timings={ident: 40.0},
                      shard_threshold=1.0, shard_count=3)
    assert plan.split == {0: 3}


def test_units_carry_the_solver_on_the_wire():
    registry = pass_registry()
    plan = plan_units(_pending(ALL_VERIFIED_PASSES[:1]), registry)
    wire = plan.units[0].to_wire(True, "bounded")
    assert wire["solver"] == "bounded"
    assert plan.units[0].to_wire(True)["solver"] == "builtin"


def test_inexpressible_kwargs_stay_local():
    registry = pass_registry()
    cls = ALL_VERIFIED_PASSES[0]
    pending = [(0, cls, {"mystery": 3}, "some-key")]
    plan = plan_units(pending, registry)
    assert not plan.units
    assert plan.local == pending


def test_unknown_class_stays_local():
    class NotRegistered:
        pass

    registry = pass_registry()
    pending = [(0, NotRegistered, None, "key")]
    plan = plan_units(pending, registry)
    assert not plan.units
    assert plan.local == pending


def test_shard_wire_form_disables_counterexample_search():
    registry = pass_registry()
    pending = _pending(ALL_VERIFIED_PASSES[:1])
    plan = plan_units(pending, registry, shard_threshold=0)
    wire = plan.units[0].to_wire(True)
    assert wire["kind"] == "shard"
    assert wire["counterexample_search"] is False
    whole = plan_units(pending, registry).units[0].to_wire(True)
    assert whole["counterexample_search"] is True
    assert whole["key"] == pending[0][3]


def test_timings_round_trip(tmp_path):
    assert load_timings(tmp_path) == {}
    record_timings(tmp_path, {"a": 1.5, "b": 0.25})
    record_timings(tmp_path, {"b": 0.5})
    assert load_timings(tmp_path) == {"a": 1.5, "b": 0.5}
    assert load_timings(None) == {}
    record_timings(None, {"a": 1})  # no-op, must not raise


def test_duplicate_configurations_get_distinct_unit_ids():
    registry = pass_registry()
    cls = ALL_VERIFIED_PASSES[0]
    kwargs = default_pass_kwargs(cls)
    key = pass_fingerprint(cls, kwargs)
    pending = [(0, cls, kwargs, key), (1, cls, kwargs, key)]
    plan = plan_units(pending, registry)
    ids = [unit.unit_id for unit in plan.units]
    assert len(set(ids)) == 2
