"""Transports: framing, token auth, discovery, the remote store tier."""

import threading

import pytest

from repro.cluster.store import RemoteProofStore, serve_store_op, is_store_op
from repro.cluster.transport import (
    ClusterEndpoint,
    Listener,
    TransportError,
    client_hello,
    connect,
    parse_address,
    read_cluster_state,
    remove_cluster_state,
    server_handshake,
    token_path,
    write_cluster_state,
)
from repro.service.store import SqliteProofCache


def test_parse_address_forms():
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_address("127.0.0.1:7200") == ("tcp", ("127.0.0.1", 7200))
    with pytest.raises(TransportError):
        parse_address("no-port-here")
    with pytest.raises(TransportError):
        parse_address("unix:")
    with pytest.raises(TransportError):
        parse_address("host:notaport")


@pytest.mark.parametrize("family", ["unix", "tcp"])
def test_framed_round_trip(tmp_path, family):
    address = (f"unix:{tmp_path}/t.sock" if family == "unix"
               else "127.0.0.1:0")
    with Listener(address) as listener:
        received = {}

        def server():
            conn = listener.accept(timeout=5)
            received["msg"] = conn.recv()
            conn.send({"op": "echo", "big": received["msg"]["big"]})
            conn.close()

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        client = connect(listener.address, timeout=5)
        # A frame big enough to span several socket reads.
        client.send({"op": "hi", "big": "x" * 3_000_000})
        reply = client.recv()
        client.close()
        thread.join(timeout=5)
    assert received["msg"]["op"] == "hi"
    assert reply["op"] == "echo" and len(reply["big"]) == 3_000_000


def test_handshake_rejects_bad_token(tmp_path):
    with Listener(f"unix:{tmp_path}/t.sock") as listener:
        outcome = {}

        def server():
            conn = listener.accept(timeout=5)
            outcome["hello"] = server_handshake(conn, "right-token")

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        client = connect(listener.address, timeout=5)
        with pytest.raises(TransportError):
            client_hello(client, "wrong-token")
        thread.join(timeout=5)
        assert outcome["hello"] is None


def test_handshake_accepts_and_carries_extra(tmp_path):
    with Listener(f"unix:{tmp_path}/t.sock") as listener:
        def server():
            conn = listener.accept(timeout=5)
            server_handshake(conn, "tok", welcome_extra={"toolchain": "abc"})
            conn.close()

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        client = connect(listener.address, timeout=5)
        welcome = client_hello(client, "tok", host="testhost")
        client.close()
        thread.join(timeout=5)
    assert welcome["toolchain"] == "abc"


def test_cluster_state_round_trip(tmp_path):
    endpoint = ClusterEndpoint(address="127.0.0.1:7200", token="secret", pid=42)
    write_cluster_state(tmp_path, endpoint)
    state = read_cluster_state(tmp_path)
    assert state.address == "127.0.0.1:7200"
    assert state.token == "secret"
    assert token_path(tmp_path).read_text().strip() == "secret"
    # Another coordinator's token must not remove the newer state.
    remove_cluster_state(tmp_path, token="stale-token")
    assert read_cluster_state(tmp_path) is not None
    remove_cluster_state(tmp_path, token="secret")
    assert read_cluster_state(tmp_path) is None


def test_remote_store_against_live_cache(tmp_path):
    """The networked store tier round-trips every operation it advertises."""
    cache = SqliteProofCache(tmp_path)
    cache.put_subgoal("sg1", {"proved": True, "method": "m", "reason": "",
                              "rules_used": []})
    with Listener(f"unix:{tmp_path}/store.sock") as listener:
        def server():
            conn = listener.accept(timeout=5)
            while True:
                message = conn.recv()
                if message is None:
                    break
                assert is_store_op(message)
                conn.send(serve_store_op(cache, message))

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        client = connect(listener.address, timeout=5)
        store = RemoteProofStore(client)

        assert store.get_pass(None) is None
        assert store.get_pass("missing") is None
        store.put_pass("p1", {"pass": "X", "verified": True})
        assert store.get_pass("p1")["pass"] == "X"
        assert store.has_subgoal("sg1") and not store.has_subgoal("sg2")
        store.put_subgoal("sg2", {"proved": False, "method": "m", "reason": "r",
                                  "rules_used": []})
        assert store.get_subgoal("sg2")["proved"] is False
        snapshot = store.subgoal_snapshot()
        assert set(snapshot) == {"sg1", "sg2"}
        store.touch_subgoals(["sg1"])
        store.put_deps("ident", {"schema": 1, "fingerprint": "f", "paths": []})
        assert store.get_deps("ident")["fingerprint"] == "f"
        assert "ident" in store.deps_snapshot()
        assert store.stats.pass_hits == 1 and store.stats.pass_misses == 2
        client.close()
        thread.join(timeout=5)
    # The writes really landed in the backing store.
    assert cache.get_pass("p1") is not None
    assert cache.hit_count("subgoal", "sg1") >= 1
    cache.close()


def test_serve_store_op_reports_errors_without_dying(tmp_path):
    cache = SqliteProofCache(tmp_path)
    reply = serve_store_op(cache, {"op": "store.get_pass", "args": []})  # missing arg
    assert reply["op"] == "store.reply"
    assert "error" in reply
    cache.close()


def test_read_only_store_rejects_writes_but_serves_reads(tmp_path):
    """The coordinator-facing mode: content writes rejected, reads fine."""
    cache = SqliteProofCache(tmp_path)
    cache.put_pass("p", {"pass": "X"})
    denied = serve_store_op(
        cache, {"op": "store.put_pass", "args": ["q", {"pass": "Y"}]},
        allow_writes=False)
    assert "read-only" in denied["error"]
    assert cache.get_pass("q") is None
    served = serve_store_op(cache, {"op": "store.get_pass", "args": ["p"]},
                            allow_writes=False)
    assert served["value"]["pass"] == "X"
    # Recency touches are not content writes.
    touched = serve_store_op(cache, {"op": "store.touch_subgoals", "args": [[]]},
                             allow_writes=False)
    assert "error" not in touched
    cache.close()


def test_remote_store_io_counters_reset_per_unit(tmp_path):
    """Workers reset the per-tier io counters before each unit and ship
    the non-empty delta on the result message; the tier names and reset
    semantics here are what the coordinator's merge relies on."""
    cache = SqliteProofCache(tmp_path)
    cache.put_pass("warm", {"verified": True})
    with Listener(f"unix:{tmp_path}/store.sock") as listener:
        def server():
            conn = listener.accept(timeout=5)
            while True:
                message = conn.recv()
                if message is None:
                    break
                conn.send(serve_store_op(cache, message))

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        client = connect(listener.address, timeout=5)
        store = RemoteProofStore(client)

        assert store.io_totals() == {}
        store.get_pass("warm")
        store.get_pass("cold-miss")
        store.get_subgoal("nothing")
        io = store.io_totals()
        assert io["pass"]["gets"] == 2
        assert io["pass"]["hits"] == 1 and io["pass"]["misses"] == 1
        assert io["pass"]["bytes"] > 0            # the hit was measured
        assert io["pass"]["seconds"] > 0.0
        assert io["subgoal"] == {"gets": 1, "hits": 0, "misses": 1,
                                 "seconds": io["subgoal"]["seconds"],
                                 "bytes": 0}
        # Totals are a snapshot, not a live view.
        io["pass"]["gets"] = 999
        assert store.io_totals()["pass"]["gets"] == 2
        store.reset_io()
        assert store.io_totals() == {}
        client.close()
        thread.join(timeout=5)
    cache.close()
