"""Dependency-index construction and persistence across both cache backends."""

import json

import pytest

from repro.engine.cache import ProofCache
from repro.engine.fingerprint import pass_fingerprint
from repro.incremental.deps import (
    DEPS_SCHEMA_VERSION,
    build_dep_entry,
    identity_key,
    import_closure,
    pass_dependency_paths,
    toolchain_dependency_paths,
)
from repro.passes import CommutationAnalysis, CXCancellation, Depth
from repro.service.store import SqliteProofCache


# --------------------------------------------------------------------------- #
# Dependency computation
# --------------------------------------------------------------------------- #
def test_pass_dependencies_cover_fingerprint_inputs():
    paths = pass_dependency_paths(CXCancellation)
    endings = {
        "passes/optimization.py",   # the pass's own module
        "verify/passes.py",         # its base class
        "symbolic/rules.py",        # the rule set
        "symbolic/commutation.py",
        "verify/discharge.py",      # the prover
        "engine/fingerprint.py",    # ENGINE_VERSION / canonicalisation
    }
    for ending in endings:
        assert any(p.endswith(ending) for p in paths), ending
    assert list(paths) == sorted(paths)


def test_toolchain_paths_are_a_subset_of_every_pass():
    toolchain = set(toolchain_dependency_paths())
    assert toolchain <= set(pass_dependency_paths(Depth))
    assert toolchain <= set(pass_dependency_paths(CommutationAnalysis))


def test_import_closure_is_transitive():
    closure = import_closure("repro.passes.optimization")
    assert "repro.passes.optimization" in closure
    # optimization.py imports utility.circuit_ops which imports verify.facts
    assert "repro.utility.circuit_ops" in closure
    assert "repro.verify.facts" in closure
    # nothing outside the package leaks in
    assert all(name.startswith("repro") for name in closure)


def test_identity_key_stable_under_source_edits_but_kwarg_sensitive():
    from repro.coupling.devices import linear_device

    base = identity_key(CXCancellation, None)
    assert base == identity_key(CXCancellation, None)
    assert base != identity_key(Depth, None)
    assert base != identity_key(CXCancellation,
                                {"coupling": linear_device(3)})
    assert identity_key(CXCancellation, {"coupling": linear_device(3)}) != \
        identity_key(CXCancellation, {"coupling": linear_device(4)})


def test_build_dep_entry_shape():
    key = pass_fingerprint(Depth)
    entry = build_dep_entry(Depth, None, key)
    assert entry["schema"] == DEPS_SCHEMA_VERSION
    assert entry["fingerprint"] == key
    assert entry["module"] == "repro.passes.analysis"
    assert entry["qualname"] == "Depth"
    assert entry["paths"] == list(pass_dependency_paths(Depth))
    json.dumps(entry)  # must be wire/sidecar serialisable


# --------------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_dep_index_persists_across_reopen(tmp_path, backend):
    def open_cache():
        if backend == "jsonl":
            return ProofCache(tmp_path)
        return SqliteProofCache(tmp_path)

    entry = build_dep_entry(Depth, None, pass_fingerprint(Depth))
    with open_cache() as cache:
        assert cache.get_deps("ident-1") is None
        cache.put_deps("ident-1", entry)
        assert cache.get_deps("ident-1") == entry

    with open_cache() as cache:
        assert cache.get_deps("ident-1") == entry
        assert cache.deps_snapshot() == {"ident-1": entry}


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_dep_index_last_write_wins(tmp_path, backend):
    def open_cache():
        if backend == "jsonl":
            return ProofCache(tmp_path)
        return SqliteProofCache(tmp_path)

    first = build_dep_entry(Depth, None, "fp-old")
    second = build_dep_entry(Depth, None, "fp-new")
    with open_cache() as cache:
        cache.put_deps("ident", first)
        cache.put_deps("ident", second)
        assert cache.get_deps("ident")["fingerprint"] == "fp-new"
    with open_cache() as cache:
        assert cache.get_deps("ident")["fingerprint"] == "fp-new"


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_foreign_schema_entries_are_invisible(tmp_path, backend):
    entry = build_dep_entry(Depth, None, pass_fingerprint(Depth))
    foreign = dict(entry, schema=DEPS_SCHEMA_VERSION + 1)
    if backend == "jsonl":
        with ProofCache(tmp_path) as cache:
            cache.put_deps("ok", entry)
        # A record written by a future schema lands in the same sidecar.
        with open(tmp_path / "deps.jsonl", "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": "future", "value": foreign}) + "\n")
        with ProofCache(tmp_path) as cache:
            assert cache.get_deps("future") is None
            assert cache.get_deps("ok") == entry
            assert "future" not in cache.deps_snapshot()
    else:
        with SqliteProofCache(tmp_path) as cache:
            cache.put_deps("ok", entry)
            cache._conn.execute(
                "INSERT INTO deps (key, schema, value, updated_at) "
                "VALUES ('future', ?, ?, 0)",
                (DEPS_SCHEMA_VERSION + 1, json.dumps(foreign)),
            )
        with SqliteProofCache(tmp_path) as cache:
            assert cache.get_deps("future") is None
            assert "future" not in cache.deps_snapshot()
            # prune reaps foreign-schema rows
            cache.put_pass("p", {"verified": True})
            cache.prune(10)
            row = cache._conn.execute(
                "SELECT COUNT(*) FROM deps WHERE key = 'future'").fetchone()
            assert row[0] == 0


def test_jsonl_corrupt_dep_lines_are_skipped(tmp_path):
    entry = build_dep_entry(Depth, None, "fp")
    with ProofCache(tmp_path) as cache:
        cache.put_deps("ok", entry)
    with open(tmp_path / "deps.jsonl", "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write('{"key": "half"}\n')
    with ProofCache(tmp_path) as cache:
        assert cache.deps_snapshot() == {"ok": entry}
        assert cache.stats.corrupt_lines == 2


def test_jsonl_identical_put_does_not_grow_sidecar(tmp_path):
    entry = build_dep_entry(Depth, None, "fp")
    with ProofCache(tmp_path) as cache:
        cache.put_deps("ok", entry)
    size_after_first = (tmp_path / "deps.jsonl").stat().st_size
    for _ in range(5):
        with ProofCache(tmp_path) as cache:
            cache.put_deps("ok", dict(entry))
    assert (tmp_path / "deps.jsonl").stat().st_size == size_after_first
