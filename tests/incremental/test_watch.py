"""End-to-end incremental re-verification: driver, watcher, daemon pre-warm."""

import pytest

from repro.engine.driver import verify_passes


# --------------------------------------------------------------------------- #
# verify_passes(changed_paths=...)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_incremental_run_skips_unchanged_passes(tmp_path, pass_package, backend):
    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    pass_package.write("mod_b.py", pass_package.GOOD_SIZE)
    width = pass_package.load("mod_a", "TempWidth")
    size = pass_package.load("mod_b", "TempSize")
    cache_dir = tmp_path / "cache"

    cold = verify_passes([width, size], cache_dir=cache_dir, backend=backend)
    assert cold.stats.cache_misses == 2
    assert cold.stats.stale_passes is None  # full runs don't report staleness

    quiet = verify_passes([width, size], cache_dir=cache_dir, backend=backend,
                          changed_paths=[])
    assert quiet.stats.stale_passes == 0
    assert quiet.stats.cache_hits == 2
    assert quiet.stats.cache_misses == 0

    only_a = verify_passes([width, size], cache_dir=cache_dir, backend=backend,
                           changed_paths=[pass_package.path_of("mod_a.py")])
    assert only_a.stats.stale_passes == 1
    assert only_a.stats.cache_hits == 2  # unchanged source -> same key -> hit
    assert only_a.stats.cache_misses == 0
    assert [r.verified for r in only_a.results] == \
        [r.verified for r in cold.results]


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_pass_without_dep_entry_is_conservatively_stale(tmp_path, pass_package,
                                                        backend):
    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    width = pass_package.load("mod_a", "TempWidth")
    cache_dir = tmp_path / "cache"
    # Populate the proof cache but *not* the dep index.
    cold = verify_passes([width], cache_dir=cache_dir, backend=backend,
                         record_deps=False)
    assert cold.stats.cache_misses == 1
    incr = verify_passes([width], cache_dir=cache_dir, backend=backend,
                         changed_paths=[])
    assert incr.stats.stale_passes == 1   # no entry -> full fingerprint path
    assert incr.stats.cache_hits == 1     # ... which then hits the proof cache


def test_verdicts_identical_to_full_run_after_edit(tmp_path, pass_package):
    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    pass_package.write("mod_b.py", pass_package.GOOD_SIZE)
    width = pass_package.load("mod_a", "TempWidth")
    size = pass_package.load("mod_b", "TempSize")
    cache_dir = tmp_path / "cache"
    verify_passes([width, size], cache_dir=cache_dir)

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH_EDITED)
    from repro.incremental.watch import refresh_classes, refresh_source_state

    refresh_source_state([pass_package.path_of("mod_a.py")])
    width, size = refresh_classes([width, size])

    incr = verify_passes([width, size], cache_dir=cache_dir,
                         changed_paths=[pass_package.path_of("mod_a.py")])
    full = verify_passes([width, size], cache_dir=tmp_path / "fresh")
    assert incr.stats.stale_passes == 1
    assert incr.stats.cache_misses == 1   # the edited pass was re-proved
    assert [r.verified for r in incr.results] == \
        [r.verified for r in full.results]


# --------------------------------------------------------------------------- #
# The Watcher loop
# --------------------------------------------------------------------------- #
def test_watcher_reverifies_only_the_edited_pass(tmp_path, pass_package):
    from repro.incremental.watch import Watcher

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    pass_package.write("mod_b.py", pass_package.GOOD_SIZE)
    width = pass_package.load("mod_a", "TempWidth")
    size = pass_package.load("mod_b", "TempSize")

    watcher = Watcher([width, size], cache_dir=str(tmp_path / "cache"))
    baseline = watcher.run_cycle()
    assert baseline.stats.cache_misses == 2
    assert baseline.all_verified

    quiet = watcher.run_cycle()
    assert quiet.quiet

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH_EDITED)
    cycle = watcher.run_cycle()
    assert not cycle.quiet
    assert cycle.changed_paths == (pass_package.path_of("mod_a.py"),)
    assert cycle.stats.stale_passes == 1
    assert cycle.stats.cache_hits == 1     # TempSize untouched: served warm
    assert cycle.stats.cache_misses == 1   # TempWidth re-proved
    assert cycle.all_verified
    assert any("mod_a" in name for name in cycle.reloaded_modules)
    # The reloaded class really is the edited one.
    assert "num_clbits" in [c for c in watcher.pass_classes
                            if c.__name__ == "TempWidth"][0].run.__code__.co_names


def test_watcher_watch_runs_bounded_cycles(tmp_path, pass_package):
    from repro.incremental.watch import Watcher

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    width = pass_package.load("mod_a", "TempWidth")
    watcher = Watcher([width], cache_dir=str(tmp_path / "cache"))
    lines = []
    last = watcher.watch(interval=0.01, cycles=2, printer=lines.append)
    assert watcher.cycles_run == 2
    assert last is not None and last.index == 0   # only the baseline verified
    assert any("cycle 0" in line for line in lines)


# --------------------------------------------------------------------------- #
# Daemon pre-warm
# --------------------------------------------------------------------------- #
def test_daemon_watcher_prewarms_store(tmp_path, pass_package):
    from repro.service.daemon import DaemonWatcher, VerificationService

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    pass_package.write("mod_b.py", pass_package.GOOD_SIZE)
    width = pass_package.load("mod_a", "TempWidth")
    size = pass_package.load("mod_b", "TempSize")

    service = VerificationService(cache_dir=tmp_path / "store", backend="sqlite")
    try:
        verify_passes([width, size], cache=service.cache)
        watcher = DaemonWatcher(service, interval=0.05,
                                pass_classes=[width, size])
        assert watcher.run_cycle() == 0   # nothing changed yet

        pass_package.write("mod_a.py", pass_package.GOOD_WIDTH_EDITED)
        assert watcher.run_cycle() == 1   # exactly the edited pass re-proved
        assert watcher.prewarmed == 1

        # A client arriving after the edit is served entirely warm.
        from repro.incremental.watch import refresh_classes

        client = verify_passes(refresh_classes([width, size]),
                               cache=service.cache)
        assert client.stats.cache_hits == 2
        assert client.stats.cache_misses == 0
    finally:
        service.close()


# --------------------------------------------------------------------------- #
# PassManager tie-in
# --------------------------------------------------------------------------- #
def test_passmanager_mark_stale_drops_only_affected_configs(tmp_path,
                                                            pass_package):
    from repro.transpiler.passmanager import PassManager

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    pass_package.write("mod_b.py", pass_package.GOOD_SIZE)
    width = pass_package.load("mod_a", "TempWidth")
    size = pass_package.load("mod_b", "TempSize")

    manager = PassManager([width(), size()], verify_first=True,
                          verify_cache_dir=str(tmp_path / "cache"))
    manager.ensure_verified()
    assert len(manager._verified_classes) == 2

    # An unrelated edit invalidates nothing.
    assert manager.mark_stale([str(tmp_path / "unrelated.py")]) == 0
    assert len(manager._verified_classes) == 2

    # Editing mod_a invalidates exactly TempWidth's marker.
    assert manager.mark_stale([pass_package.path_of("mod_a.py")]) == 1
    remaining = [cls.__name__ for (cls, _) in manager._verified_classes.values()]
    assert remaining == ["TempSize"]


def test_watch_daemon_refuses_non_watching_daemon(tmp_path, pass_package,
                                                  capsys):
    """A daemon without --watch must not serve watch cycles (store poisoning)."""
    import threading

    from repro.incremental.watch import Watcher
    from repro.service.daemon import ProofDaemon, VerificationService

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    width = pass_package.load("mod_a", "TempWidth")

    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        watcher = Watcher([width], cache_dir=str(tmp_path), backend="sqlite",
                          use_daemon=True)
        cycle = watcher.run_cycle()
        # Served in-process (no stats.daemon block), with a one-time warning.
        assert cycle.stats.daemon is None
        assert cycle.all_verified
        assert "not running with --watch" in capsys.readouterr().err
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


def test_watch_daemon_uses_watching_daemon(tmp_path, pass_package):
    """Against a --watch daemon the cycle is served remotely and stays sound."""
    import threading

    from repro.incremental.watch import Watcher, refresh_classes
    from repro.service.daemon import (
        DaemonWatcher,
        ProofDaemon,
        VerificationService,
    )

    pass_package.write("mod_a.py", pass_package.GOOD_WIDTH)
    width = pass_package.load("mod_a", "TempWidth")

    service = VerificationService(cache_dir=tmp_path, backend="sqlite")
    service.registry["TempWidth"] = width   # daemon must know the temp pass
    # Watcher thread not started: request-time catch-up cycles are enough.
    service.watcher = DaemonWatcher(service, interval=60.0,
                                    pass_classes=[width])
    server = ProofDaemon(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        watcher = Watcher([width], cache_dir=str(tmp_path), backend="sqlite",
                          use_daemon=True)
        baseline = watcher.run_cycle()
        assert baseline.stats.daemon is not None   # actually served remotely

        # Edit; the daemon must catch up at request time and prove the NEW
        # code, not cache a stale verdict under the new key.
        pass_package.write("mod_a.py", pass_package.GOOD_WIDTH_EDITED)
        cycle = watcher.run_cycle()
        assert not cycle.quiet
        assert cycle.stats.daemon is not None
        assert cycle.all_verified
        # The daemon's registry classes were refreshed by the catch-up.
        refreshed = service.watcher._classes()[0]
        assert "num_clbits" in refreshed.run.__code__.co_names
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()
