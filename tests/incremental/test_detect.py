"""Change detection and minimal-staleness computation."""

import os

from repro.incremental.detect import (
    ChangeDetector,
    normalize_path,
    stale_identities,
)


def _write(path, text):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def test_detector_baselines_silently_and_reports_content_changes(tmp_path):
    a = tmp_path / "a.py"
    b = tmp_path / "b.py"
    _write(a, "x = 1\n")
    _write(b, "y = 1\n")
    detector = ChangeDetector([a, b])
    assert detector.poll() == set()

    _write(a, "x = 2\n")
    assert detector.poll() == {normalize_path(a)}
    assert detector.poll() == set()  # change consumed


def test_touch_without_content_change_is_quiet(tmp_path):
    a = tmp_path / "a.py"
    _write(a, "x = 1\n")
    detector = ChangeDetector([a])
    future = os.stat(a).st_mtime + 60
    os.utime(a, (future, future))
    assert detector.poll() == set()


def test_deletion_and_reappearance_are_changes(tmp_path):
    a = tmp_path / "a.py"
    _write(a, "x = 1\n")
    detector = ChangeDetector([a])
    os.unlink(a)
    assert detector.poll() == {normalize_path(a)}
    assert detector.poll() == set()
    _write(a, "x = 1\n")
    assert detector.poll() == {normalize_path(a)}


def test_poll_extends_watch_set_without_reporting_new_paths(tmp_path):
    a = tmp_path / "a.py"
    b = tmp_path / "b.py"
    _write(a, "x = 1\n")
    detector = ChangeDetector([a])
    _write(b, "y = 1\n")
    assert detector.poll([b]) == set()   # new path baselined, not reported
    _write(b, "y = 2\n")
    assert detector.poll() == {normalize_path(b)}


def test_stale_identities_is_minimal(tmp_path):
    a = normalize_path(tmp_path / "a.py")
    b = normalize_path(tmp_path / "b.py")
    shared = normalize_path(tmp_path / "toolchain.py")
    dep_index = {
        "pass-a": {"fingerprint": "fa", "paths": [a, shared]},
        "pass-b": {"fingerprint": "fb", "paths": [b, shared]},
    }
    assert stale_identities(dep_index, []) == set()
    assert stale_identities(dep_index, [a]) == {"pass-a"}
    assert stale_identities(dep_index, [b]) == {"pass-b"}
    assert stale_identities(dep_index, [shared]) == {"pass-a", "pass-b"}
    assert stale_identities(dep_index, [tmp_path / "unrelated.py"]) == set()
