"""Dependency-index garbage collection, on both proof-cache backends."""

import pytest

from repro.cli import main
from repro.engine.cache import ProofCache
from repro.service.store import SqliteProofCache


def _seed(cache):
    cache.put_deps("live-1", {"schema": 1, "fingerprint": "f1", "paths": []})
    cache.put_deps("live-2", {"schema": 1, "fingerprint": "f2", "paths": []})
    cache.put_deps("gone-1", {"schema": 1, "fingerprint": "f3", "paths": []})
    cache.put_deps("gone-2", {"schema": 1, "fingerprint": "f4", "paths": []})


@pytest.mark.parametrize("backend", [ProofCache, SqliteProofCache])
def test_gc_removes_only_dead_entries(tmp_path, backend):
    with backend(tmp_path) as cache:
        _seed(cache)
        removed = cache.gc_deps({"live-1", "live-2"})
        assert removed == 2
        assert set(cache.deps_snapshot()) == {"live-1", "live-2"}
        assert cache.stats.deps_reclaimed == 2
    # Durable: a reopened cache sees only the survivors.
    with backend(tmp_path) as cache:
        assert set(cache.deps_snapshot()) == {"live-1", "live-2"}


@pytest.mark.parametrize("backend", [ProofCache, SqliteProofCache])
def test_gc_with_everything_live_is_a_noop(tmp_path, backend):
    with backend(tmp_path) as cache:
        _seed(cache)
        assert cache.gc_deps({"live-1", "live-2", "gone-1", "gone-2"}) == 0
        assert len(cache.deps_snapshot()) == 4


@pytest.mark.parametrize("backend_name", ["jsonl", "sqlite"])
def test_cli_cache_gc_keeps_suite_configurations(tmp_path, capsys, backend_name):
    cache_dir = str(tmp_path / "cache")
    # Verify two real passes: their dep entries are in the suite and must
    # survive; a fabricated entry must be reclaimed.
    assert main(["verify", "CXCancellation", "Depth", "--backend", backend_name,
                 "--cache-dir", cache_dir, "--format", "json"]) == 0
    capsys.readouterr()
    backend = ProofCache if backend_name == "jsonl" else SqliteProofCache
    with backend(cache_dir) as cache:
        cache.put_deps("abandoned-config",
                       {"schema": 1, "fingerprint": "x", "paths": []})
        before = len(cache.deps_snapshot())
    assert main(["cache", "gc", "--backend", backend_name,
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "1 reclaimed" in out
    with backend(cache_dir) as cache:
        after = cache.deps_snapshot()
        assert len(after) == before - 1
        assert "abandoned-config" not in after


def test_sqlite_prune_reports_reclaimed_dep_rows(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    with SqliteProofCache(cache_dir) as cache:
        # A row under a foreign sidecar schema: invisible to readers,
        # reaped (and reported) by prune.
        with cache._lock:
            cache._conn.execute(
                "INSERT INTO deps (key, schema, value, updated_at) "
                "VALUES ('old', 9999, '{}', 0)")
        cache.put_pass("p", {"pass": "X"})
    assert main(["cache", "prune", "--max-entries", "10", "--backend", "sqlite",
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "1 dep rows reclaimed" in out
