"""Fixtures for the incremental-verification suite: editable pass packages.

The tests need pass classes whose *source files they may rewrite* — the real
``src/repro/passes`` modules must stay untouched — so each test package is
generated under ``tmp_path``, put on ``sys.path``, and torn down (including
its ``sys.modules`` entries) afterwards.
"""

from __future__ import annotations

import os
import sys
import textwrap
import time
import uuid

import pytest

GOOD_WIDTH = '''
from repro.verify.passes import AnalysisPass


class TempWidth(AnalysisPass):
    """Store the register width."""

    def run(self, circuit):
        self.property_set["width"] = circuit.num_qubits
        return circuit
'''

GOOD_WIDTH_EDITED = '''
from repro.verify.passes import AnalysisPass


class TempWidth(AnalysisPass):
    """Store the register width (including clbits)."""

    def run(self, circuit):
        self.property_set["width"] = circuit.num_qubits + circuit.num_clbits
        return circuit
'''

GOOD_SIZE = '''
from repro.verify.passes import AnalysisPass


class TempSize(AnalysisPass):
    """Store a placeholder size."""

    def run(self, circuit):
        self.property_set["size"] = 0
        return circuit
'''


class TempPassPackage:
    """A throwaway importable package holding editable pass modules."""

    #: Canned module bodies, exposed here so the tests (which cannot
    #: relative-import this conftest) reach them through the fixture.
    GOOD_WIDTH = GOOD_WIDTH
    GOOD_WIDTH_EDITED = GOOD_WIDTH_EDITED
    GOOD_SIZE = GOOD_SIZE

    def __init__(self, root) -> None:
        self.name = f"incrpkg_{uuid.uuid4().hex[:10]}"
        self.root = root
        self.package_dir = os.path.join(str(root), self.name)
        os.makedirs(self.package_dir)
        self.write("__init__.py", "")
        sys.path.insert(0, str(root))

    def write(self, filename: str, body: str) -> str:
        """(Re)write one module file; returns its path.

        The mtime is nudged forward explicitly: two writes within one
        filesystem-timestamp granule would otherwise look identical to a
        stat-based change detector (the sha check would still catch it,
        but the tests should exercise the cheap path too).
        """
        path = os.path.join(self.package_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(textwrap.dedent(body))
        bump = time.time() + getattr(self, "_bumps", 0) + 1
        self._bumps = getattr(self, "_bumps", 0) + 1
        os.utime(path, (bump, bump))
        return path

    def path_of(self, filename: str) -> str:
        return os.path.realpath(os.path.join(self.package_dir, filename))

    def load(self, module: str, attribute: str):
        import importlib

        imported = importlib.import_module(f"{self.name}.{module}")
        return getattr(imported, attribute)

    def cleanup(self) -> None:
        sys.path.remove(str(self.root))
        for name in list(sys.modules):
            if name == self.name or name.startswith(self.name + "."):
                del sys.modules[name]


@pytest.fixture
def pass_package(tmp_path):
    package = TempPassPackage(tmp_path / "pkgroot")
    try:
        yield package
    finally:
        package.cleanup()
