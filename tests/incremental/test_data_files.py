"""Data-file dependencies: device maps and declared data files invalidate."""

import json

import pytest

from repro.coupling.devices import load_device_map
from repro.engine import verify_passes
from repro.engine.fingerprint import data_dependency_digest, pass_fingerprint
from repro.incremental.deps import (
    build_dep_entry,
    class_data_paths,
    identity_key,
    kwarg_data_paths,
)
from repro.incremental.detect import (
    ChangeDetector,
    is_python_source,
    normalize_path,
    partition_changes,
    stale_identities,
)
from repro.passes import ALL_VERIFIED_PASSES


def _write_device(path, num_qubits=5, extra_edge=None):
    edges = [[i, i + 1] for i in range(num_qubits - 1)]
    if extra_edge:
        edges.append(list(extra_edge))
    path.write_text(json.dumps({"num_qubits": num_qubits, "edges": edges}))
    return str(path)


def _coupling_pass():
    from repro.engine.driver import COUPLING_PASSES

    for cls in ALL_VERIFIED_PASSES:
        if cls.__name__ in COUPLING_PASSES:
            return cls
    pytest.skip("no coupling pass in the suite")


def test_load_device_map_records_its_source(tmp_path):
    path = _write_device(tmp_path / "device.json")
    coupling = load_device_map(path)
    assert coupling.num_qubits == 5
    assert coupling.source_path == path
    assert kwarg_data_paths({"coupling": coupling}) == (normalize_path(path),)
    # In-code devices carry no source and contribute nothing.
    from repro.coupling.devices import linear_device

    assert kwarg_data_paths({"coupling": linear_device(5)}) == ()


def test_malformed_device_map_raises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"edges": "nope"}')
    with pytest.raises(ValueError):
        load_device_map(str(bad))


def test_dep_entry_includes_device_file(tmp_path):
    path = _write_device(tmp_path / "device.json")
    cls = _coupling_pass()
    kwargs = {"coupling": load_device_map(path)}
    entry = build_dep_entry(cls, kwargs, "fp")
    assert normalize_path(path) in entry["paths"]
    # Source files are still there too.
    assert any(p.endswith(".py") for p in entry["paths"])


def test_editing_the_device_file_invalidates_exactly_its_config(tmp_path):
    path = _write_device(tmp_path / "device.json")
    cls = _coupling_pass()
    file_backed = identity_key(cls, {"coupling": load_device_map(path)})
    entry = build_dep_entry(cls, {"coupling": load_device_map(path)}, "fp")
    other = ALL_VERIFIED_PASSES[0]
    other_entry = build_dep_entry(other, None, "fp2")
    dep_index = {file_backed: entry, identity_key(other, None): other_entry}

    detector = ChangeDetector([path])
    assert detector.poll() == set()
    _write_device(tmp_path / "device.json", extra_edge=(0, 4))
    changed = detector.poll()
    assert changed == {normalize_path(path)}
    assert stale_identities(dep_index, changed) == {file_backed}


def test_device_edit_changes_the_cache_key_end_to_end(tmp_path):
    """changed_paths=[device file] re-proves under the new topology."""
    device_file = tmp_path / "device.json"
    _write_device(device_file)
    cls = _coupling_pass()
    cache_dir = str(tmp_path / "cache")

    def kwargs_fn(_cls):
        return {"coupling": load_device_map(str(device_file))}

    cold = verify_passes([cls], cache_dir=cache_dir, pass_kwargs_fn=kwargs_fn)
    assert cold.stats.cache_misses == 1

    _write_device(device_file, extra_edge=(0, 4))
    edited = verify_passes([cls], cache_dir=cache_dir, pass_kwargs_fn=kwargs_fn,
                           changed_paths=[str(device_file)])
    assert edited.stats.stale_passes == 1
    # New edge set, new key: the old proof must not be served.
    assert edited.stats.cache_misses == 1


def test_declared_data_dependencies_feed_the_fingerprint(tmp_path):
    data = tmp_path / "table.dat"
    data.write_text("v1")

    class DataPass(ALL_VERIFIED_PASSES[0]):
        data_dependencies = (str(data),)

    assert class_data_paths(DataPass) == (normalize_path(str(data)),)
    first = data_dependency_digest(DataPass)
    key_one = pass_fingerprint(DataPass)
    data.write_text("v2")
    assert data_dependency_digest(DataPass) != first
    assert pass_fingerprint(DataPass) != key_one
    # Missing files hash as absent, not as an error.
    data.unlink()
    assert data_dependency_digest(DataPass)[0][1] == "<missing>"


def test_partition_changes_and_is_python_source(tmp_path):
    py = tmp_path / "m.py"
    py.write_text("")
    dat = tmp_path / "d.json"
    dat.write_text("{}")
    assert is_python_source(str(py)) and not is_python_source(str(dat))
    sources, data = partition_changes([str(py), str(dat)])
    assert sources == {normalize_path(str(py))}
    assert data == {normalize_path(str(dat))}


def test_refresh_source_state_ignores_data_files(tmp_path):
    from repro.incremental.watch import refresh_source_state

    dat = tmp_path / "device.json"
    dat.write_text("{}")
    assert refresh_source_state([str(dat)]) == []


def test_file_backed_qasm_suite(tmp_path):
    from repro.bench.qasmbench import load_qasm_suite, qasmbench_suite

    (tmp_path / "tiny.qasm").write_text(
        'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n')
    (tmp_path / "broken.qasm").write_text("not qasm at all")
    (tmp_path / "ignored.txt").write_text("x")
    suite = load_qasm_suite(str(tmp_path))
    assert [entry.name for entry in suite] == ["tiny"]
    assert suite[0].num_qubits == 2
    assert suite[0].family == "file"
    # qasmbench_suite(directory=...) prefers the files.
    assert [e.name for e in qasmbench_suite(directory=str(tmp_path))] == ["tiny"]
