"""The pluggable solver backends: resolution, parity, graceful z3 skip."""

import json

import pytest

from repro.bench.table2 import pass_kwargs_for
from repro.engine import verify_passes
from repro.passes import ALL_VERIFIED_PASSES, EXTENSION_PASSES
from repro.prover import (
    SOLVER_CHOICES,
    SolverUnavailable,
    available_solvers,
    resolve_solver,
)
from repro.verify import Fact, Subgoal, VerificationSession
from repro.verify import facts as F
from repro.verify.discharge import Discharger
from repro.verify.report import to_json

SUITE = list(ALL_VERIFIED_PASSES) + list(EXTENSION_PASSES)


# --------------------------------------------------------------------------- #
# Resolution
# --------------------------------------------------------------------------- #
def test_auto_resolves_to_builtin():
    assert resolve_solver("auto").name == "builtin"
    assert resolve_solver().name == "builtin"


def test_unknown_backend_is_an_error():
    with pytest.raises(ValueError):
        resolve_solver("vampire")


def test_public_choices_are_registered():
    names = {name for name, _ in available_solvers()}
    assert {"builtin", "bounded", "z3"} <= names
    assert "auto" in SOLVER_CHOICES


def test_z3_resolves_or_fails_gracefully():
    try:
        import z3  # noqa: F401
    except ImportError:
        with pytest.raises(SolverUnavailable):
            resolve_solver("z3")
    else:
        assert resolve_solver("z3").name == "z3"


# --------------------------------------------------------------------------- #
# Discharge-level parity between builtin and bounded
# --------------------------------------------------------------------------- #
def _cx_pair_subgoal(with_same_qubits=True):
    session = VerificationSession()
    session.begin_path(())
    first, second = session.fresh_gate("a"), session.fresh_gate("b")
    facts = [
        (Fact(F.IS_CX, (first.uid,)), True),
        (Fact(F.IS_CX, (second.uid,)), True),
    ]
    if with_same_qubits:
        facts.append((Fact(F.SAME_QUBITS, (first.uid, second.uid)), True))
    return Subgoal(kind="equivalence", description="cx pair",
                   lhs=(first, second), rhs=(), path_facts=tuple(facts))


@pytest.mark.parametrize("solver", ["builtin", "bounded"])
def test_backends_prove_the_cx_cancellation(solver):
    result = Discharger(solver)(_cx_pair_subgoal())
    assert result.proved
    assert result.certificate is not None
    assert result.certificate.backend == solver
    assert any("cancel" in name for name in result.certificate.rules_fired)


@pytest.mark.parametrize("solver", ["builtin", "bounded"])
def test_backends_reject_the_unsupported_cancellation(solver):
    result = Discharger(solver)(_cx_pair_subgoal(with_same_qubits=False))
    assert not result.proved
    # Backend-independent failure format: the report strings must agree.
    assert result.reason.startswith("could not derive ")


# --------------------------------------------------------------------------- #
# Suite-level: byte-identical reports (the acceptance criterion)
# --------------------------------------------------------------------------- #
def test_suite_reports_are_backend_independent(tmp_path):
    """``--solver builtin`` and ``--solver bounded`` render byte-identical
    reports over the whole 47-pass suite.

    Two CLI invocations start from identical symbolic-uid counters, so
    their reports compare byte-for-byte; in-process the counter is global,
    so the test pins it to the same start for each solver run (warm reads
    then carry time 0.0, making the JSON exact).
    """
    import itertools

    from repro.verify import symvalues

    reports = {}
    for solver in ("builtin", "bounded"):
        symvalues._uid_counter = itertools.count()
        cache_dir = str(tmp_path / solver)
        cold = verify_passes(SUITE, cache_dir=cache_dir, solver=solver,
                             pass_kwargs_fn=pass_kwargs_for)
        assert cold.stats.solver == solver
        assert cold.stats.cache_misses == len(SUITE)
        warm = verify_passes(SUITE, cache_dir=cache_dir, solver=solver,
                             pass_kwargs_fn=pass_kwargs_for)
        assert warm.stats.cache_hits == len(SUITE)
        reports[solver] = to_json(warm.results)
    assert reports["builtin"] == reports["bounded"]
    # And every pass actually verified (the comparison is not vacuous).
    payload = json.loads(reports["builtin"])
    assert payload["summary"]["all_verified"] is True
    assert payload["summary"]["total"] == 47


def test_solver_choice_separates_cache_keys(tmp_path):
    """A warm builtin store must not serve a bounded run (methods differ)."""
    cache_dir = str(tmp_path / "shared")
    subset = SUITE[:4]
    verify_passes(subset, cache_dir=cache_dir, solver="builtin",
                  pass_kwargs_fn=pass_kwargs_for)
    report = verify_passes(subset, cache_dir=cache_dir, solver="bounded",
                           pass_kwargs_fn=pass_kwargs_for)
    assert report.stats.cache_misses == len(subset)
    # Incremental probe must not cross solvers either.
    incremental = verify_passes(subset, cache_dir=cache_dir, solver="bounded",
                                pass_kwargs_fn=pass_kwargs_for,
                                changed_paths=[])
    assert incremental.stats.cache_hits == len(subset)
    back = verify_passes(subset, cache_dir=cache_dir, solver="builtin",
                         pass_kwargs_fn=pass_kwargs_for, changed_paths=[])
    assert back.stats.cache_hits == len(subset)
    assert back.stats.cache_misses == 0
