"""The adaptive solver portfolio: tiers, budgets, certificates, parity."""

import json

import pytest

from repro.prover import SolverUnavailable, available_solvers, resolve_solver
from repro.prover.portfolio import (
    PortfolioBackend,
    _syntactically_true,
    portfolio_stats,
    reset_portfolio_counters,
    seed_budgets,
)
from repro.smt.terms import QUBIT, app, eq, lit, ne, var
from repro.verify import Fact, Subgoal, VerificationSession
from repro.verify import facts as F
from repro.verify.discharge import Discharger


def _cx_pair_subgoal(with_same_qubits=True):
    session = VerificationSession()
    session.begin_path(())
    first, second = session.fresh_gate("a"), session.fresh_gate("b")
    facts = [
        (Fact(F.IS_CX, (first.uid,)), True),
        (Fact(F.IS_CX, (second.uid,)), True),
    ]
    if with_same_qubits:
        facts.append((Fact(F.SAME_QUBITS, (first.uid, second.uid)), True))
    return Subgoal(kind="equivalence", description="cx pair",
                   lhs=(first, second), rhs=(), path_facts=tuple(facts))


# --------------------------------------------------------------------------- #
# Resolution and registry hygiene
# --------------------------------------------------------------------------- #
def test_portfolio_resolves_and_is_always_available():
    backend = resolve_solver("portfolio")
    assert backend.name == "portfolio"
    assert backend.available()


def test_internal_tier_backends_are_hidden_from_the_public_list():
    names = {name for name, _ in available_solvers()}
    assert "portfolio" in names
    assert "portfolio-syntactic" not in names
    assert "builtin-object" not in names
    # ...but certificate replay can still resolve the tier by name.
    assert resolve_solver("portfolio-syntactic").name == "portfolio-syntactic"


# --------------------------------------------------------------------------- #
# The syntactic fast path
# --------------------------------------------------------------------------- #
def test_syntactic_tier_recognises_structural_truth():
    x = var("x", QUBIT)
    assert _syntactically_true(eq(x, x))
    assert _syntactically_true(ne(lit(1, QUBIT), lit(2, QUBIT)))
    assert not _syntactically_true(eq(x, var("y", QUBIT)))


def test_trivial_goal_is_proved_without_solving():
    backend = PortfolioBackend()
    x = var("x", QUBIT)
    result = backend.check(eq(x, x), rules=())
    assert result.proved
    assert result.via == "portfolio-syntactic"
    assert backend.escalations.get("proved_syntactic") == 1


# --------------------------------------------------------------------------- #
# Escalation, failure parity, counters
# --------------------------------------------------------------------------- #
def test_portfolio_verdict_and_tier_on_a_real_subgoal():
    result = Discharger("portfolio")(_cx_pair_subgoal())
    assert result.proved
    assert result.certificate is not None
    # The certificate records the proving tier, and replay resolves it.
    assert result.certificate.backend == "builtin"
    assert any("cancel" in name for name in result.certificate.rules_fired)


def test_portfolio_failure_matches_builtin_byte_for_byte():
    import itertools

    from repro.verify import symvalues

    # Pin the symbolic-uid counter so both runs name their gates alike.
    symvalues._uid_counter = itertools.count()
    portfolio = Discharger("portfolio")(_cx_pair_subgoal(with_same_qubits=False))
    symvalues._uid_counter = itertools.count()
    builtin = Discharger("builtin")(_cx_pair_subgoal(with_same_qubits=False))
    assert not portfolio.proved and not builtin.proved
    assert portfolio.reason == builtin.reason
    assert portfolio.reason.startswith("could not derive ")


def test_escalation_counters_accumulate_per_instance_and_process():
    reset_portfolio_counters()
    backend = PortfolioBackend()
    x, y = var("x", QUBIT), var("y", QUBIT)
    backend.check(eq(x, x), rules=())
    backend.check(eq(x, y), rules=())  # unprovable: every tier fails
    assert backend.escalations["proved_syntactic"] == 1
    assert backend.escalations["failed"] == 1
    process = portfolio_stats()
    assert process["proved_syntactic"] >= 1
    assert process["failed"] >= 1
    stats = backend.stats()
    assert stats["escalation_failed"] == 1
    assert isinstance(stats["budgets_ms"], dict)


def test_z3_tier_degrades_gracefully_when_not_installed():
    backend = PortfolioBackend()
    x, y = var("x", QUBIT), var("y", QUBIT)
    result = backend.check(eq(x, y), rules=())
    assert not result.proved
    try:
        import z3  # noqa: F401
    except ImportError:
        assert backend.escalations.get("unavailable_z3", 0) >= 1
    else:
        pytest.skip("z3 installed: the z3 tier runs instead of being skipped")


# --------------------------------------------------------------------------- #
# Budget seeding
# --------------------------------------------------------------------------- #
def test_budgets_seed_from_the_recorded_bench():
    budgets = seed_budgets()
    assert set(budgets) == {"builtin", "bounded", "z3"}
    assert all(value > 0 for value in budgets.values())
    # The recorded suite discharges hundreds of subgoals in well under a
    # second, so even with headroom the per-subgoal budget is tiny.
    assert budgets["builtin"] < 1.0


def test_budgets_fall_back_without_a_recording(tmp_path):
    missing = tmp_path / "nope.json"
    assert seed_budgets(missing) == {"builtin": 0.25, "bounded": 0.25,
                                     "z3": 1.0}
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json", encoding="utf-8")
    assert seed_budgets(corrupt)["builtin"] == 0.25


def test_budget_gate_skips_a_tier_priced_out_of_budget():
    backend = PortfolioBackend(budgets={"builtin": 1.0, "bounded": 0.0,
                                        "z3": 0.0})
    backend._ema["bounded"] = 1.0  # "observed" cost far above the budget
    x, y = var("x", QUBIT), var("y", QUBIT)
    result = backend.check(eq(x, y), rules=())
    assert not result.proved
    assert backend.escalations.get("skipped_bounded") == 1


def test_budget_seed_matches_recorded_numbers():
    from repro.prover.portfolio import _HEADROOM, _RECORDED_BENCH

    with open(_RECORDED_BENCH, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    run = recorded["runs"]["builtin"]
    expected = (run["wall_seconds"] / run["subgoals"]) * _HEADROOM
    assert seed_budgets()["builtin"] == pytest.approx(expected)
