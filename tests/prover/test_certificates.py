"""Proof certificates: payload round-trips, cache tiers, suite-wide replay."""

import pytest

from repro.bench.table2 import pass_kwargs_for
from repro.engine import subgoal_fingerprint, verify_passes
from repro.engine.cache import ProofCache
from repro.passes import ALL_VERIFIED_PASSES, EXTENSION_PASSES
from repro.prover import ProofCertificate, replay_certificate
from repro.service.store import SqliteProofCache
from repro.verify.discharge import Discharger
from repro.verify.verifier import verify_pass

SUITE = list(ALL_VERIFIED_PASSES) + list(EXTENSION_PASSES)


# --------------------------------------------------------------------------- #
# Payload round-trip
# --------------------------------------------------------------------------- #
def test_certificate_payload_round_trips():
    certificate = ProofCertificate(
        proved=True, method="congruence closure", backend="builtin",
        rules_fired=("cancel_h_0",), instantiations=3,
        wall_seconds=0.0125, reason="derived")
    payload = certificate.to_payload()
    assert payload["version"] == 1
    decoded = ProofCertificate.from_payload(payload)
    assert decoded == ProofCertificate(
        proved=True, method="congruence closure", backend="builtin",
        rules_fired=("cancel_h_0",), instantiations=3,
        wall_seconds=0.0125, reason="derived")
    assert ProofCertificate.from_payload({"version": 99}) is None
    assert ProofCertificate.from_payload({}) is None


# --------------------------------------------------------------------------- #
# The cache tiers
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_certificate_tier_persists(tmp_path, backend):
    def open_cache():
        if backend == "jsonl":
            return ProofCache(tmp_path)
        return SqliteProofCache(tmp_path)

    payload = {"version": 1, "proved": True, "method": "identical",
               "backend": None, "rules_fired": [], "instantiations": 0,
               "wall_seconds": 0.0, "reason": ""}
    with open_cache() as cache:
        cache.put_subgoal("sg-key", {"proved": True, "method": "identical",
                                     "reason": "", "rules_used": []})
        cache.put_certificate("sg-key", payload)
        assert cache.get_certificate("sg-key") == payload
    with open_cache() as cache:
        assert cache.get_certificate("sg-key") == payload
        assert cache.certificate_snapshot() == {"sg-key": payload}


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_pruned_subgoals_drop_their_certificates(tmp_path, backend):
    def open_cache():
        if backend == "jsonl":
            return ProofCache(tmp_path)
        return SqliteProofCache(tmp_path)

    payload = {"version": 1, "proved": True, "method": "identical",
               "backend": None, "rules_fired": [], "instantiations": 0,
               "wall_seconds": 0.0, "reason": ""}
    with open_cache() as cache:
        cache.put_subgoal("sg-key", {"proved": True, "method": "identical",
                                     "reason": "", "rules_used": []})
        cache.put_certificate("sg-key", payload)
        cache.prune(0)
        assert cache.get_certificate("sg-key") is None
    with open_cache() as cache:
        assert cache.certificate_snapshot() == {}


def test_engine_records_certificates(tmp_path):
    subset = SUITE[:6]
    with ProofCache(tmp_path) as cache:
        verify_passes(subset, cache=cache, pass_kwargs_fn=pass_kwargs_for)
        certificates = cache.certificate_snapshot()
        assert certificates
        # Every certificate sits next to a live subgoal entry, decodes, and
        # records the backend that proved it.
        for key, payload in certificates.items():
            assert cache.has_subgoal(key)
            decoded = ProofCertificate.from_payload(payload)
            assert decoded is not None
            assert decoded.backend in (None, "builtin")


# --------------------------------------------------------------------------- #
# Replay: the acceptance criterion — every subgoal of the 47-pass suite
# --------------------------------------------------------------------------- #
def test_certificate_replay_reproves_the_whole_suite(tmp_path):
    with ProofCache(tmp_path) as cache:
        verify_passes(SUITE, cache=cache, pass_kwargs_fn=pass_kwargs_for)
        certificates = cache.certificate_snapshot()
    assert certificates

    replayed = {"count": 0}

    def replaying_discharge(subgoal):
        key = subgoal_fingerprint(subgoal, solver="builtin")
        payload = certificates.get(key)
        assert payload is not None, f"no certificate for {subgoal.kind} subgoal"
        certificate = ProofCertificate.from_payload(payload)
        outcome = replay_certificate(subgoal, certificate)
        assert outcome.ok, outcome.reason
        replayed["count"] += 1
        return outcome.result

    for pass_class in SUITE:
        result = verify_pass(
            pass_class, pass_kwargs=pass_kwargs_for(pass_class),
            counterexample_search=False, discharge_fn=replaying_discharge)
        assert result.verified or not result.supported
    assert replayed["count"] > 200  # the suite's full obligation count


def test_replay_detects_a_forged_verdict():
    from repro.verify import Subgoal
    from repro.circuit import Gate

    subgoal = Subgoal(kind="equivalence", description="forged",
                      lhs=(Gate("h", (0,)),), rhs=(Gate("x", (0,)),))
    honest = Discharger("builtin")(subgoal)
    assert not honest.proved
    forged = ProofCertificate(
        proved=True, method=honest.method, backend="builtin",
        rules_fired=(), instantiations=0, wall_seconds=0.0)
    outcome = replay_certificate(subgoal, forged)
    assert not outcome.ok
    assert "verdict changed" in outcome.reason
