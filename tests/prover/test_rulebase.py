"""The indexed rulebase finds exactly what the reference linear scan finds."""

import random

import pytest

from repro.circuit.gate import Gate
from repro.prover.rulebase import RuleBase
from repro.smt.congruence import CongruenceClosure
from repro.smt.ematch import instantiate_rules
from repro.smt.solver import goal_atoms
from repro.smt.terms import CIRCUIT, Rule, app, eq, lit, var
from repro.symbolic.rules import apply_sequence, cancellation_rule_for, gate_term
from repro.verify import Fact, Subgoal, VerificationSession
from repro.verify import facts as F


def _closure_with(terms):
    closure = CongruenceClosure()
    for term in terms:
        closure.add_term(term)
    return closure


def _partitions_agree(left: CongruenceClosure, right: CongruenceClosure,
                      seed_terms):
    """Both closures derive exactly the same equalities over the seeds.

    The *banks* may differ in incidental instantiation intermediates (the
    two enumerations visit matches in different orders, so they materialise
    different ``lhs[sigma]`` terms on the way to the same fixed point); the
    observable contract is the induced equivalence over the caller's terms.
    """
    seeds = []
    for term in seed_terms:
        seeds.extend(term.subterms())
    for i, first in enumerate(seeds):
        for second in seeds[i + 1:]:
            assert left.equal(first, second) == right.equal(first, second), \
                (first, second)


def _run_both(rules, seed_terms, max_rounds=6):
    linear = _closure_with(seed_terms)
    instantiate_rules(list(rules), linear, max_rounds=max_rounds)
    indexed = _closure_with(seed_terms)
    RuleBase(rules).instantiate(indexed, max_rounds=max_rounds)
    _partitions_agree(linear, indexed, seed_terms)
    return linear, indexed


def test_cancellation_chain_matches_linear_scan():
    register = var("Q0", CIRCUIT)
    sequence = []
    for i in range(5):
        gate = gate_term(Gate("h", (i % 2,)))
        sequence += [gate, gate]
    goal = eq(apply_sequence(sequence, register), register)
    rules = [cancellation_rule_for(Gate("h", (i,))) for i in range(16)]
    seeds = [sub for atom in goal_atoms(goal) for sub in atom.subterms()]
    linear, indexed = _run_both(rules, seeds)
    assert linear.equal(*goal.args)
    assert indexed.equal(*goal.args)


def test_variable_and_literal_triggers_match_linear_scan():
    # Triggers without the arg-0 literal discriminator take the plain
    # head-indexed path; semantics must still agree with the scan.
    x = var("X")
    rules = [
        Rule("ff_cancel", app("f", app("f", x)), x),
        Rule("g_rewrite", app("g", x), app("h", x)),
    ]
    nested = app("f", app("f", app("f", app("f", app("g", lit("q"))))))
    _run_both(rules, [nested])


@pytest.mark.parametrize("seed", range(6))
def test_random_rule_banks_match_linear_scan(seed):
    """Property-style: random rule sets over random banks, same fixpoint."""
    rng = random.Random(seed)
    ops = ["f", "g", "h"]
    payloads = [1, 2, 3, "a"]

    def random_term(depth):
        if depth == 0 or rng.random() < 0.3:
            return lit(rng.choice(payloads))
        return app(rng.choice(ops), random_term(depth - 1),
                   sort="Qubit")

    x = var("X")
    rules = []
    for index in range(rng.randint(1, 6)):
        body = random_term(2)
        pattern = app(rng.choice(ops),
                      x if rng.random() < 0.5 else body, sort="Qubit")
        if x in pattern.variables():
            template = x
        else:
            template = random_term(1)
        rules.append(Rule(f"r{index}", pattern, template))
    bank = [random_term(4) for _ in range(8)]
    _run_both(rules, bank)


def test_discharge_collected_rules_match_linear_scan():
    """The real thing: rules collected from a verifier subgoal."""
    from repro.prover.methods.congruence import Encoder, FactBase, collect_rules
    from repro.symbolic.rules import apply_sequence as seq

    session = VerificationSession()
    session.begin_path(())
    first, second, third = (session.fresh_gate(n) for n in "abc")
    facts = [
        (Fact(F.IS_CX, (first.uid,)), True),
        (Fact(F.IS_CX, (second.uid,)), True),
        (Fact(F.SAME_QUBITS, (first.uid, second.uid)), True),
        (Fact(F.COMMUTES, (second.uid, third.uid)), True),
        (Fact(F.NAME_IS, (third.uid, "h")), True),
    ]
    subgoal = Subgoal(kind="equivalence", description="mixed",
                      lhs=(first, third, second), rhs=(third,),
                      path_facts=tuple(facts))
    factbase = FactBase(subgoal)
    encoder = Encoder(factbase)
    elements = list(subgoal.lhs) + list(subgoal.rhs)
    encoder.identify_equal_gates(elements)
    rules = collect_rules(encoder, factbase, elements)
    assert rules  # the comparison must not be vacuous

    register = var("Q0", CIRCUIT)
    goal = eq(seq(encoder.encode_sequence(subgoal.lhs), register),
              seq(encoder.encode_sequence(subgoal.rhs), register))
    seeds = [sub for atom in goal_atoms(goal) for sub in atom.subterms()]
    linear, indexed = _run_both(rules, seeds)
    assert linear.equal(*goal.args) == indexed.equal(*goal.args)


def test_fired_rules_are_reported():
    register = var("Q0", CIRCUIT)
    gate = gate_term(Gate("h", (0,)))
    goal = eq(apply_sequence([gate, gate], register), register)
    rules = [cancellation_rule_for(Gate("h", (0,))),
             cancellation_rule_for(Gate("h", (7,)))]  # the second is idle
    closure = _closure_with(
        [sub for atom in goal_atoms(goal) for sub in atom.subterms()])
    performed, fired = RuleBase(rules).instantiate(closure)
    assert performed >= 1
    assert fired == ("cancel_h_0",)


def test_empty_rule_set_short_circuits():
    closure = _closure_with([lit(1)])
    assert RuleBase([]).instantiate(closure) == (0, ())


def test_fingerprint_is_content_identity():
    rule_a = [cancellation_rule_for(Gate("h", (0,)))]
    rule_b = [cancellation_rule_for(Gate("h", (0,)))]
    rule_c = [cancellation_rule_for(Gate("h", (1,)))]
    assert RuleBase(rule_a).fingerprint() == RuleBase(rule_b).fingerprint()
    assert RuleBase(rule_a).fingerprint() != RuleBase(rule_c).fingerprint()
