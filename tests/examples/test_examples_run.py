"""Every example script must run to completion (they are part of the API docs)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _run(script, *args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart_example():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "verify CXCancellation" in result.stdout
    assert "semantics preserved (dense-matrix oracle): True" in result.stdout


def test_write_and_verify_example():
    result = _run("write_and_verify_a_pass.py")
    assert result.returncode == 0, result.stderr
    assert "HCancellation: verified" in result.stdout
    assert "SloppyHCancellation: REJECTED" in result.stdout


def test_catch_a_buggy_pass_example():
    result = _run("catch_a_buggy_pass.py")
    assert result.returncode == 0, result.stderr
    assert "all three bugs rediscovered and all three fixes verified: True" in result.stdout


def test_route_for_device_example():
    result = _run("route_for_device.py")
    assert result.returncode == 0, result.stderr
    assert "coupling-conformant: True" in result.stdout
    assert "equivalent up to swaps: True" in result.stdout


def test_compile_qasmbench_example_default_and_list():
    result = _run("compile_qasmbench.py", "--family", "ghz_state", "--size", "6")
    assert result.returncode == 0, result.stderr
    assert "overhead" in result.stdout

    listing = _run("compile_qasmbench.py", "--list")
    assert listing.returncode == 0
    assert len(listing.stdout.strip().splitlines()) == 48
