"""Fingerprint stability and invalidation semantics."""

import importlib
import os
import subprocess
import sys
import textwrap

from repro.engine.fingerprint import (
    pass_fingerprint,
    rule_set_fingerprint,
    subgoal_fingerprint,
    toolchain_fingerprint,
)
from repro.passes import CXCancellation, RemoveBarriers
from repro.verify.session import Subgoal
from repro.verify.verifier import verify_pass


def _collect_subgoals(pass_class, pass_kwargs=None):
    """Run the symbolic executor and return every subgoal it emits."""
    goals = []

    def recording_discharge(subgoal):
        goals.append(subgoal)
        from repro.verify.discharge import discharge

        return discharge(subgoal)

    verify_pass(pass_class, pass_kwargs=pass_kwargs,
                counterexample_search=False, discharge_fn=recording_discharge)
    return goals


def test_subgoal_fingerprints_stable_across_reruns():
    # Two independent verifications mint fresh symbolic uids from a global
    # counter; canonicalisation must erase the offset.
    first = [subgoal_fingerprint(g) for g in _collect_subgoals(CXCancellation)]
    second = [subgoal_fingerprint(g) for g in _collect_subgoals(CXCancellation)]
    assert first == second
    assert len(first) > 0


def test_subgoal_fingerprints_distinguish_passes():
    cx = {subgoal_fingerprint(g) for g in _collect_subgoals(CXCancellation)}
    rb = {subgoal_fingerprint(g) for g in _collect_subgoals(RemoveBarriers)}
    assert cx != rb


def test_subgoal_fingerprint_ignores_fact_order():
    from repro.verify.facts import Fact

    facts = (
        (Fact("is_cx", ("g10",)), True),
        (Fact("same_qubits", ("g10", "g11")), True),
        (Fact("is_barrier", ("g12",)), False),
    )
    a = Subgoal(kind="equivalence", description="d", path_facts=facts)
    b = Subgoal(kind="equivalence", description="d", path_facts=facts[::-1])
    assert subgoal_fingerprint(a) == subgoal_fingerprint(b)
    # ... but the fact *content* still matters.
    c = Subgoal(kind="equivalence", description="d", path_facts=facts[:2])
    assert subgoal_fingerprint(a) != subgoal_fingerprint(c)


def test_subgoal_fingerprint_ignores_order_of_same_shape_facts():
    # Two facts with identical predicate shapes over *different* lhs gates:
    # the sort must key on the gates' canonical (lhs-position) names, not
    # on the order the facts were recorded.
    from repro.verify.facts import Fact
    from repro.verify.symvalues import SymGate

    g10, g12 = SymGate(None, uid="g10"), SymGate(None, uid="g12")
    facts = ((Fact("is_cx", ("g10",)), True), (Fact("is_cx", ("g12",)), True))
    a = Subgoal(kind="equivalence", description="d", lhs=(g10, g12), path_facts=facts)
    b = Subgoal(kind="equivalence", description="d", lhs=(g10, g12),
                path_facts=facts[::-1])
    assert subgoal_fingerprint(a) == subgoal_fingerprint(b)
    # Facts attached to different gates stay distinguishable.
    c = Subgoal(kind="equivalence", description="d", lhs=(g10, g12),
                path_facts=((Fact("is_cx", ("g10",)), True),
                            (Fact("is_cx", ("g10",)), True)))
    assert subgoal_fingerprint(a) != subgoal_fingerprint(c)


def test_subgoal_fingerprint_ignores_description():
    a = Subgoal(kind="equivalence", description="one wording", lhs=(), rhs=())
    b = Subgoal(kind="equivalence", description="another wording", lhs=(), rhs=())
    assert subgoal_fingerprint(a) == subgoal_fingerprint(b)


def test_pass_fingerprint_depends_on_kwargs():
    from repro.coupling.devices import linear_device

    base = pass_fingerprint(CXCancellation)
    assert base == pass_fingerprint(CXCancellation)
    from repro.passes import BasicSwap

    small = pass_fingerprint(BasicSwap, {"coupling": linear_device(3)})
    large = pass_fingerprint(BasicSwap, {"coupling": linear_device(5)})
    assert small != large


def test_pass_fingerprint_uncacheable_for_dynamic_classes():
    namespace = {}
    exec("class Dynamic:\n    def run(self, c):\n        return c\n", namespace)
    assert pass_fingerprint(namespace["Dynamic"]) is None


def test_editing_pass_source_invalidates(tmp_path):
    module_dir = tmp_path / "fp_mod"
    module_dir.mkdir()
    module_file = module_dir / "edited_pass_module.py"
    template = textwrap.dedent(
        """
        class EditedPass:
            pass_type = "general"

            def run(self, circuit):
                return {body}
        """
    )
    module_file.write_text(template.format(body="circuit"))
    sys.path.insert(0, str(module_dir))
    try:
        module = importlib.import_module("edited_pass_module")
        before = pass_fingerprint(module.EditedPass)
        module_file.write_text(template.format(body="circuit.copy()"))
        os.utime(module_file)  # make sure the stamp moves even on coarse clocks
        importlib.reload(module)
        after = pass_fingerprint(module.EditedPass)
    finally:
        sys.path.remove(str(module_dir))
        sys.modules.pop("edited_pass_module", None)
    assert before is not None and after is not None
    assert before != after


def test_fingerprints_stable_across_processes():
    code = textwrap.dedent(
        """
        from repro.engine.fingerprint import pass_fingerprint, toolchain_fingerprint
        from repro.passes import CXCancellation
        print(toolchain_fingerprint())
        print(pass_fingerprint(CXCancellation))
        """
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env, check=True
    ).stdout.split()
    assert output[0] == toolchain_fingerprint()
    assert output[1] == pass_fingerprint(CXCancellation)


def test_rule_set_fingerprint_changes_with_rules(monkeypatch):
    before = rule_set_fingerprint()
    import repro.engine.fingerprint as fp
    import repro.symbolic.rules as rules_module

    original = rules_module.default_circuit_rules

    def smaller_rule_set():
        return original()[:-1]

    monkeypatch.setattr(rules_module, "default_circuit_rules", smaller_rule_set)
    monkeypatch.setattr(fp, "_rule_set_memo", None)
    monkeypatch.setattr(fp, "_toolchain_memo", None)
    after = rule_set_fingerprint()
    assert before != after
    # And the toolchain (hence every cache key) moves with it.
    assert toolchain_fingerprint() != before
