"""Per-run cache-stats accounting and EngineStats.merge algebra.

Regression guards for the PR 2 accounting fix: a long-lived (caller-provided)
cache accumulates counters across runs, but each ``verify_passes`` call must
report only what *it* contributed — hits, misses, and invalidations must not
leak from one run's stats block into the next.
"""

import pytest

from repro.engine.cache import ProofCache
from repro.engine.driver import EngineStats, verify_passes
from repro.engine.fingerprint import pass_fingerprint, toolchain_fingerprint
from repro.passes import CXCancellation, Depth, Width
from repro.service.store import SqliteProofCache


def _open(backend, directory, fingerprint=None):
    if backend == "jsonl":
        return ProofCache(directory, active_fingerprint=fingerprint)
    return SqliteProofCache(directory, active_fingerprint=fingerprint)


# --------------------------------------------------------------------------- #
# Invalidation / hit / miss counters reset between runs
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_per_run_stats_reset_on_long_lived_cache(tmp_path, backend):
    # Seed the store with an entry proved under an older toolchain.
    key = pass_fingerprint(Depth)
    with _open(backend, tmp_path, fingerprint="stale-toolchain") as old:
        old.put_pass(key, {"bogus": True})

    with _open(backend, tmp_path) as cache:
        first = verify_passes([Depth], cache=cache).stats
        # The sqlite tier discovers staleness lazily (at get time), the
        # JSONL tier eagerly (at load time, before the run) — either way a
        # run never re-reports invalidations it did not itself observe.
        expected_first = 1 if backend == "sqlite" else 0
        assert first.invalidated == expected_first
        assert first.cache_misses == 1
        assert first.cache_hits == 0

        second = verify_passes([Depth], cache=cache).stats
        assert second.invalidated == 0          # must not leak from run 1
        assert second.cache_hits == 1
        assert second.cache_misses == 0

        third = verify_passes([Depth, Width], cache=cache).stats
        assert third.invalidated == 0
        assert third.cache_hits == 1            # Depth warm
        assert third.cache_misses == 1          # Width cold


def test_own_jsonl_cache_reports_load_time_invalidations(tmp_path):
    key = pass_fingerprint(Depth)
    with ProofCache(tmp_path, active_fingerprint="stale-toolchain") as old:
        old.put_pass(key, {"bogus": True})
    # The engine opens (and therefore loads) the cache itself: the stale
    # entry it drops on load belongs to this run's report.
    stats = verify_passes([Depth], cache_dir=tmp_path).stats
    assert stats.invalidated == 1
    assert stats.cache_misses == 1


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_incremental_runs_share_the_same_accounting(tmp_path, backend):
    with _open(backend, tmp_path) as cache:
        verify_passes([Depth, Width], cache=cache)
        quiet = verify_passes([Depth, Width], cache=cache,
                              changed_paths=[]).stats
        assert quiet.cache_hits == 2
        assert quiet.cache_misses == 0
        assert quiet.invalidated == 0
        assert quiet.stale_passes == 0
        again = verify_passes([Depth, Width], cache=cache,
                              changed_paths=[]).stats
        assert again.cache_hits == 2            # not 4: per-run, not cumulative
        assert again.stale_passes == 0


# --------------------------------------------------------------------------- #
# EngineStats.merge algebra
# --------------------------------------------------------------------------- #
def _clone(stats: EngineStats) -> EngineStats:
    return EngineStats.from_dict(stats.to_dict())


def _merge(a: EngineStats, b: EngineStats) -> EngineStats:
    return _clone(a).merge(_clone(b))


MIXED_BATCHES = [
    EngineStats(jobs=1, passes_total=10, cache_hits=10, cache_misses=0,
                subgoal_hits=3, wall_seconds=0.25),
    EngineStats(jobs=4, used_processes=True, passes_total=5, cache_hits=1,
                cache_misses=4, subgoal_misses=7, invalidated=2,
                wall_seconds=1.5),
    EngineStats(jobs=2, passes_total=3, cache_hits=0, cache_misses=3,
                subgoal_hits=1, subgoal_misses=2, wall_seconds=0.5,
                stale_passes=3),
    EngineStats(jobs=1, passes_total=0, wall_seconds=0.0),
    EngineStats(jobs=8, passes_total=47, cache_hits=40, cache_misses=7,
                invalidated=1, wall_seconds=2.0, stale_passes=7),
]


def test_merge_is_associative_on_mixed_batches():
    for i, a in enumerate(MIXED_BATCHES):
        for j, b in enumerate(MIXED_BATCHES):
            for k, c in enumerate(MIXED_BATCHES):
                left = _merge(_merge(a, b), c)
                right = _merge(a, _merge(b, c))
                assert left.to_dict() == right.to_dict(), (i, j, k)


def test_merge_totals_on_a_mixed_hit_miss_chain():
    total = MIXED_BATCHES[0]
    for other in MIXED_BATCHES[1:]:
        total = _merge(total, other)
    assert total.passes_total == sum(s.passes_total for s in MIXED_BATCHES)
    assert total.cache_hits == sum(s.cache_hits for s in MIXED_BATCHES)
    assert total.cache_misses == sum(s.cache_misses for s in MIXED_BATCHES)
    assert total.invalidated == sum(s.invalidated for s in MIXED_BATCHES)
    # None is the identity for stale_passes, not zero:
    assert total.stale_passes == 10
    assert total.jobs == 8
    assert total.used_processes is True


def test_merge_none_stale_is_identity():
    full = EngineStats(passes_total=2, stale_passes=None)
    incr = EngineStats(passes_total=1, stale_passes=0)
    assert _merge(full, full).stale_passes is None
    assert _merge(full, incr).stale_passes == 0
    assert _merge(incr, full).stale_passes == 0


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_evicted_proof_with_fresh_deps_counts_one_miss(tmp_path, backend):
    """Incremental probe + re-derived identical key must not double-count."""
    with _open(backend, tmp_path) as cache:
        verify_passes([Depth, Width], cache=cache)
        cache.prune(0)                          # evict every proof, keep deps
        stats = verify_passes([Depth, Width], cache=cache,
                              changed_paths=[]).stats
        assert stats.stale_passes == 2          # probes missed -> full path
        assert stats.cache_misses == 2          # one miss per pass, not two
        assert stats.cache_hits == 0
        assert stats.cache_hits + stats.cache_misses == stats.passes_total
