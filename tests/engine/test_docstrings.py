"""Execute the doctests embedded in the invariant-bearing module docstrings.

``docs/caching.md`` references the key-derivation invariants documented in
:mod:`repro.engine.fingerprint` and the wire-format invariants in
:mod:`repro.service.protocol`; these tests keep the examples in those
docstrings executable so the documentation cannot silently rot.
"""

import doctest

from repro.engine import fingerprint
from repro.service import protocol


def test_fingerprint_canonicalisation_doctest():
    results = doctest.testmod(fingerprint, verbose=False)
    assert results.attempted > 0, "fingerprint docstring lost its examples"
    assert results.failed == 0


def test_protocol_wire_format_doctest():
    results = doctest.testmod(protocol, verbose=False)
    assert results.attempted > 0, "protocol docstring lost its examples"
    assert results.failed == 0
