"""Subgoal sharding: merged shard payloads equal the unsplit proof."""

import pytest

from repro.engine.driver import (
    _verify_one,
    default_pass_kwargs,
    merge_shard_payloads,
    result_to_payload,
    verify_pass_shard,
)
from repro.engine.fingerprint import unit_fingerprint
from repro.passes import ALL_VERIFIED_PASSES, UNSUPPORTED_PASSES


def _multi_subgoal_pass():
    """A pass with enough structure for a meaningful split."""
    for cls in ALL_VERIFIED_PASSES:
        kwargs = default_pass_kwargs(cls)
        result, *_ = _verify_one(cls, kwargs, True, {})
        if result.num_subgoals >= 3 and result.paths_explored >= 2:
            return cls, kwargs, result
    pytest.skip("no multi-subgoal pass in the suite")


@pytest.mark.parametrize("shard_count", [2, 3])
def test_merged_shards_equal_unsplit_proof(shard_count):
    cls, kwargs, unsplit_result = _multi_subgoal_pass()
    unsplit = result_to_payload(unsplit_result)
    shards = []
    for shard_index in range(shard_count):
        payload, _acct = verify_pass_shard(
            cls, kwargs, shard_index, shard_count, {})
        assert payload["shard_index"] == shard_index
        assert payload["subgoal_count"] == unsplit_result.num_subgoals
        # Every shard owns its stripe and nothing else.
        owned = [outcome["index"] for outcome in payload["outcomes"]]
        assert owned == [i for i in range(payload["subgoal_count"])
                         if i % shard_count == shard_index]
        shards.append(payload)
    merged = merge_shard_payloads(shards)
    for field in ("pass", "verified", "supported", "paths_explored",
                  "failure_reasons", "analysis", "subgoals", "counterexample"):
        assert merged[field] == unsplit[field], field


def test_merge_rejects_incomplete_shard_sets():
    cls, kwargs, _ = _multi_subgoal_pass()
    payload, *_ = verify_pass_shard(cls, kwargs, 0, 2, {})
    with pytest.raises(ValueError):
        merge_shard_payloads([payload])
    with pytest.raises(ValueError):
        merge_shard_payloads([])


def test_shard_of_unsupported_pass_merges_to_unsupported():
    cls = UNSUPPORTED_PASSES[0]
    unsplit_result, *_ = _verify_one(cls, None, False, {})
    shards = [verify_pass_shard(cls, None, i, 2, {})[0] for i in range(2)]
    merged = merge_shard_payloads(shards)
    assert merged["supported"] is False
    assert merged["verified"] is False
    assert merged["failure_reasons"] == list(unsplit_result.failure_reasons)
    assert merged["subgoals"] == []


def test_shard_feeds_the_subgoal_cache_like_the_whole_pass():
    cls, kwargs, _ = _multi_subgoal_pass()
    table = {}
    _, acct = verify_pass_shard(cls, kwargs, 0, 2, table)
    assert acct.misses == len(acct.new_subgoals) > 0
    # A second identical shard run is served from the shared table.
    _, second = verify_pass_shard(cls, kwargs, 0, 2, table)
    assert second.misses == 0
    assert second.hits == acct.hits + acct.misses
    assert not second.new_subgoals
    assert set(second.hit_keys) == set(table)


def test_unit_fingerprint_is_deterministic_and_distinct():
    assert unit_fingerprint("k", 0, 2) == unit_fingerprint("k", 0, 2)
    assert unit_fingerprint("k", 0, 2) != unit_fingerprint("k", 1, 2)
    assert unit_fingerprint("k", 0, 2) != unit_fingerprint("k", 0, 3)
    assert unit_fingerprint("k", 0, 1) == "k"
