"""Solver contexts and rule sets must survive pickling (worker hand-off)."""

import pickle

from repro.smt.solver import Context
from repro.smt.terms import CIRCUIT, Rule, app, eq, lit, var


def _sample_rule() -> Rule:
    register = var("Q", CIRCUIT)
    gate = lit(("symgate", "g0"), "Gate")
    return Rule(
        "cancel_sample",
        app("apply", gate, app("apply", gate, register, sort=CIRCUIT), sort=CIRCUIT),
        register,
    )


def test_term_pickle_reinterns_to_identity():
    term = app("apply", lit(1), var("Q", CIRCUIT), sort=CIRCUIT)
    clone = pickle.loads(pickle.dumps(term))
    # Hash-consing: the unpickled term must be the *same* interned object,
    # otherwise identity-based equality breaks congruence closure.
    assert clone is term


def test_rule_pickle_round_trip():
    rule = _sample_rule()
    clone = pickle.loads(pickle.dumps(rule))
    assert clone.name == rule.name
    assert clone.lhs is rule.lhs
    assert clone.rhs is rule.rhs
    assert clone.triggers == rule.triggers


def test_context_constructible_from_pickled_rule_set():
    rules = [_sample_rule()]
    restored = pickle.loads(pickle.dumps(rules))
    context = Context(rules=restored, max_rounds=4)
    register = var("Q0", CIRCUIT)
    gate = lit(("symgate", "g0"), "Gate")
    goal = eq(
        app("apply", gate, app("apply", gate, register, sort=CIRCUIT), sort=CIRCUIT),
        register,
    )
    assert context.check(goal).proved


def test_pickled_context_still_checks():
    context = Context(rules=[_sample_rule()])
    context.assume(eq(lit("a"), lit("b")))
    clone = pickle.loads(pickle.dumps(context))
    assert clone.check(eq(lit("a"), lit("b"))).proved
    assert len(clone.rules) == 1
