"""Proof-cache persistence, hit/miss accounting, and invalidation."""

import json

from repro.engine.cache import ProofCache, default_cache_dir
from repro.engine.fingerprint import toolchain_fingerprint


def test_in_memory_cache_round_trip():
    cache = ProofCache(None)
    assert cache.get_pass("k") is None
    cache.put_pass("k", {"verified": True})
    assert cache.get_pass("k") == {"verified": True}
    assert cache.stats.pass_hits == 1
    assert cache.stats.pass_misses == 1
    assert cache.path is None


def test_persistence_across_instances(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_pass("pk", {"verified": True})
        cache.put_subgoal("sk", {"proved": True, "method": "identical",
                                 "reason": "", "rules_used": []})
    reopened = ProofCache(tmp_path)
    assert reopened.get_pass("pk") == {"verified": True}
    assert reopened.get_subgoal("sk")["proved"] is True
    assert len(reopened) == 2
    reopened.close()


def test_last_write_wins_and_compaction(tmp_path):
    with ProofCache(tmp_path) as cache:
        for round_number in range(5):
            cache.put_pass("pk", {"round": round_number})
    cache = ProofCache(tmp_path)
    assert cache.get_pass("pk") == {"round": 4}
    cache.compact()
    cache.close()
    lines = (tmp_path / "proofs.jsonl").read_text().strip().splitlines()
    assert len(lines) == 1


def test_entries_from_other_toolchains_are_invalidated(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_pass("current", {"verified": True})
    # Hand-write an entry stamped with a different rule-set fingerprint,
    # simulating a cache produced by an older prover.
    stale = {"kind": "pass", "key": "stale", "fp": "0" * 64, "value": {"verified": False}}
    with open(tmp_path / "proofs.jsonl", "a", encoding="utf-8") as handle:
        handle.write(json.dumps(stale) + "\n")
    reopened = ProofCache(tmp_path)
    assert reopened.get_pass("stale") is None
    assert reopened.get_pass("current") is not None
    assert reopened.stats.invalidated == 1
    assert reopened.active_fingerprint == toolchain_fingerprint()
    reopened.close()


def test_corrupt_lines_are_skipped(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_pass("good", {"verified": True})
    with open(tmp_path / "proofs.jsonl", "a", encoding="utf-8") as handle:
        handle.write("this is not json\n")
        handle.write('{"kind": "pass", "missing": "fields"}\n')
    reopened = ProofCache(tmp_path)
    assert reopened.get_pass("good") == {"verified": True}
    assert reopened.stats.corrupt_lines == 2
    reopened.close()


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"
