"""Proof-cache persistence, hit/miss accounting, invalidation, and eviction."""

import json

import pytest

from repro.engine.cache import ProofCache, default_cache_dir, open_proof_cache
from repro.engine.fingerprint import toolchain_fingerprint


def test_in_memory_cache_round_trip():
    cache = ProofCache(None)
    assert cache.get_pass("k") is None
    cache.put_pass("k", {"verified": True})
    assert cache.get_pass("k") == {"verified": True}
    assert cache.stats.pass_hits == 1
    assert cache.stats.pass_misses == 1
    assert cache.path is None


def test_persistence_across_instances(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_pass("pk", {"verified": True})
        cache.put_subgoal("sk", {"proved": True, "method": "identical",
                                 "reason": "", "rules_used": []})
    reopened = ProofCache(tmp_path)
    assert reopened.get_pass("pk") == {"verified": True}
    assert reopened.get_subgoal("sk")["proved"] is True
    assert len(reopened) == 2
    reopened.close()


def test_last_write_wins_and_compaction(tmp_path):
    with ProofCache(tmp_path) as cache:
        for round_number in range(5):
            cache.put_pass("pk", {"round": round_number})
    cache = ProofCache(tmp_path)
    assert cache.get_pass("pk") == {"round": 4}
    cache.compact()
    cache.close()
    lines = (tmp_path / "proofs.jsonl").read_text().strip().splitlines()
    assert len(lines) == 1


def test_entries_from_other_toolchains_are_invalidated(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_pass("current", {"verified": True})
    # Hand-write an entry stamped with a different rule-set fingerprint,
    # simulating a cache produced by an older prover.
    stale = {"kind": "pass", "key": "stale", "fp": "0" * 64, "value": {"verified": False}}
    with open(tmp_path / "proofs.jsonl", "a", encoding="utf-8") as handle:
        handle.write(json.dumps(stale) + "\n")
    reopened = ProofCache(tmp_path)
    assert reopened.get_pass("stale") is None
    assert reopened.get_pass("current") is not None
    assert reopened.stats.invalidated == 1
    assert reopened.active_fingerprint == toolchain_fingerprint()
    reopened.close()


def test_corrupt_lines_are_skipped(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_pass("good", {"verified": True})
    with open(tmp_path / "proofs.jsonl", "a", encoding="utf-8") as handle:
        handle.write("this is not json\n")
        handle.write('{"kind": "pass", "missing": "fields"}\n')
    reopened = ProofCache(tmp_path)
    assert reopened.get_pass("good") == {"verified": True}
    assert reopened.stats.corrupt_lines == 2
    reopened.close()


def test_prune_is_least_recently_used(tmp_path):
    with ProofCache(tmp_path) as cache:
        for index in range(5):
            cache.put_pass(f"p{index}", {"index": index})
        cache.get_pass("p0")              # refresh: p1 becomes the victim
        assert cache.prune(3) == 2
        assert cache.stats.evicted == 2
        assert cache.get_pass("p0") is not None
        assert cache.get_pass("p4") is not None
        assert cache.get_pass("p1") is None
    # Eviction is durable: the compacted file carries only the survivors.
    reopened = ProofCache(tmp_path)
    assert len(reopened) == 3
    reopened.close()


def test_prune_recency_survives_reopen(tmp_path):
    """Reads reorder recency in memory; close() must persist that order —
    otherwise a later prune would evict by creation order, not by use."""
    with ProofCache(tmp_path) as cache:
        cache.put_pass("old", {"n": 0})
        cache.put_pass("new", {"n": 1})
    with ProofCache(tmp_path) as cache:
        cache.get_pass("old")             # most recently used, despite age
    with ProofCache(tmp_path) as cache:
        assert cache.prune(1) == 1
        assert cache.get_pass("old") is not None
        assert cache.get_pass("new") is None


def test_warm_reads_append_touch_records_without_rewriting(tmp_path):
    """Recency must be durable *and* cheap: a warm run appends small touch
    records (at most twice per key — once at first hit, once at close when
    the hit total advanced) instead of rewriting the file, so concurrent
    appenders are never clobbered by a read-mostly client's close."""
    with ProofCache(tmp_path) as cache:
        cache.put_pass("a", {"n": 0})
        cache.put_pass("b", {"n": 1})
    before = (tmp_path / "proofs.jsonl").read_text()
    with ProofCache(tmp_path) as cache:
        cache.get_pass("a")
        cache.get_pass("a")       # second hit: no record until close
        cache.flush()
        mid = (tmp_path / "proofs.jsonl").read_text()
        assert len(mid[len(before):].strip().splitlines()) == 1
    after = (tmp_path / "proofs.jsonl").read_text()
    assert after.startswith(before)       # append-only, original lines intact
    added = [json.loads(line) for line in
             after[len(before):].strip().splitlines()]
    # First hit journals recency immediately; close flushes the advanced
    # hit total as one more record (absolute count, last write wins).
    assert added == [
        {"kind": "touch", "key": "a", "ref": "pass", "hits": 1},
        {"kind": "touch", "key": "a", "ref": "pass", "hits": 2},
    ]
    with ProofCache(tmp_path) as cache:
        assert cache.hit_count("pass", "a") == 2
        assert cache.hit_count("pass", "b") == 0


def test_touch_subgoals_refreshes_snapshot_served_entries(tmp_path):
    """The engine reads subgoals via subgoal_snapshot(); the driver reports
    reused keys back so the hot subgoal tier never looks idle to LRU."""
    subgoal = {"proved": True, "method": "m", "reason": "", "rules_used": []}
    with ProofCache(tmp_path) as cache:
        cache.put_subgoal("hot", subgoal)
        cache.put_pass("p1", {"verified": True})
        cache.put_pass("p2", {"verified": True})
        cache.touch_subgoals(["hot", "unknown-key"])    # unknown keys ignored
        assert cache.prune(1) == 2
        assert cache.has_subgoal("hot")


def test_prune_counts_both_tables(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_pass("p", {"verified": True})
        cache.put_subgoal("s1", {"proved": True, "method": "m",
                                 "reason": "", "rules_used": []})
        cache.put_subgoal("s2", {"proved": True, "method": "m",
                                 "reason": "", "rules_used": []})
        assert cache.prune(2) == 1
        assert cache.get_pass("p") is None    # oldest entry went first
        assert cache.has_subgoal("s1") and cache.has_subgoal("s2")


def test_prune_in_memory_cache(tmp_path):
    cache = ProofCache(None)
    cache.put_pass("a", {})
    cache.put_pass("b", {})
    assert cache.prune(1) == 1
    assert cache.get_pass("b") is not None


def test_open_proof_cache_backends(tmp_path):
    from repro.service.store import SqliteProofCache

    with open_proof_cache(tmp_path / "j", "jsonl") as cache:
        assert isinstance(cache, ProofCache)
        assert cache.backend == "jsonl"
    with open_proof_cache(tmp_path / "s", "sqlite") as cache:
        assert isinstance(cache, SqliteProofCache)
        assert cache.backend == "sqlite"
    with pytest.raises(ValueError):
        open_proof_cache(tmp_path, "redis")


def test_invalidated_is_per_run_not_cumulative(tmp_path):
    """A long-lived caller-provided cache (the daemon's) must not re-report
    old invalidations on every run's stats."""
    from repro.engine import verify_passes
    from repro.passes import Width

    stale = {"kind": "pass", "key": "stale", "fp": "0" * 64, "value": {}}
    (tmp_path / "proofs.jsonl").write_text(json.dumps(stale) + "\n")
    # Own-cache run: the load-time invalidation belongs to this run.
    report = verify_passes([Width], cache_dir=str(tmp_path))
    assert report.stats.invalidated == 1
    # Long-lived cache: the invalidation was counted when the cache loaded,
    # before this run — the run itself invalidated nothing.
    with ProofCache(tmp_path) as cache:
        assert cache.stats.invalidated == 1
        report = verify_passes([Width], cache=cache)
        assert report.stats.invalidated == 0


def test_batch_distinct_configs_defers_repeats():
    from repro.engine import batch_distinct_configs

    class A:
        pass

    class B:
        pass

    pairs = [(A, {"n": 1}), (B, None), (A, {"n": 2})]
    batches = list(batch_distinct_configs(pairs))
    assert [[index for index, _, _ in batch] for batch in batches] == [[0, 1], [2]]
    assert batches[0][0][2] == {"n": 1}
    assert batches[1][0][2] == {"n": 2}


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"


def test_hit_counts_survive_compaction(tmp_path):
    """Compaction folds the touch journal's totals into the entry records;
    the counter must read the same before and after the rewrite."""
    with ProofCache(tmp_path) as cache:
        cache.put_pass("a", {"n": 0})
    with ProofCache(tmp_path) as cache:
        for _ in range(3):
            cache.get_pass("a")
    with ProofCache(tmp_path) as cache:
        assert cache.hit_count("pass", "a") == 3
        cache.compact()
        assert cache.hit_count("pass", "a") == 3
    with ProofCache(tmp_path) as cache:
        assert cache.hit_count("pass", "a") == 3
        assert cache.accumulated_hits() == 3


def test_prune_reports_reclaimed_bytes_and_journals_evictions(tmp_path):
    from repro.telemetry.stats import load_evictions

    with ProofCache(tmp_path) as cache:
        for index in range(4):
            cache.put_pass(f"p{index}", {"payload": "x" * 50, "i": index})
        evicted = cache.prune(2)
        assert evicted == 2
        assert cache.stats.proof_bytes_reclaimed > 100   # two fat entries
        journaled = load_evictions(tmp_path)
        assert {entry["key"] for entry in journaled} == {"p0", "p1"}
        assert all(entry["tier"] == "pass" for entry in journaled)


def test_gc_deps_reports_reclaimed_bytes(tmp_path):
    with ProofCache(tmp_path) as cache:
        cache.put_deps("cfg-old", {"files": {"src/a.py": "h1"}})
        cache.put_deps("cfg-live", {"files": {"src/b.py": "h2"}})
        removed = cache.gc_deps({"cfg-live"})
        assert removed == 1
        assert cache.stats.dep_bytes_reclaimed > 0
