"""The batch driver: cache behaviour, parallel parity, scheduler fallback."""

import pickle

import pytest

from repro.engine import ProofCache, WorkerPool, parallel_map, verify_passes
from repro.engine.driver import payload_to_result, result_to_payload
from repro.passes import (
    BuggyOptimize1qGates,
    CXCancellation,
    Depth,
    RemoveBarriers,
    SwapCancellation,
    Width,
)
from repro.verify.verifier import verify_pass

SMALL_SUITE = [CXCancellation, Width, RemoveBarriers, Depth, SwapCancellation]


def _summary(result):
    return (
        result.pass_name,
        result.verified,
        result.supported,
        result.num_subgoals,
        result.paths_explored,
        tuple(result.failure_reasons),
    )


def test_cold_run_is_all_misses_then_warm_run_all_hits(tmp_path):
    cold = verify_passes(SMALL_SUITE, jobs=1, cache_dir=tmp_path)
    assert cold.stats.cache_hits == 0
    assert cold.stats.cache_misses == len(SMALL_SUITE)
    warm = verify_passes(SMALL_SUITE, jobs=1, cache_dir=tmp_path)
    assert warm.stats.cache_hits == len(SMALL_SUITE)
    assert warm.stats.cache_misses == 0
    assert [_summary(r) for r in cold.results] == [_summary(r) for r in warm.results]
    assert all(result.from_cache for result in warm.results)
    assert not any(result.from_cache for result in cold.results)


def test_cached_results_match_direct_verification(tmp_path):
    verify_passes(SMALL_SUITE, jobs=1, cache_dir=tmp_path)
    warm = verify_passes(SMALL_SUITE, jobs=1, cache_dir=tmp_path)
    for pass_class, cached in zip(SMALL_SUITE, warm.results):
        direct = verify_pass(pass_class)
        assert _summary(cached) == _summary(direct)
        # Rule names embed per-run symbolic uids; the *shape* of the rule
        # usage (count and families) must survive the cache round trip.
        strip = lambda name: name.rstrip("0123456789_g")  # noqa: E731
        assert sorted(map(strip, cached.rules_used)) == sorted(map(strip, direct.rules_used))
        if direct.analysis is not None:
            assert cached.analysis.lines_of_code == direct.analysis.lines_of_code
            assert cached.analysis.templates_used == direct.analysis.templates_used


def test_jobs_parity_sequential_vs_parallel():
    sequential = verify_passes(SMALL_SUITE, jobs=1, use_cache=False)
    parallel = verify_passes(SMALL_SUITE, jobs=4, use_cache=False)
    assert [_summary(r) for r in sequential.results] == [
        _summary(r) for r in parallel.results
    ]
    assert sequential.stats.jobs == 1
    assert parallel.stats.jobs == 4


def test_failing_pass_round_trips_through_cache(tmp_path):
    cold = verify_passes([BuggyOptimize1qGates], jobs=1, cache_dir=tmp_path)
    warm = verify_passes([BuggyOptimize1qGates], jobs=1, cache_dir=tmp_path)
    assert warm.stats.cache_hits == 1
    for report in (cold, warm):
        (result,) = report.results
        assert result.supported and not result.verified
        assert result.failure_reasons
    cold_ce, warm_ce = cold.results[0].counterexample, warm.results[0].counterexample
    if cold_ce is not None:
        assert warm_ce is not None
        assert warm_ce.kind == cold_ce.kind
        assert warm_ce.confirmed == cold_ce.confirmed


def test_result_payload_round_trip():
    result = verify_pass(CXCancellation)
    rebuilt = payload_to_result(result_to_payload(result))
    assert _summary(rebuilt) == _summary(result)
    assert rebuilt.summary().split("(")[0] == result.summary().split("(")[0]


def test_subgoal_reuse_across_related_passes(tmp_path):
    # A cache primed by one pass lets a *different* (never-cached) pass
    # reuse the subgoals they share — here the analysis passes, whose
    # "circuit unchanged" obligation is canonically identical.
    cache = ProofCache(tmp_path)
    verify_passes([Width], jobs=1, cache=cache)
    report = verify_passes([Depth], jobs=1, cache=cache)
    assert report.stats.cache_hits == 0  # different pass: no whole-pass hit
    assert report.stats.subgoal_hits > 0
    cache.close()


def test_subgoal_memoisation_within_verify_one():
    from repro.engine.driver import _verify_one

    table = {}
    _, acct = _verify_one(CXCancellation, None, False, table)
    assert acct.misses == len(acct.new_subgoals) > 0
    assert acct.hit_keys == []
    # Every freshly proved subgoal carries a certificate payload.
    assert sorted(acct.new_certificates) == sorted(acct.new_subgoals)
    # Re-verifying the same pass against the warm table discharges every
    # subgoal from memory (this is what a changed-but-similar pass hits).
    _, second = _verify_one(CXCancellation, None, False, table)
    assert second.misses == 0
    assert second.new_subgoals == {}
    assert second.hits == acct.hits + acct.misses
    assert sorted(second.hit_keys) == sorted(acct.new_subgoals)


def test_stats_are_per_run_for_shared_cache(tmp_path):
    cache = ProofCache(tmp_path)
    first = verify_passes(SMALL_SUITE, jobs=1, cache=cache)
    second = verify_passes(SMALL_SUITE, jobs=1, cache=cache)
    assert first.stats.cache_misses == len(SMALL_SUITE)
    assert second.stats.cache_hits == len(SMALL_SUITE)
    assert second.stats.cache_misses == 0
    cache.close()


def test_engine_stats_dict_field_order():
    report = verify_passes([Width], jobs=1, use_cache=False)
    keys = list(report.stats.to_dict().keys())
    assert keys[:4] == ["cache_hits", "cache_misses", "jobs", "wall_seconds"]


# --------------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------------- #
def _square(value):
    return value * value


def test_parallel_map_preserves_order():
    values = list(range(20))
    assert parallel_map(_square, values, jobs=4) == [v * v for v in values]


def test_worker_pool_falls_back_in_process_for_unpicklable_work():
    pool = WorkerPool(jobs=4)
    closure = lambda v: v + 1  # noqa: E731 - deliberately unpicklable
    with pytest.raises(Exception):
        pickle.dumps(closure)
    assert pool.map(closure, [1, 2, 3]) == [2, 3, 4]
    assert pool.used_processes is False


def test_jobs_one_never_spawns_processes():
    pool = WorkerPool(jobs=1)
    assert pool.map(_square, [3, 4]) == [9, 16]
    assert pool.used_processes is False
