"""Tests for the dense-matrix denotational semantics and quaternion algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QCircuit, ghz_circuit
from repro.errors import CircuitError
from repro.linalg import (
    MAX_DENSE_QUBITS,
    Quaternion,
    allclose_up_to_global_phase,
    circuit_unitary,
    circuits_equivalent,
    circuits_equivalent_up_to_permutation,
    compose_zyz,
    permutation_unitary,
    statevector,
    unitary_distance,
)

from tests.conftest import circuit_strategy


def test_empty_circuit_is_identity():
    assert np.allclose(circuit_unitary(QCircuit(2)), np.eye(4))


def test_ghz_statevector():
    state = statevector(ghz_circuit(3))
    expected = np.zeros(8, dtype=complex)
    expected[0] = expected[7] = 1 / math.sqrt(2)
    assert allclose_up_to_global_phase(state, expected)


def test_gate_order_matters():
    ab = QCircuit(1)
    ab.h(0)
    ab.t(0)
    ba = QCircuit(1)
    ba.t(0)
    ba.h(0)
    assert not circuits_equivalent(ab, ba)


def test_concatenation_is_matrix_product():
    circuit = QCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    u_h = circuit_unitary(QCircuit(2, gates=[Gate("h", (0,))]))
    u_cx = circuit_unitary(QCircuit(2, gates=[Gate("cx", (0, 1))]))
    assert np.allclose(circuit_unitary(circuit), u_cx @ u_h)


def test_global_phase_insensitivity():
    # u1(pi) equals Z exactly, so the phase-sensitive check also passes.
    z = QCircuit(1)
    z.z(0)
    u1_pi = QCircuit(1)
    u1_pi.u1(math.pi, 0)
    assert circuits_equivalent(z, u1_pi)
    assert circuits_equivalent(z, u1_pi, up_to_global_phase=False)
    # rz(pi) is -i * Z: equal only up to a global phase.
    rz_pi = QCircuit(1)
    rz_pi.rz(math.pi, 0)
    assert circuits_equivalent(z, rz_pi)
    assert not circuits_equivalent(z, rz_pi, up_to_global_phase=False)


def test_barriers_are_skipped():
    with_barrier = QCircuit(2)
    with_barrier.h(0)
    with_barrier.barrier()
    with_barrier.cx(0, 1)
    without = QCircuit(2)
    without.h(0)
    without.cx(0, 1)
    assert circuits_equivalent(with_barrier, without)


def test_measure_has_no_unitary():
    circuit = QCircuit(1, 1)
    circuit.measure(0, 0)
    with pytest.raises(CircuitError):
        circuit_unitary(circuit)


def test_dense_size_limit():
    with pytest.raises(CircuitError):
        circuit_unitary(QCircuit(MAX_DENSE_QUBITS + 1))


def test_permutation_unitary_swaps_qubits():
    swap_circuit = QCircuit(2)
    swap_circuit.swap(0, 1)
    assert np.allclose(permutation_unitary([1, 0], 2), circuit_unitary(swap_circuit))
    with pytest.raises(CircuitError):
        permutation_unitary([0, 0], 2)


def test_equivalence_up_to_permutation_routing_example():
    original = QCircuit(3)
    original.h(0)
    original.cx(0, 2)
    routed = QCircuit(3)
    routed.h(0)
    routed.swap(1, 2)
    routed.cx(0, 1)
    assert circuits_equivalent_up_to_permutation(original, routed, [0, 2, 1])
    assert not circuits_equivalent_up_to_permutation(original, routed, [0, 1, 2])


def test_unitary_distance_zero_for_equal():
    circuit = ghz_circuit(2)
    assert unitary_distance(circuit_unitary(circuit), circuit_unitary(circuit)) < 1e-12
    other = QCircuit(2)
    other.x(0)
    assert unitary_distance(circuit_unitary(circuit), circuit_unitary(other)) > 0.1


# --------------------------------------------------------------------------- #
# Quaternions
# --------------------------------------------------------------------------- #
def test_quaternion_identity_and_norm():
    q = Quaternion.identity()
    assert q.norm() == pytest.approx(1.0)
    assert np.allclose(q.to_rotation_matrix(), np.eye(3))


def test_quaternion_axis_rotations_compose():
    qz = Quaternion.from_axis_rotation(math.pi / 2, "z")
    qz2 = qz * qz
    assert np.allclose(qz2.to_rotation_matrix(), Quaternion.from_axis_rotation(math.pi, "z").to_rotation_matrix())


@settings(max_examples=40, deadline=None)
@given(
    st.tuples(st.floats(0.05, 3.0), st.floats(0.05, 3.0), st.floats(0.05, 3.0)),
    st.tuples(st.floats(0.05, 3.0), st.floats(0.05, 3.0), st.floats(0.05, 3.0)),
)
def test_compose_zyz_matches_matrix_product(first, second):
    """The quaternion composition of two u3 gates equals the matrix product."""
    theta, phi, lam = compose_zyz(first, second)
    two_gates = QCircuit(1)
    two_gates.u3(*first, 0)
    two_gates.u3(*second, 0)
    merged = QCircuit(1)
    merged.u3(theta, phi, lam, 0)
    assert circuits_equivalent(two_gates, merged)


@settings(max_examples=20, deadline=None)
@given(circuit_strategy(num_qubits=3, max_gates=10))
def test_unitarity_of_random_circuits(circuit):
    unitary = circuit_unitary(circuit)
    assert np.allclose(unitary @ unitary.conj().T, np.eye(unitary.shape[0]), atol=1e-8)
