"""Quaternion rotation algebra used by the 1-qubit merge utility."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QCircuit
from repro.linalg import Quaternion, circuits_equivalent, compose_zyz

angles = st.floats(min_value=-math.pi, max_value=math.pi,
                   allow_nan=False, allow_infinity=False)


def test_identity_quaternion():
    identity = Quaternion.identity()
    assert math.isclose(identity.norm(), 1.0)
    assert np.allclose(identity.to_rotation_matrix(), np.eye(3))


@pytest.mark.parametrize("axis", ["x", "y", "z"])
def test_axis_rotations_have_unit_norm(axis):
    q = Quaternion.from_axis_rotation(0.73, axis)
    assert math.isclose(q.norm(), 1.0, rel_tol=1e-9)


def test_conjugate_inverts_the_rotation():
    q = Quaternion.from_euler_zyz(0.4, 1.1, -0.7)
    product = q * q.conjugate()
    assert np.allclose(product.normalized().to_rotation_matrix(), np.eye(3), atol=1e-9)


def test_multiplication_is_associative():
    a = Quaternion.from_axis_rotation(0.3, "x")
    b = Quaternion.from_axis_rotation(1.2, "y")
    c = Quaternion.from_axis_rotation(-0.8, "z")
    left = (a * b) * c
    right = a * (b * c)
    assert np.allclose(left.to_rotation_matrix(), right.to_rotation_matrix(), atol=1e-9)


def test_euler_roundtrip_preserves_the_rotation():
    theta, phi, lam = 0.9, 0.5, -1.3
    q = Quaternion.from_euler_zyz(theta, phi, lam)
    recovered = Quaternion.from_euler_zyz(*q.to_zyz_angles())
    assert np.allclose(q.to_rotation_matrix(), recovered.to_rotation_matrix(), atol=1e-8)


def _u3_circuit(angles_triple) -> QCircuit:
    circuit = QCircuit(1)
    circuit.append(Gate("u3", (0,), tuple(angles_triple)))
    return circuit


def test_compose_zyz_matches_the_unitary_product():
    first = (0.7, 0.2, 1.1)
    second = (1.4, -0.6, 0.3)
    composed = compose_zyz(first, second)
    sequential = QCircuit(1)
    sequential.append(Gate("u3", (0,), first))
    sequential.append(Gate("u3", (0,), second))
    assert circuits_equivalent(sequential, _u3_circuit(composed))


@settings(max_examples=50, deadline=None)
@given(angles, angles, angles, angles, angles, angles)
def test_compose_zyz_is_correct_for_random_angles(t1, p1, l1, t2, p2, l2):
    composed = compose_zyz((t1, p1, l1), (t2, p2, l2))
    sequential = QCircuit(1)
    sequential.append(Gate("u3", (0,), (t1, p1, l1)))
    sequential.append(Gate("u3", (0,), (t2, p2, l2)))
    # acos loses ~sqrt(eps) precision near theta = 0 / pi, hence the tolerance.
    assert circuits_equivalent(sequential, _u3_circuit(composed), atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(angles, angles, angles)
def test_zyz_angles_reproduce_the_u3_gate(theta, phi, lam):
    """from_euler_zyz . to_zyz_angles is the identity on rotations (mod phase)."""
    recovered = Quaternion.from_euler_zyz(theta, phi, lam).to_zyz_angles()
    assert circuits_equivalent(
        _u3_circuit((theta, phi, lam)), _u3_circuit(recovered), atol=1e-6
    )
